module iaccf

go 1.24
