GO ?= go
BENCHTIME ?= 1s
# Fixed seed matrix for reproducible consensus-sim runs; on an invariant
# violation the harness fails with the seed embedded in the message, so the
# failing schedule replays with SIM_SEEDS=<that seed> make sim.
SIM_SEEDS ?= 1-100

.PHONY: all vet build test race bench sim check

all: check

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race -count=1 ./...

# Consensus simulation matrix: deterministic multi-replica schedules with
# drops, reordering, partitions, and Byzantine scripts, race-enabled. A
# failure prints the seed that produced it.
sim:
	SIM_SEEDS=$(SIM_SEEDS) $(GO) test -race -count=1 -run 'TestSim' ./internal/consensus/sim/ -v

bench:
	$(GO) test -run=NONE -bench=. -benchmem -benchtime=$(BENCHTIME) -json ./... > BENCH_pr4.json \
		|| { tail -5 BENCH_pr4.json; exit 1; }
	@grep -o '"Output":".*Benchmark[^"]*' BENCH_pr4.json | sed 's/"Output":"//;s/\\t/\t/g;s/\\n//' || true

check: vet build race
