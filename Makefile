GO ?= go

.PHONY: all vet build test race bench check

all: check

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -run=NONE -bench=. -benchmem ./...

check: vet build race
