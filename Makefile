GO ?= go
BENCHTIME ?= 1s
# Benchmark output file; CI writes BENCH_ci.json and uploads it as an
# artifact, release PRs commit a BENCH_prN.json snapshot as the new
# baseline.
BENCH_OUT ?= BENCH.json
# Committed baseline the regression gate compares against.
BENCH_BASELINE ?= BENCH_pr5.json
# Fixed seed matrix for reproducible consensus-sim runs; on an invariant
# violation the harness fails with the seed embedded in the message, so the
# failing schedule replays with SIM_SEEDS=<that seed> make sim.
SIM_SEEDS ?= 1-100

.PHONY: all vet build test race bench bench-check sim check

all: check

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race -count=1 ./...

# Consensus simulation matrix: deterministic multi-replica schedules with
# drops, reordering, partitions, and Byzantine scripts, race-enabled. A
# failure prints the seed that produced it.
sim:
	SIM_SEEDS=$(SIM_SEEDS) $(GO) test -race -count=1 -run 'TestSim' ./internal/consensus/sim/ -v

bench:
	$(GO) test -run=NONE -bench=. -benchmem -benchtime=$(BENCHTIME) -json ./... > $(BENCH_OUT) \
		|| { tail -5 $(BENCH_OUT); exit 1; }
	@grep -o '"Output":".*Benchmark[^"]*' $(BENCH_OUT) | sed 's/"Output":"//;s/\\t/\t/g;s/\\n//' || true

# Benchmark-regression gate: the watched hot paths must stay within 15% of
# the committed baseline, and the pipelined consensus window must sustain
# the serial (window=1) baseline's throughput.
bench-check:
	$(GO) run ./cmd/benchcmp \
		-baseline $(BENCH_BASELINE) -current $(BENCH_OUT) \
		-watch BenchmarkConsensusCommit -watch BenchmarkCheckpointDigest/incremental \
		-faster 'BenchmarkConsensusCommit/entries=1024/window=4:BenchmarkConsensusCommit/entries=1024/window=1' \
		-faster 'BenchmarkConsensusCommit/entries=128/window=4:BenchmarkConsensusCommit/entries=128/window=1'

check: vet build race
