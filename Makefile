GO ?= go
BENCHTIME ?= 1s

.PHONY: all vet build test race bench check

all: check

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -run=NONE -bench=. -benchmem -benchtime=$(BENCHTIME) -json ./... > BENCH_pr2.json \
		|| { tail -5 BENCH_pr2.json; exit 1; }
	@grep -o '"Output":".*Benchmark[^"]*' BENCH_pr2.json | sed 's/"Output":"//;s/\\t/\t/g;s/\\n//' || true

check: vet build race
