GO ?= go
BENCHTIME ?= 1s
# CPU counts benchmarks run under; the 1-vs-4 pair is what the parallel
# executor's scaling gate compares (benchcmp addresses variants as Name-N).
BENCH_CPU ?= 1,4
# Benchmark output file; CI writes BENCH_ci.json and uploads it as an
# artifact, release PRs commit a BENCH_prN.json snapshot as the new
# baseline.
BENCH_OUT ?= BENCH.json
# Committed baseline the regression gate compares against.
BENCH_BASELINE ?= BENCH_pr7.json
# The multi-core scaling assertions only mean something on a machine that
# actually has the cores: asserting 4-core speedup on a 1-CPU box would
# just measure scheduler overhead. CI's bench runners have >= 4. The skewed
# workload gets a softer bar (1.5x): with 90% of entries in one shard tree,
# part of the proof build is inherently serial.
NPROC := $(shell nproc 2>/dev/null || echo 1)
SCALE_GATE := $(shell test $(NPROC) -ge 4 && echo "-scale 'BenchmarkConsensusCommitCrossShard-4:BenchmarkConsensusCommitCrossShard-1:2' -scale 'BenchmarkConsensusCommitSkewed-4:BenchmarkConsensusCommitSkewed-1:1.5'")
# Where `make profile` drops pprof output.
PROFILE_DIR ?= profiles
# Fixed seed matrix for reproducible consensus-sim runs; on an invariant
# violation the harness fails with the seed embedded in the message, so the
# failing schedule replays with SIM_SEEDS=<that seed> make sim.
SIM_SEEDS ?= 1-100

.PHONY: all vet lint build test race bench bench-check profile sim check

all: check

vet:
	$(GO) vet ./...

# Full static-analysis pass, one command:
#   - go vet (standard analyzers)
#   - iaccfvet (this repo's invariant analyzers: poolown, viewretain,
#     detiter, detsource — see internal/analysis/README.md), driven
#     through `go vet -vettool` so it shares the build cache
#   - staticcheck, when installed locally; CI pins and always runs it
#     (see .github/workflows/ci.yml), so a missing local install skips
#     with a note instead of failing the target.
lint: vet
	$(GO) build -o bin/iaccfvet ./cmd/iaccfvet
	$(GO) vet -vettool=$(CURDIR)/bin/iaccfvet ./...
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./... ; \
	else \
		echo "lint: staticcheck not installed locally; CI runs the pinned version" ; \
	fi

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race -count=1 ./...

# Consensus simulation matrix: deterministic multi-replica schedules with
# drops, reordering, partitions, and Byzantine scripts, race-enabled. A
# failure prints the seed that produced it.
sim:
	SIM_SEEDS=$(SIM_SEEDS) $(GO) test -race -count=1 -run 'TestSim' ./internal/consensus/sim/ -v

bench:
	$(GO) test -run=NONE -bench=. -benchmem -benchtime=$(BENCHTIME) -cpu=$(BENCH_CPU) -json ./... > $(BENCH_OUT) \
		|| { tail -5 $(BENCH_OUT); exit 1; }
	@grep -o '"Output":".*Benchmark[^"]*' $(BENCH_OUT) | sed 's/"Output":"//;s/\\t/\t/g;s/\\n//' || true

# CPU and heap profiles of the cross-shard commit hot path, plus the test
# binary pprof needs to symbolize them. Start digging with:
#   go tool pprof $(PROFILE_DIR)/consensus.test $(PROFILE_DIR)/mem.out
profile:
	mkdir -p $(PROFILE_DIR)
	$(GO) test -run=NONE -bench=BenchmarkConsensusCommitCrossShard -benchmem \
		-benchtime=$(BENCHTIME) \
		-cpuprofile=$(PROFILE_DIR)/cpu.out -memprofile=$(PROFILE_DIR)/mem.out \
		-o $(PROFILE_DIR)/consensus.test ./internal/consensus/
	@echo "profiles in $(PROFILE_DIR)/: cpu.out mem.out (binary: consensus.test)"

# Benchmark-regression gate: the watched hot paths must stay within 15% of
# the committed baseline on ns/op, B/op, and allocs/op, the pipelined
# consensus window must sustain the serial (window=1) baseline's
# throughput, the bounded-memory workload must keep its retained ledger
# residency under the window + checkpoint-interval cap (absolute, however
# long the run — a leak grows with b.N and blows the cap), and — on
# machines with the cores to show it — the cross-shard commit workload
# must scale at least 2x (skewed: 1.5x) from 1 to 4 CPUs through the
# parallel batch executor.
bench-check:
	$(GO) run ./cmd/benchcmp \
		-baseline $(BENCH_BASELINE) -current $(BENCH_OUT) \
		-watch BenchmarkConsensusCommit -watch BenchmarkCheckpointDigest/incremental \
		-faster 'BenchmarkConsensusCommit/entries=1024/window=4:BenchmarkConsensusCommit/entries=1024/window=1' \
		-faster 'BenchmarkConsensusCommit/entries=128/window=4:BenchmarkConsensusCommit/entries=128/window=1' \
		-max 'BenchmarkConsensusBoundedMemory:retained-batches:8' \
		-max 'BenchmarkConsensusBoundedMemory:retained-bytes:65536' \
		$(SCALE_GATE)

check: lint build race
