// iaccfvet is the multichecker for this repository's invariant analyzers
// (poolown, viewretain, detiter, detsource — see internal/analysis/README.md).
//
// It runs in two modes:
//
//   - as a vet tool:  go vet -vettool=$(pwd)/bin/iaccfvet ./...
//     The go command drives it per package through the vet config protocol
//     (implemented in internal/analysis/unit), sharing the build cache so a
//     whole-tree run costs about as much as plain `go vet`.
//
//   - standalone:  iaccfvet [-poolown=false ...] [packages]
//     Loads the patterns (default ./...) itself via `go list -export` and
//     analyzes them in-process. Handy for one-off runs and editors.
//
// Individual analyzers are disabled with -<name>=false; all default on.
// Exit status: 0 clean, 1 diagnostics reported, 2 operational error.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"iaccf/internal/analysis"
	"iaccf/internal/analysis/load"
	"iaccf/internal/analysis/suite"
	"iaccf/internal/analysis/unit"
)

func main() {
	analyzers := suite.Analyzers()
	// The vet protocol speaks in -V=full/-flags handshakes and a *.cfg
	// positional; any of those means the go command is driving.
	for _, arg := range os.Args[1:] {
		if arg == "-V=full" || arg == "--V=full" || arg == "-flags" || arg == "--flags" || strings.HasSuffix(arg, ".cfg") {
			unit.Main("iaccfvet", analyzers)
			return
		}
	}
	os.Exit(standalone(analyzers))
}

func standalone(analyzers []*analysis.Analyzer) int {
	fs := flag.NewFlagSet("iaccfvet", flag.ExitOnError)
	enabled := map[string]*bool{}
	for _, a := range analyzers {
		enabled[a.Name] = fs.Bool(a.Name, true, "enable the "+a.Name+" analyzer")
	}
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: iaccfvet [flags] [package patterns]")
		fmt.Fprintln(os.Stderr, "       go vet -vettool=/path/to/iaccfvet ./...")
		fs.PrintDefaults()
	}
	if err := fs.Parse(os.Args[1:]); err != nil {
		return 2
	}
	var active []*analysis.Analyzer
	for _, a := range analyzers {
		if *enabled[a.Name] {
			active = append(active, a)
		}
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	wd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, "iaccfvet:", err)
		return 2
	}
	pkgs, err := load.Packages(wd, patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "iaccfvet:", err)
		return 2
	}
	found := 0
	for _, pkg := range pkgs {
		diags, err := analysis.RunAnalyzers(pkg.Fset, pkg.Files, pkg.Types, pkg.Info, active)
		if err != nil {
			fmt.Fprintln(os.Stderr, "iaccfvet:", err)
			return 2
		}
		for _, d := range diags {
			fmt.Fprintf(os.Stderr, "%s: %s\n", pkg.Fset.Position(d.Pos), d.Message)
			found++
		}
	}
	if found > 0 {
		return 1
	}
	return 0
}
