// Command benchcmp is the CI benchmark-regression gate: it parses two
// `go test -json -bench` output files (the committed baseline and the
// current run), matches benchmark results by name, and fails when a
// watched benchmark regresses beyond the tolerance on ns/op, B/op, or
// allocs/op (the latter two only when both files carry -benchmem
// numbers). It also supports
// intra-run assertions: `-faster A:B` proves the pipelined consensus
// window sustains at least the serial baseline's throughput,
// `-scale A:B:factor` proves a multi-core run (`-cpu` variants are
// addressable as Name-N) reaches a multiple of its single-core twin —
// the gate that keeps the parallel batch executor actually parallel —
// and `-max name:metric:limit` caps an absolute reported metric, the
// gate that keeps the bounded-memory benchmark's retained bytes from
// growing with workload length.
//
// Only the standard library is used, so the gate runs with `go run` on a
// bare runner — no benchstat install step to break or cache.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"strconv"
	"strings"
)

// result is one benchmark line's parsed numbers.
type result struct {
	name    string
	nsPerOp float64
	// metrics holds custom units (e.g. "entries/sec") reported via
	// b.ReportMetric, plus B/op and allocs/op.
	metrics map[string]float64
}

// event is the subset of the `go test -json` schema the parser needs.
type event struct {
	Action  string `json:"Action"`
	Package string `json:"Package"`
	Output  string `json:"Output"`
}

// benchLine matches a completed benchmark result line. The -N suffix on
// the name is the GOMAXPROCS tag; results are stored under both the
// stripped name (so -watch gates compare across machines, last -cpu
// variant winning) and an explicit per-CPU name with the suffix
// normalized to always be present ("Foo-1" for a run with no suffix), so
// -scale assertions can address a specific -cpu variant unambiguously.
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(-\d+)?\s+\d+\s+(.*)$`)

// parseFile reassembles each package's output stream (go test -json splits
// benchmark lines across Output events) and parses every result line.
func parseFile(path string) (map[string]result, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	perPkg := make(map[string]*strings.Builder)
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		var ev event
		if err := json.Unmarshal([]byte(line), &ev); err != nil {
			return nil, fmt.Errorf("%s: not a `go test -json` stream: %v", path, err)
		}
		if ev.Action != "output" {
			continue
		}
		b, ok := perPkg[ev.Package]
		if !ok {
			b = &strings.Builder{}
			perPkg[ev.Package] = b
		}
		b.WriteString(ev.Output)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	out := make(map[string]result)
	for _, b := range perPkg {
		for _, line := range strings.Split(b.String(), "\n") {
			m := benchLine.FindStringSubmatch(strings.TrimSpace(line))
			if m == nil {
				continue
			}
			r := result{name: m[1], metrics: make(map[string]float64)}
			fields := strings.Fields(m[3])
			for i := 0; i+1 < len(fields); i += 2 {
				v, err := strconv.ParseFloat(fields[i], 64)
				if err != nil {
					continue
				}
				if fields[i+1] == "ns/op" {
					r.nsPerOp = v
				} else {
					r.metrics[fields[i+1]] = v
				}
			}
			out[r.name] = r
			if m[2] == "" {
				out[r.name+"-1"] = r // GOMAXPROCS=1 runs carry no suffix
			} else {
				out[r.name+m[2]] = r
			}
		}
	}
	return out, nil
}

type stringList []string

func (s *stringList) String() string     { return strings.Join(*s, ",") }
func (s *stringList) Set(v string) error { *s = append(*s, v); return nil }

func main() {
	var (
		baselinePath = flag.String("baseline", "", "committed baseline `file` (go test -json output)")
		currentPath  = flag.String("current", "", "current run `file` (go test -json output)")
		tolerance    = flag.Float64("tolerance", 0.15, "allowed fractional regression before failing")
		allowMissing = flag.Bool("allow-missing", false, "skip (with a note) benchmarks present in only one file instead of failing — for cross-revision comparisons where sub-benchmark names legitimately change")
		watch        stringList
		faster       stringList
		scale        stringList
		maxes        stringList
	)
	flag.Var(&watch, "watch", "benchmark name `prefix` to gate on ns/op regression (repeatable)")
	flag.Var(&faster, "faster", "intra-run assertion `A:B[:metric]`: current A must not fall below current B on the metric (default entries/sec), beyond the tolerance (repeatable)")
	flag.Var(&scale, "scale", "intra-run scaling assertion `A:B:factor[:metric]`: current A must reach at least factor x current B on the metric (default entries/sec), minus the tolerance; address -cpu variants as Name-N (repeatable)")
	flag.Var(&maxes, "max", "intra-run absolute cap `name:metric:limit`: current name's reported metric must not exceed limit — no tolerance, a cap is a cap (repeatable)")
	flag.Parse()

	if *currentPath == "" {
		fmt.Fprintln(os.Stderr, "benchcmp: -current is required")
		os.Exit(2)
	}
	current, err := parseFile(*currentPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchcmp: %v\n", err)
		os.Exit(2)
	}

	failed := false
	report := func(format string, args ...any) {
		failed = true
		fmt.Printf("FAIL: "+format+"\n", args...)
	}
	// fail prints exactly one grep-able line per gate violation — fixed
	// key=value fields first (gate, bench, metric, baseline, current), any
	// gate-specific context after — so CI logs answer "which gate, which
	// benchmark, which numbers" with a single `grep '^FAIL gate='`.
	fail := func(gate, bench, metric string, baseline, current float64, detail string) {
		failed = true
		fmt.Printf("FAIL gate=%s bench=%s metric=%s baseline=%.0f current=%.0f %s\n",
			gate, bench, metric, baseline, current, detail)
	}

	if *baselinePath != "" {
		baseline, err := parseFile(*baselinePath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchcmp: %v\n", err)
			os.Exit(2)
		}
		for _, prefix := range watch {
			matched := 0
			for name, base := range baseline {
				if !strings.HasPrefix(name, prefix) {
					continue
				}
				cur, ok := current[name]
				if !ok {
					if *allowMissing {
						fmt.Printf("skip %s: present in baseline, missing from current run\n", name)
					} else {
						report("%s: present in baseline, missing from current run", name)
					}
					continue
				}
				matched++
				// ns/op gates wall time; B/op and allocs/op gate the
				// allocation profile, so a change that keeps latency by
				// trading it for GC pressure still fails the gate. Units
				// absent from either file (a baseline recorded without
				// -benchmem) are skipped, not failed.
				for _, unit := range []string{"ns/op", "B/op", "allocs/op"} {
					bv, cv := base.nsPerOp, cur.nsPerOp
					if unit != "ns/op" {
						bv, cv = base.metrics[unit], cur.metrics[unit]
					}
					if bv <= 0 {
						continue
					}
					ratio := cv/bv - 1
					status := "ok"
					if ratio > *tolerance {
						fail("watch", name, unit, bv, cv,
							fmt.Sprintf("regressed=%.1f%% tolerance=%.0f%%", ratio*100, *tolerance*100))
						status = "REGRESSED"
					}
					fmt.Printf("%-60s %-9s %12.0f -> %12.0f  (%+.1f%%) %s\n",
						name, unit, bv, cv, ratio*100, status)
				}
			}
			if matched == 0 {
				if *allowMissing {
					fmt.Printf("skip -watch %s: no benchmark present in both files\n", prefix)
				} else {
					report("-watch %s matched no benchmark present in both files", prefix)
				}
			}
		}
	}

	for _, spec := range faster {
		parts := strings.SplitN(spec, ":", 3)
		if len(parts) < 2 {
			fmt.Fprintf(os.Stderr, "benchcmp: bad -faster spec %q (want A:B[:metric])\n", spec)
			os.Exit(2)
		}
		metric := "entries/sec"
		if len(parts) == 3 {
			metric = parts[2]
		}
		a, okA := current[parts[0]]
		b, okB := current[parts[1]]
		if !okA || !okB {
			report("-faster %s: benchmark missing from current run", spec)
			continue
		}
		av, bv := a.metrics[metric], b.metrics[metric]
		if av == 0 || bv == 0 {
			report("-faster %s: metric %q missing", spec, metric)
			continue
		}
		// "Not below, beyond tolerance": on multi-core runners the
		// pipelined window genuinely exceeds the serial baseline (pooled
		// verification needs workers); on a single-core box the two are
		// compute-bound equals, so the gate guards against the window
		// costing throughput rather than demanding parallel hardware.
		if av < bv*(1-*tolerance) {
			fail("faster", parts[0], metric, bv, av,
				fmt.Sprintf("vs=%s tolerance=%.0f%%", parts[1], *tolerance*100))
			continue
		}
		fmt.Printf("%-60s %s %12.0f vs %-40s %12.0f ok\n", parts[0], metric, av, parts[1], bv)
	}

	for _, spec := range scale {
		parts := strings.SplitN(spec, ":", 4)
		if len(parts) < 3 {
			fmt.Fprintf(os.Stderr, "benchcmp: bad -scale spec %q (want A:B:factor[:metric])\n", spec)
			os.Exit(2)
		}
		factor, err := strconv.ParseFloat(parts[2], 64)
		if err != nil || factor <= 0 {
			fmt.Fprintf(os.Stderr, "benchcmp: bad -scale factor in %q\n", spec)
			os.Exit(2)
		}
		metric := "entries/sec"
		if len(parts) == 4 {
			metric = parts[3]
		}
		a, okA := current[parts[0]]
		b, okB := current[parts[1]]
		if !okA || !okB {
			report("-scale %s: benchmark missing from current run", spec)
			continue
		}
		av, bv := a.metrics[metric], b.metrics[metric]
		if av == 0 || bv == 0 {
			report("-scale %s: metric %q missing", spec, metric)
			continue
		}
		if av < factor*bv*(1-*tolerance) {
			fail("scale", parts[0], metric, factor*bv, av,
				fmt.Sprintf("vs=%s actual=%.2fx want=%.2fx tolerance=%.0f%%", parts[1], av/bv, factor, *tolerance*100))
			continue
		}
		fmt.Printf("%-60s %s %12.0f is %.2fx %-40s %12.0f ok\n", parts[0], metric, av, av/bv, parts[1], bv)
	}

	for _, spec := range maxes {
		parts := strings.SplitN(spec, ":", 3)
		if len(parts) != 3 {
			fmt.Fprintf(os.Stderr, "benchcmp: bad -max spec %q (want name:metric:limit)\n", spec)
			os.Exit(2)
		}
		limit, err := strconv.ParseFloat(parts[2], 64)
		if err != nil || limit <= 0 {
			fmt.Fprintf(os.Stderr, "benchcmp: bad -max limit in %q\n", spec)
			os.Exit(2)
		}
		metric := parts[1]
		r, ok := current[parts[0]]
		if !ok {
			report("-max %s: benchmark missing from current run", spec)
			continue
		}
		v, ok := r.metrics[metric]
		if metric == "ns/op" {
			v, ok = r.nsPerOp, r.nsPerOp > 0
		}
		if !ok {
			report("-max %s: metric %q missing", spec, metric)
			continue
		}
		if v > limit {
			fail("max", parts[0], metric, limit, v, "absolute cap exceeded")
			continue
		}
		fmt.Printf("%-60s %s %12.0f <= cap %12.0f ok\n", parts[0], metric, v, limit)
	}

	if failed {
		os.Exit(1)
	}
	fmt.Println("benchcmp: all gates passed")
}
