// Command loadgen drives a running cluster through the client submission
// RPC and reports committed entries/sec. When given the cluster's key
// seed it verifies every receipt client-side against the derived replica
// public keys; with -seed "" verification is skipped.
package main

import (
	"flag"
	"fmt"
	"log"
	"strings"
	"time"

	"iaccf/internal/hashsig"
	"iaccf/internal/loadgen"
)

func main() {
	var (
		rpc      = flag.String("rpc", "", "comma-separated RPC addresses, ordered by node ID")
		seed     = flag.String("seed", "demo", "cluster key seed for receipt verification (empty to skip)")
		workers  = flag.Int("workers", 4, "concurrent submission streams")
		requests = flag.Int("n", 32, "requests per worker")
		valueLen = flag.Int("value", 32, "op value bytes per request")
		timeout  = flag.Duration("timeout", 15*time.Second, "per-submission deadline")
	)
	flag.Parse()

	if *rpc == "" {
		log.Fatal("loadgen: -rpc must list the cluster's RPC addresses")
	}
	addrs := strings.Split(*rpc, ",")
	for i := range addrs {
		addrs[i] = strings.TrimSpace(addrs[i])
	}

	var pubs []*hashsig.PublicKey
	if *seed != "" {
		for i := range addrs {
			pubs = append(pubs, hashsig.GenerateKeyFromSeed(fmt.Sprintf("%s/%d", *seed, i)).Public())
		}
	}

	res, err := loadgen.Run(loadgen.Config{
		Addrs:    addrs,
		Pubs:     pubs,
		Workers:  *workers,
		Requests: *requests,
		ValueLen: *valueLen,
		Timeout:  *timeout,
	})
	if err != nil {
		log.Fatalf("loadgen: %v", err)
	}
	fmt.Println(res)
}
