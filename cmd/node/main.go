// Command node runs one cluster replica: the consensus runtime behind a
// TCP replica transport plus a client submission RPC. A local 4-node
// cluster, with the repo's deterministic key derivation from a shared
// seed, looks like:
//
//	CLUSTER=127.0.0.1:7000,127.0.0.1:7001,127.0.0.1:7002,127.0.0.1:7003
//	for i in 0 1 2 3; do
//	  node -id $i -cluster $CLUSTER -rpc 127.0.0.1:800$i -seed demo &
//	done
//	loadgen -rpc 127.0.0.1:8000,127.0.0.1:8001,127.0.0.1:8002,127.0.0.1:8003 -seed demo
//
// Seed-derived keys exist so a demo cluster needs no key distribution
// step; real deployments would load per-replica private keys instead.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"iaccf/internal/consensus"
	"iaccf/internal/hashsig"
	"iaccf/internal/ledger"
	"iaccf/internal/node"
	"iaccf/internal/transport"
)

func main() {
	var (
		id         = flag.Int("id", -1, "this node's ID (index into -cluster)")
		cluster    = flag.String("cluster", "", "comma-separated replica transport addresses, ordered by node ID")
		rpc        = flag.String("rpc", "", "client submission RPC listen address")
		seed       = flag.String("seed", "demo", "shared cluster key seed")
		checkpoint = flag.Uint64("checkpoint", 4, "checkpoint interval (sequences)")
		shards     = flag.Uint("shards", 1, "ledger shard trees per batch")
		tick       = flag.Duration("tick", 5*time.Millisecond, "runtime tick interval")
	)
	flag.Parse()

	addrs := strings.Split(*cluster, ",")
	if *cluster == "" || len(addrs) < 2 {
		log.Fatal("node: -cluster must list at least two replica addresses")
	}
	if *id < 0 || *id >= len(addrs) {
		log.Fatalf("node: -id must be in [0,%d)", len(addrs))
	}

	keys := make([]*hashsig.PrivateKey, len(addrs))
	pubs := make([]*hashsig.PublicKey, len(addrs))
	addrMap := make(map[transport.NodeID]string, len(addrs))
	for i, a := range addrs {
		keys[i] = hashsig.GenerateKeyFromSeed(fmt.Sprintf("%s/%d", *seed, i))
		pubs[i] = keys[i].Public()
		addrMap[transport.NodeID(i)] = strings.TrimSpace(a)
	}

	proxy := &transport.HandlerProxy{}
	tp, err := transport.ListenTCP(transport.TCPConfig{
		Self:    transport.NodeID(*id),
		Addrs:   addrMap,
		Handler: proxy.Handle,
	})
	if err != nil {
		log.Fatalf("node: transport: %v", err)
	}
	defer tp.Close()

	clk := node.NewWallClock(*tick)
	defer clk.Stop()
	nd, err := node.New(node.Config{
		Consensus: consensus.Config{
			ID:              consensus.ReplicaID(*id),
			Key:             keys[*id],
			Peers:           pubs,
			App:             ledger.KVApp{},
			CheckpointEvery: *checkpoint,
			Shards:          uint32(*shards),
		},
		Transport: tp,
		Clock:     clk,
	})
	if err != nil {
		log.Fatalf("node: %v", err)
	}
	proxy.Set(nd.InboundHandler())
	nd.Start()
	defer nd.Stop()

	if *rpc != "" {
		srv, err := node.ServeRPC(nd, *rpc)
		if err != nil {
			log.Fatalf("node: rpc: %v", err)
		}
		defer srv.Close()
		log.Printf("node %d: transport %s, rpc %s", *id, tp.Addr(), srv.Addr())
	} else {
		log.Printf("node %d: transport %s (no rpc)", *id, tp.Addr())
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	log.Printf("node %d: shutting down (committed %d seqs, %d entries)",
		*id, nd.CommittedSeqs(), nd.CommittedEntries())
}
