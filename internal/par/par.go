// Package par holds the bounded-worker fan-out shared by the sharded hot
// paths: kv's dirty-shard digest recomputation and ledger's per-shard
// batch-tree construction. One implementation keeps the gating policy and
// the join discipline identical everywhere it is used.
package par

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// ForEach runs fn(i) for every i in [0, n), spreading the calls over a
// bounded worker pool when there is enough total work to amortize
// goroutine startup. work is the caller's estimate of total units across
// all indices (leaves, keys); below minWork — or on a single-CPU process —
// every call runs inline, where the pool would only add scheduling
// traffic. Workers are joined before return, so callers keep their
// single-writer discipline; fn must touch only index-disjoint state.
func ForEach(n, work, minWork int, fn func(i int)) {
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	if workers <= 1 || work < minWork {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}
