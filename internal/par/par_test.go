package par

import (
	"runtime"
	"sync/atomic"
	"testing"
)

// TestForEachSizesPoolAtUseTime pins the satellite property that ForEach
// reads GOMAXPROCS when called, not at package init: after dropping to one
// CPU mid-process every call degrades to the strictly-ordered inline loop,
// and after raising it the worker count (hence peak concurrency) is bounded
// by the new setting — which is what keeps `go test -cpu 1,4` and
// container CPU-quota changes honest.
func TestForEachSizesPoolAtUseTime(t *testing.T) {
	prev := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(prev)

	// One CPU: inline, so indices arrive in strict order on the caller's
	// goroutine no matter how large the work estimate is.
	runtime.GOMAXPROCS(1)
	var order []int
	ForEach(64, 1<<20, 1, func(i int) { order = append(order, i) })
	for i, got := range order {
		if got != i {
			t.Fatalf("GOMAXPROCS=1 ran out of order at %d: %d", i, got)
		}
	}
	if len(order) != 64 {
		t.Fatalf("GOMAXPROCS=1 visited %d of 64", len(order))
	}

	// Two CPUs, same process: at most two calls are ever in flight.
	runtime.GOMAXPROCS(2)
	var inFlight, peak atomic.Int32
	ForEach(64, 1<<20, 1, func(int) {
		cur := inFlight.Add(1)
		for {
			p := peak.Load()
			if cur <= p || peak.CompareAndSwap(p, cur) {
				break
			}
		}
		inFlight.Add(-1)
	})
	if got := peak.Load(); got > 2 {
		t.Fatalf("GOMAXPROCS=2 reached concurrency %d", got)
	}
}

// TestForEachCoversEveryIndexOnce pins GOMAXPROCS above 1 so the worker
// path runs even on a single-CPU box (where it would otherwise always
// degrade to the inline loop), and checks each index is visited exactly
// once in both regimes.
func TestForEachCoversEveryIndexOnce(t *testing.T) {
	prev := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(prev)
	for _, tc := range []struct {
		name          string
		n, work, minW int
	}{
		{"parallel", 100, 1000, 1},
		{"inline-small-work", 100, 10, 1000},
		{"inline-n1", 1, 1000, 1},
		{"empty", 0, 0, 1},
	} {
		t.Run(tc.name, func(t *testing.T) {
			counts := make([]atomic.Int32, tc.n)
			ForEach(tc.n, tc.work, tc.minW, func(i int) {
				counts[i].Add(1)
			})
			for i := range counts {
				if got := counts[i].Load(); got != 1 {
					t.Fatalf("index %d visited %d times", i, got)
				}
			}
		})
	}
}
