package par

import (
	"runtime"
	"sync/atomic"
	"testing"
)

// TestForEachCoversEveryIndexOnce pins GOMAXPROCS above 1 so the worker
// path runs even on a single-CPU box (where it would otherwise always
// degrade to the inline loop), and checks each index is visited exactly
// once in both regimes.
func TestForEachCoversEveryIndexOnce(t *testing.T) {
	prev := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(prev)
	for _, tc := range []struct {
		name          string
		n, work, minW int
	}{
		{"parallel", 100, 1000, 1},
		{"inline-small-work", 100, 10, 1000},
		{"inline-n1", 1, 1000, 1},
		{"empty", 0, 0, 1},
	} {
		t.Run(tc.name, func(t *testing.T) {
			counts := make([]atomic.Int32, tc.n)
			ForEach(tc.n, tc.work, tc.minW, func(i int) {
				counts[i].Add(1)
			})
			for i := range counts {
				if got := counts[i].Load(); got != 1 {
					t.Fatalf("index %d visited %d times", i, got)
				}
			}
		})
	}
}
