// Package loadgen drives a running cluster through the client submission
// RPC and measures committed throughput. It is both the library behind
// cmd/loadgen and the workload driver for the CI acceptance job: workers
// submit ordered request streams, follow leader hints, verify every
// receipt client-side, and the run reports committed entries/sec.
package loadgen

import (
	"fmt"
	"sync"
	"time"

	"iaccf/internal/hashsig"
	"iaccf/internal/ledger"
	"iaccf/internal/node"
)

// Config parameterizes one load run.
type Config struct {
	// Addrs lists the cluster's RPC addresses, indexed by node ID. The
	// NotPrimary leader hint is an index into this slice.
	Addrs []string
	// Pubs are the replica public keys receipts must verify against.
	// Empty disables client-side verification.
	Pubs []*hashsig.PublicKey
	// Workers is the number of concurrent submitters, each with its own
	// author identity and ReqNo stream. Default 4.
	Workers int
	// Requests is the per-worker request count. Default 32.
	Requests int
	// Seed derives worker author identities, so re-runs against a fresh
	// cluster are reproducible. Default "loadgen".
	Seed string
	// Timeout bounds each submission exchange. Default 15s.
	Timeout time.Duration
	// ValueLen sizes each request's op value. Default 32.
	ValueLen int
}

// Result summarizes a load run.
type Result struct {
	Committed     int
	Duplicates    int
	Failures      int
	Elapsed       time.Duration
	EntriesPerSec float64
}

func (r *Result) String() string {
	return fmt.Sprintf("committed %d (dup %d, failed %d) in %.2fs: %.1f entries/sec",
		r.Committed, r.Duplicates, r.Failures, r.Elapsed.Seconds(), r.EntriesPerSec)
}

func (c *Config) defaults() {
	if c.Workers <= 0 {
		c.Workers = 4
	}
	if c.Requests <= 0 {
		c.Requests = 32
	}
	if c.Seed == "" {
		c.Seed = "loadgen"
	}
	if c.Timeout <= 0 {
		c.Timeout = 15 * time.Second
	}
	if c.ValueLen <= 0 {
		c.ValueLen = 32
	}
}

// Run executes the configured workload and blocks until every worker
// finishes. The first hard error (no address reachable, receipt that
// fails verification) aborts the run.
func Run(cfg Config) (*Result, error) {
	cfg.defaults()
	if len(cfg.Addrs) == 0 {
		return nil, fmt.Errorf("loadgen: no RPC addresses")
	}
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		res      Result
		firstErr error
	)
	start := time.Now()
	for w := 0; w < cfg.Workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			committed, dups, fails, err := runWorker(&cfg, w)
			mu.Lock()
			defer mu.Unlock()
			res.Committed += committed
			res.Duplicates += dups
			res.Failures += fails
			if err != nil && firstErr == nil {
				firstErr = err
			}
		}(w)
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	res.Elapsed = time.Since(start)
	if s := res.Elapsed.Seconds(); s > 0 {
		res.EntriesPerSec = float64(res.Committed) / s
	}
	return &res, nil
}

// worker is one submission stream: a distinct author, strictly increasing
// ReqNos, and a sticky connection that follows NotPrimary leader hints.
type worker struct {
	cfg    *Config
	author hashsig.Digest
	target int // index into cfg.Addrs
	cl     *node.RPCClient
}

func runWorker(cfg *Config, idx int) (committed, dups, fails int, err error) {
	wk := &worker{
		cfg:    cfg,
		author: hashsig.Sum([]byte(fmt.Sprintf("%s/worker/%d", cfg.Seed, idx))),
		target: idx % len(cfg.Addrs),
	}
	defer wk.disconnect()
	val := make([]byte, cfg.ValueLen)
	for i := 0; i < cfg.Requests; i++ {
		rq := ledger.Request{
			Author: wk.author,
			ReqNo:  uint64(i + 1),
			Body: ledger.EncodeOps([]ledger.Op{{
				Key: fmt.Sprintf("w%d/k%d", idx, i+1),
				Val: val,
			}}),
		}
		st, rerr := wk.submit(&rq)
		switch {
		case rerr != nil:
			return committed, dups, fails, rerr
		case st == node.StatusCommitted:
			committed++
		case st == node.StatusDuplicate:
			// A retry after a lost response raced an already-committed
			// request: the entry is on the ledger, just not re-receipted.
			dups++
		default:
			fails++
		}
	}
	return committed, dups, fails, nil
}

// submit pushes one request until a terminal verdict, rotating through
// leader hints and (on connection failure) the remaining nodes.
func (wk *worker) submit(rq *ledger.Request) (node.Status, error) {
	deadline := time.Now().Add(wk.cfg.Timeout * 4)
	var lastErr error
	for attempt := 0; time.Now().Before(deadline); attempt++ {
		if wk.cl == nil {
			cl, err := node.DialRPC(wk.cfg.Addrs[wk.target], wk.cfg.Timeout)
			if err != nil {
				lastErr = err
				wk.target = (wk.target + 1) % len(wk.cfg.Addrs)
				time.Sleep(50 * time.Millisecond)
				continue
			}
			wk.cl = cl
		}
		res, err := wk.cl.Submit(rq, wk.cfg.Timeout)
		if err != nil {
			lastErr = err
			wk.disconnect()
			wk.target = (wk.target + 1) % len(wk.cfg.Addrs)
			continue
		}
		switch res.Status {
		case node.StatusCommitted:
			if err := wk.verify(rq, res.Receipt); err != nil {
				return res.Status, err
			}
			return res.Status, nil
		case node.StatusNotPrimary:
			// Follow the hint; a stale hint just round-trips again.
			next := int(res.Leader)
			if next < 0 || next >= len(wk.cfg.Addrs) || next == wk.target {
				next = (wk.target + 1) % len(wk.cfg.Addrs)
			}
			wk.disconnect()
			wk.target = next
		case node.StatusBusy, node.StatusTimeout:
			// Transient: pool backpressure or a slow view — back off and
			// resubmit the same request (dedup makes this safe).
			time.Sleep(100 * time.Millisecond)
		default:
			return res.Status, nil
		}
	}
	return 0, fmt.Errorf("loadgen: request %d/%d gave up: %v", rq.ReqNo, len(wk.cfg.Addrs), lastErr)
}

// verify checks the receipt proves THIS request committed, under some
// replica's key — the client-side audit step the paper's receipts exist
// for.
func (wk *worker) verify(rq *ledger.Request, rc *ledger.Receipt) error {
	if len(wk.cfg.Pubs) == 0 {
		return nil
	}
	if rc == nil {
		return fmt.Errorf("loadgen: committed without receipt (reqno %d)", rq.ReqNo)
	}
	if rc.Entry.ReqNo != rq.ReqNo || rc.Entry.Author != rq.Author {
		return fmt.Errorf("loadgen: receipt is for author %x reqno %d, want reqno %d",
			rc.Entry.Author[:4], rc.Entry.ReqNo, rq.ReqNo)
	}
	for _, pub := range wk.cfg.Pubs {
		if rc.Verify(pub) {
			return nil
		}
	}
	return fmt.Errorf("loadgen: receipt for reqno %d verifies under no replica key", rq.ReqNo)
}

func (wk *worker) disconnect() {
	if wk.cl != nil {
		wk.cl.Close()
		wk.cl = nil
	}
}
