package loadgen

import (
	"fmt"
	"net"
	"os"
	"testing"
	"time"

	"iaccf/internal/consensus"
	"iaccf/internal/hashsig"
	"iaccf/internal/ledger"
	"iaccf/internal/node"
	"iaccf/internal/transport"
)

// bootCluster starts an in-process n-node cluster over real TCP
// transports and returns its RPC addresses and replica public keys.
func bootCluster(t *testing.T, n int, seed string) ([]string, []*hashsig.PublicKey) {
	t.Helper()
	keys := make([]*hashsig.PrivateKey, n)
	pubs := make([]*hashsig.PublicKey, n)
	for i := 0; i < n; i++ {
		keys[i] = hashsig.GenerateKeyFromSeed(fmt.Sprintf("%s/%d", seed, i))
		pubs[i] = keys[i].Public()
	}
	addrs := make(map[transport.NodeID]string, n)
	for i := 0; i < n; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		addrs[transport.NodeID(i)] = ln.Addr().String()
		ln.Close()
	}
	rpcAddrs := make([]string, n)
	for i := 0; i < n; i++ {
		proxy := &transport.HandlerProxy{}
		tp, err := transport.ListenTCP(transport.TCPConfig{
			Self:    transport.NodeID(i),
			Addrs:   addrs,
			Handler: proxy.Handle,
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { tp.Close() })
		clk := node.NewWallClock(2 * time.Millisecond)
		t.Cleanup(clk.Stop)
		nd, err := node.New(node.Config{
			Consensus: consensus.Config{
				ID:              consensus.ReplicaID(i),
				Key:             keys[i],
				Peers:           pubs,
				App:             ledger.KVApp{},
				CheckpointEvery: 4,
				Shards:          1,
			},
			Transport: tp,
			Clock:     clk,
		})
		if err != nil {
			t.Fatal(err)
		}
		proxy.Set(nd.InboundHandler())
		nd.Start()
		t.Cleanup(nd.Stop)
		srv, err := node.ServeRPC(nd, "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { srv.Close() })
		rpcAddrs[i] = srv.Addr().String()
	}
	return rpcAddrs, pubs
}

// TestClusterAcceptance is the CI acceptance gate: boot a 4-replica
// cluster, drive it with concurrent loadgen workers (which follow leader
// hints and verify every receipt client-side), and demand full commit.
// With LOADGEN_REPORT set, the throughput line is written there so CI can
// publish it as an artifact.
func TestClusterAcceptance(t *testing.T) {
	rpcAddrs, pubs := bootCluster(t, 4, "accept")
	cfg := Config{
		Addrs:    rpcAddrs,
		Pubs:     pubs,
		Workers:  4,
		Requests: 12,
		Timeout:  20 * time.Second,
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := cfg.Workers * cfg.Requests
	if res.Committed+res.Duplicates != want {
		t.Fatalf("committed %d + dup %d of %d requests (failed %d)",
			res.Committed, res.Duplicates, want, res.Failures)
	}
	if res.Failures != 0 {
		t.Fatalf("%d submissions failed", res.Failures)
	}
	t.Logf("acceptance: %s", res)
	if path := os.Getenv("LOADGEN_REPORT"); path != "" {
		if err := os.WriteFile(path, []byte(res.String()+"\n"), 0o644); err != nil {
			t.Fatalf("write report: %v", err)
		}
	}
}

// TestWorkerFollowsLeaderHint starts workers on backup nodes: the
// NotPrimary hint must redirect them to the leader with no failures.
func TestWorkerFollowsLeaderHint(t *testing.T) {
	rpcAddrs, pubs := bootCluster(t, 4, "hint")
	// Workers start at target = index % len(Addrs): workers 1 and 2 open
	// against backups and can only commit by following the leader hint.
	res, err := Run(Config{
		Addrs:    rpcAddrs,
		Pubs:     pubs,
		Workers:  3,
		Requests: 4,
		Seed:     "hint-load",
		Timeout:  20 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Committed != 12 || res.Failures != 0 {
		t.Fatalf("unexpected result: %s", res)
	}
}
