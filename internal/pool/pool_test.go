package pool

import (
	"crypto/sha256"
	"sync"
	"testing"
)

// digest stands in for hashsig.Digest; the pool tests cannot import hashsig
// (it uses this package) without an import cycle.
type digest [32]byte

func TestBytesRoundTrip(t *testing.T) {
	var p Bytes
	b := p.Get(64)
	if len(b) != 0 || cap(b) < 64 {
		t.Fatalf("Get(64): len=%d cap=%d", len(b), cap(b))
	}
	b = append(b, 1, 2, 3)
	p.Put(b)
	c := p.Get(16)
	if len(c) != 0 {
		t.Fatalf("reused buffer not zero-length: len=%d", len(c))
	}
}

func TestBytesGetLargerThanPooled(t *testing.T) {
	var p Bytes
	p.Put(make([]byte, 0, 8))
	b := p.Get(1024)
	if cap(b) < 1024 {
		t.Fatalf("Get(1024) after small Put: cap=%d", cap(b))
	}
}

func TestPoisonOverwritesBytes(t *testing.T) {
	defer SetPoison(SetPoison(true))
	var p Bytes
	b := p.Get(8)
	b = append(b, 0xAA, 0xBB)
	retained := b // simulated ownership bug: retained across Put
	p.Put(b)
	if retained[0] != poisonByte || retained[1] != poisonByte {
		t.Fatalf("poison mode left retained bytes readable: % x", retained[:2])
	}
}

func TestPoisonOverwritesSlice(t *testing.T) {
	defer SetPoison(SetPoison(true))
	var p Slice[digest]
	s := p.Get(4)
	s = append(s, digest{0xAA})
	retained := s
	p.Put(s)
	if retained[0] != (digest{}) {
		t.Fatalf("poison mode left retained digest readable: %v", retained[0])
	}
}

func TestSliceRoundTrip(t *testing.T) {
	var p Slice[int]
	s := p.Get(10)
	s = append(s, 1, 2, 3)
	p.Put(s)
	s2 := p.Get(5)
	if len(s2) != 0 || cap(s2) < 5 {
		t.Fatalf("Get(5): len=%d cap=%d", len(s2), cap(s2))
	}
}

func TestZeroCapPutIgnored(t *testing.T) {
	var b Bytes
	b.Put(nil) // must not panic or pool a useless entry
	var s Slice[int]
	s.Put(nil)
}

// TestConcurrentUse drives the pools from many goroutines under -race: the
// sync.Pool inside must serialize hand-offs, and no two goroutines may ever
// observe the same backing array concurrently.
func TestConcurrentUse(t *testing.T) {
	var p Bytes
	var d Slice[digest]
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				b := p.Get(128)
				for j := 0; j < 32; j++ {
					b = append(b, byte(g), byte(i), byte(j))
				}
				s := d.Get(8)
				s = append(s, digest(sha256.Sum256(b)))
				if s[0] == (digest{}) {
					t.Error("digest of non-empty buffer is zero")
				}
				d.Put(s)
				p.Put(b)
			}
		}(g)
	}
	wg.Wait()
}
