// Package pool provides the typed, race-safe buffer pools used on the
// IA-CCF commit critical path. The replicated execution pipeline commits
// tens of thousands of entries per second; without reuse, every entry pays
// for codec buffers, digest scratch, and proof slices that live for
// microseconds, and the garbage collector becomes the next wall after raw
// hashing (the same lesson CCF reports for production ledger nodes).
//
// # Ownership discipline
//
// Pooled memory is only safe if ownership is unambiguous. Every pool in
// this package follows one rule:
//
//   - Get transfers ownership to the caller. The slice is the caller's
//     until it calls Put.
//   - Put transfers ownership back. After Put, the caller must not read,
//     write, or retain the slice — and, critically, must not have leaked it
//     into any value it returned to its own callers. Anything that escapes
//     to a caller (a Batch, a Receipt, an encoded frame) must be freshly
//     allocated or arena-backed, never pooled.
//
// Code that uses these pools documents, at its API boundary, which returned
// slices a caller may retain. The poison mode below exists so tests can
// prove those ownership comments true, and the poolown analyzer
// (internal/analysis/README.md) enforces the rule statically at vet time:
// returning, storing, sending, or goroutine-capturing a pooled slice — or
// touching it after Put — fails `make lint` and CI.
//
// # Poison mode
//
// SetPoison(true) makes every Put overwrite the returned slice with a
// sentinel pattern before it re-enters the pool. A pooled buffer that is
// still reachable from a caller-visible value then shows up as corrupted
// data in the very next assertion, instead of as a once-a-week heisenbug.
// The aliasing property tests run with poison enabled under -race: the race
// detector catches concurrent reuse, poisoning catches sequential reuse.
// Poison mode is for tests only; it turns every Put into an O(cap) write.
package pool

import (
	"sync"
	"sync/atomic"
)

// poisonByte is the sentinel pattern poison mode fills buffers with. 0xDB
// ("dead buffer") is unlikely to round-trip through any codec unnoticed:
// it is not valid UTF-8 as a leading byte and decodes to absurd lengths.
const poisonByte = 0xDB

var poison atomic.Bool

// SetPoison toggles poison mode (see the package comment). It returns the
// previous setting so tests can restore it.
func SetPoison(on bool) bool { return poison.Swap(on) }

// Poisoned reports whether poison mode is on.
func Poisoned() bool { return poison.Load() }

// Bytes is a race-safe pool of byte slices, for codec scratch: encode
// buffers, signing preimages, digest input assembly. The zero value is
// ready for use.
//
// sync.Pool stores interface values, so handing it a slice directly would
// heap-allocate a *[]byte header on every Put — a pool that allocates per
// recycle defeats itself. Instead the header cells themselves are recycled
// through a second pool (hp): in steady state neither Get nor Put
// allocates anything.
type Bytes struct {
	p  sync.Pool // *[]byte cells holding live backing arrays
	hp sync.Pool // spare *[]byte cells, contents nil
}

// Get returns a zero-length slice with capacity at least capacity. The
// caller owns it until Put.
func (p *Bytes) Get(capacity int) []byte {
	if h, _ := p.p.Get().(*[]byte); h != nil {
		b := *h
		*h = nil
		p.hp.Put(h)
		if cap(b) >= capacity {
			return b[:0]
		}
	}
	return make([]byte, 0, capacity)
}

// Put returns b's backing array to the pool. The caller must hold the only
// live reference: nothing it handed to its own callers may alias b.
func (p *Bytes) Put(b []byte) {
	if cap(b) == 0 {
		return
	}
	if poison.Load() {
		b = b[:cap(b)]
		for i := range b {
			b[i] = poisonByte
		}
	}
	h, _ := p.hp.Get().(*[]byte)
	if h == nil {
		h = new([]byte)
	}
	*h = b[:0]
	p.p.Put(h)
}

// Slice is a race-safe pool of []T, for typed scratch: digest vectors,
// index slices, per-shard grouping tables. The zero value is ready for use.
// Header cells are recycled exactly as in Bytes.
type Slice[T any] struct {
	p  sync.Pool // *[]T cells holding live backing arrays
	hp sync.Pool // spare *[]T cells, contents nil
}

// Get returns a zero-length slice with capacity at least capacity. The
// caller owns it until Put.
func (p *Slice[T]) Get(capacity int) []T {
	if h, _ := p.p.Get().(*[]T); h != nil {
		s := *h
		*h = nil
		p.hp.Put(h)
		if cap(s) >= capacity {
			return s[:0]
		}
	}
	return make([]T, 0, capacity)
}

// Put returns s's backing array to the pool under the same ownership rule
// as Bytes.Put. In poison mode every element is overwritten with T's zero
// value, so a digest or index that leaked into a returned structure reads
// back as zero instead of as stale-but-plausible data.
func (p *Slice[T]) Put(s []T) {
	if cap(s) == 0 {
		return
	}
	if poison.Load() {
		var zero T
		s = s[:cap(s)]
		for i := range s {
			s[i] = zero
		}
	}
	h, _ := p.hp.Get().(*[]T)
	if h == nil {
		h = new([]T)
	}
	*h = s[:0]
	p.p.Put(h)
}
