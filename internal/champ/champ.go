// Package champ implements a persistent (immutable) hash-array-mapped
// prefix-tree map with structural sharing, after the CHAMP design of
// Steindorfer & Vinju that CCF's key-value store uses (paper §6.6).
//
// A Map value is immutable: Set and Delete return new maps sharing almost
// all structure with the original. This gives the IA-CCF key-value store
// O(1) snapshots, transaction-granularity rollback, and cheap batch undo
// (Lemma 1) — a snapshot is just a pointer.
//
// Access cost grows logarithmically (base 32) with the number of entries,
// which is the effect Fig. 7 measures when the SmallBank account count
// grows.
package champ

import (
	"math/bits"
	"sort"
)

const (
	branchBits = 5
	branchSize = 1 << branchBits // 32
	chunkMask  = branchSize - 1
	// maxLevel is the deepest level with hash bits left; below it keys with
	// fully colliding hashes go into collision nodes.
	maxLevel = 64 / branchBits
)

// hashKey places a key in the trie. It is deterministic across processes:
// trie placement — and therefore canonical iteration order (RangeCanonical)
// — is a pure function of the key, so two replicas holding the same
// contents stream them in the same order without any sort pass. The raw
// FNV value is passed through a full-avalanche finalizer so trie placement
// is statistically independent of shard placement (ShardOf uses the raw
// value mod the shard count; without the mix, every key in one shard would
// share its low chunk bits and the per-shard tries would degenerate into
// single-child chains).
func hashKey(key string) uint64 {
	return mix64(fnvOf(key))
}

// mix64 is the SplitMix64 finalizer: a cheap bijective full-avalanche mix.
func mix64(h uint64) uint64 {
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	return h
}

// FNV-1a parameters (64-bit).
const (
	fnvOffset = 14695981039346656037
	fnvPrime  = 1099511628211
)

// fnvOf returns the 64-bit FNV-1a hash of key, the shared deterministic
// base for both shard placement and (after mixing) trie placement.
func fnvOf(key string) uint64 {
	h := uint64(fnvOffset)
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= fnvPrime
	}
	return h
}

// ShardOf returns the shard index of key in a partition of the key space
// into shards parts (paper §6: partitioned stores). The assignment is
// deterministic across processes and depends only on the key and the shard
// count, so replicas, auditors, and restored checkpoints all agree on
// placement. shards must be >= 1; ShardOf(key, 1) is always 0.
func ShardOf(key string, shards uint32) uint32 {
	if shards <= 1 {
		return 0
	}
	return uint32(fnvOf(key) % uint64(shards))
}

// Map is an immutable hash map from string keys to byte-slice values.
// Construct with Empty; the zero value is not usable.
type Map struct {
	root *node
	size int
}

var empty = &Map{root: &node{}}

// Empty returns the empty map.
func Empty() *Map { return empty }

// Len returns the number of entries.
func (m *Map) Len() int { return m.size }

// Get returns the value stored under key.
func (m *Map) Get(key string) ([]byte, bool) {
	return m.root.get(key, hashKey(key), 0)
}

// Has reports whether key is present.
func (m *Map) Has(key string) bool {
	_, ok := m.Get(key)
	return ok
}

// Set returns a new map with key bound to val. The receiver is unchanged.
// The value slice is stored as-is; callers must not mutate it afterwards.
func (m *Map) Set(key string, val []byte) *Map {
	root, added := m.root.set(key, val, hashKey(key), 0)
	size := m.size
	if added {
		size++
	}
	return &Map{root: root, size: size}
}

// Delete returns a new map without key. The receiver is unchanged.
func (m *Map) Delete(key string) *Map {
	root, removed := m.root.delete(key, hashKey(key), 0)
	if !removed {
		return m
	}
	return &Map{root: root, size: m.size - 1}
}

// Range calls fn for every entry until fn returns false. Iteration order is
// raw trie order (data entries before children at each node): stable for a
// given map value but dependent on the construction history, so callers
// needing a deterministic order must use RangeCanonical.
func (m *Map) Range(fn func(key string, val []byte) bool) {
	m.root.rang(fn)
}

// RangeCanonical calls fn for every entry in canonical order until fn
// returns false. Canonical order is the in-order traversal of the trie —
// data entries and children interleaved by chunk slot, collision buckets in
// ascending key order — which makes each key's position a pure function of
// the key itself (its hash chunk sequence), independent of the construction
// history and of how deep the trie happens to hold it. Two maps with the
// same contents therefore always stream in the same order, on any process:
// this is the iterator that lets checkpoint serialization and shard digests
// skip the collect-then-sort pass they used to pay per dirty shard.
func (m *Map) RangeCanonical(fn func(key string, val []byte) bool) {
	m.root.rangCanonical(fn)
}

// RangeShard calls fn for every entry whose key lands in the given shard of
// a shards-way partition (per ShardOf), until fn returns false. Iteration
// order is canonical (RangeCanonical), so the subsequence for one shard is
// byte-for-byte the order a standalone map holding only that shard's keys
// would stream — which is what lets an auditor's flat store cross-check a
// sharded replica's per-shard digests without materializing the shard.
func (m *Map) RangeShard(shard, shards uint32, fn func(key string, val []byte) bool) {
	m.root.rangCanonical(func(k string, v []byte) bool {
		if ShardOf(k, shards) != shard {
			return true
		}
		return fn(k, v)
	})
}

// RangeSorted calls fn for every entry in ascending key order until fn
// returns false. It walks the trie once, gathering (key, value) references
// into a sort index, then streams entries in order — values are never
// copied and there are no per-key trie lookups, so checkpoint serialization
// over a large store touches each node exactly once (paper §3.4).
func (m *Map) RangeSorted(fn func(key string, val []byte) bool) {
	type entry struct {
		key string
		val []byte
	}
	entries := make([]entry, 0, m.size)
	m.root.rang(func(k string, v []byte) bool {
		entries = append(entries, entry{key: k, val: v})
		return true
	})
	sort.Slice(entries, func(i, j int) bool { return entries[i].key < entries[j].key })
	for _, e := range entries {
		if !fn(e.key, e.val) {
			return
		}
	}
}

// node is a CHAMP trie node: dataMap marks chunks holding inline entries,
// nodeMap marks chunks holding children. A node with coll != nil is a
// collision bucket at max depth and uses only the slices.
type node struct {
	dataMap  uint32
	nodeMap  uint32
	keys     []string
	vals     [][]byte
	children []*node
	coll     bool
}

func chunk(h uint64, level int) uint32 {
	return uint32(h>>(uint(level)*branchBits)) & chunkMask
}

// dataIndex returns the compressed slot of a data entry for bit.
func (n *node) dataIndex(bit uint32) int {
	return bits.OnesCount32(n.dataMap & (bit - 1))
}

// nodeIndex returns the compressed slot of a child for bit.
func (n *node) nodeIndex(bit uint32) int {
	return bits.OnesCount32(n.nodeMap & (bit - 1))
}

func (n *node) get(key string, h uint64, level int) ([]byte, bool) {
	if n.coll {
		for i, k := range n.keys {
			if k == key {
				return n.vals[i], true
			}
		}
		return nil, false
	}
	bit := uint32(1) << chunk(h, level)
	if n.dataMap&bit != 0 {
		i := n.dataIndex(bit)
		if n.keys[i] == key {
			return n.vals[i], true
		}
		return nil, false
	}
	if n.nodeMap&bit != 0 {
		return n.children[n.nodeIndex(bit)].get(key, h, level+1)
	}
	return nil, false
}

// set returns the updated node and whether a new key was added.
func (n *node) set(key string, val []byte, h uint64, level int) (*node, bool) {
	if n.coll {
		for i, k := range n.keys {
			if k == key {
				c := n.cloneShallow()
				c.vals[i] = val
				return c, false
			}
		}
		c := n.cloneShallow()
		i := sort.SearchStrings(c.keys, key)
		c.keys = append(c.keys[:i], append([]string{key}, c.keys[i:]...)...)
		c.vals = append(c.vals[:i], append([][]byte{val}, c.vals[i:]...)...)
		return c, true
	}
	bit := uint32(1) << chunk(h, level)
	switch {
	case n.dataMap&bit != 0:
		i := n.dataIndex(bit)
		if n.keys[i] == key {
			c := n.cloneShallow()
			c.vals[i] = val
			return c, false
		}
		// Two distinct keys share this chunk: push both one level down.
		child := merge(n.keys[i], n.vals[i], hashKey(n.keys[i]), key, val, h, level+1)
		c := n.cloneShallow()
		c.removeData(bit)
		c.insertChild(bit, child)
		return c, true
	case n.nodeMap&bit != 0:
		i := n.nodeIndex(bit)
		child, added := n.children[i].set(key, val, h, level+1)
		c := n.cloneShallow()
		c.children[i] = child
		return c, added
	default:
		c := n.cloneShallow()
		c.insertData(bit, key, val)
		return c, true
	}
}

// merge builds the subtree holding two keys that collide at a chunk.
func merge(k1 string, v1 []byte, h1 uint64, k2 string, v2 []byte, h2 uint64, level int) *node {
	if level >= maxLevel {
		// Collision buckets keep keys sorted so canonical order is defined
		// even where hashes cannot distinguish entries.
		if k2 < k1 {
			k1, k2 = k2, k1
			v1, v2 = v2, v1
		}
		return &node{coll: true, keys: []string{k1, k2}, vals: [][]byte{v1, v2}}
	}
	c1, c2 := chunk(h1, level), chunk(h2, level)
	if c1 == c2 {
		child := merge(k1, v1, h1, k2, v2, h2, level+1)
		return &node{nodeMap: 1 << c1, children: []*node{child}}
	}
	n := &node{}
	if c1 < c2 {
		n.dataMap = 1<<c1 | 1<<c2
		n.keys = []string{k1, k2}
		n.vals = [][]byte{v1, v2}
	} else {
		n.dataMap = 1<<c1 | 1<<c2
		n.keys = []string{k2, k1}
		n.vals = [][]byte{v2, v1}
	}
	return n
}

// delete returns the updated node and whether the key was present.
func (n *node) delete(key string, h uint64, level int) (*node, bool) {
	if n.coll {
		for i, k := range n.keys {
			if k == key {
				c := n.cloneShallow()
				c.keys = append(append([]string{}, n.keys[:i]...), n.keys[i+1:]...)
				c.vals = append(append([][]byte{}, n.vals[:i]...), n.vals[i+1:]...)
				return c, true
			}
		}
		return n, false
	}
	bit := uint32(1) << chunk(h, level)
	if n.dataMap&bit != 0 {
		i := n.dataIndex(bit)
		if n.keys[i] != key {
			return n, false
		}
		c := n.cloneShallow()
		c.removeData(bit)
		return c, true
	}
	if n.nodeMap&bit != 0 {
		i := n.nodeIndex(bit)
		child, removed := n.children[i].delete(key, h, level+1)
		if !removed {
			return n, false
		}
		c := n.cloneShallow()
		if child.isEmpty() {
			c.removeChild(bit)
		} else {
			c.children[i] = child
		}
		return c, true
	}
	return n, false
}

func (n *node) isEmpty() bool {
	if n.coll {
		return len(n.keys) == 0
	}
	return n.dataMap == 0 && n.nodeMap == 0
}

func (n *node) rang(fn func(string, []byte) bool) bool {
	for i, k := range n.keys {
		if !fn(k, n.vals[i]) {
			return false
		}
	}
	for _, c := range n.children {
		if !c.rang(fn) {
			return false
		}
	}
	return true
}

// rangCanonical visits entries in canonical order: chunk slots ascending,
// with a slot's inline entry or child visited in slot position (CHAMP keeps
// each slot exclusively data or child, so the interleave is well defined).
// The resulting sequence sorts keys by their hash chunk sequence, which is
// independent of how the trie was built: an entry inlined at level L in one
// map and pushed deeper in another still appears at the same rank, because
// every deeper placement keeps the same level-L chunk. Collision buckets
// hold keys sorted (merge and set maintain this), closing the one case
// where the hash alone cannot order entries.
func (n *node) rangCanonical(fn func(string, []byte) bool) bool {
	if n.coll {
		for i, k := range n.keys {
			if !fn(k, n.vals[i]) {
				return false
			}
		}
		return true
	}
	for rest := n.dataMap | n.nodeMap; rest != 0; rest &= rest - 1 {
		bit := rest & -rest
		if n.dataMap&bit != 0 {
			i := n.dataIndex(bit)
			if !fn(n.keys[i], n.vals[i]) {
				return false
			}
		} else if !n.children[n.nodeIndex(bit)].rangCanonical(fn) {
			return false
		}
	}
	return true
}

func (n *node) cloneShallow() *node {
	return &node{
		dataMap:  n.dataMap,
		nodeMap:  n.nodeMap,
		keys:     append([]string(nil), n.keys...),
		vals:     append([][]byte(nil), n.vals...),
		children: append([]*node(nil), n.children...),
		coll:     n.coll,
	}
}

func (n *node) insertData(bit uint32, key string, val []byte) {
	i := bits.OnesCount32(n.dataMap & (bit - 1))
	n.keys = append(n.keys[:i], append([]string{key}, n.keys[i:]...)...)
	n.vals = append(n.vals[:i], append([][]byte{val}, n.vals[i:]...)...)
	n.dataMap |= bit
}

func (n *node) removeData(bit uint32) {
	i := bits.OnesCount32(n.dataMap & (bit - 1))
	n.keys = append(n.keys[:i], n.keys[i+1:]...)
	n.vals = append(n.vals[:i], n.vals[i+1:]...)
	n.dataMap &^= bit
}

func (n *node) insertChild(bit uint32, child *node) {
	i := bits.OnesCount32(n.nodeMap & (bit - 1))
	n.children = append(n.children[:i], append([]*node{child}, n.children[i:]...)...)
	n.nodeMap |= bit
}

func (n *node) removeChild(bit uint32) {
	i := bits.OnesCount32(n.nodeMap & (bit - 1))
	n.children = append(n.children[:i], n.children[i+1:]...)
	n.nodeMap &^= bit
}
