package champ

import (
	"fmt"
	"testing"
)

func benchMap(n int) *Map {
	m := Empty()
	for i := 0; i < n; i++ {
		m = m.Set(fmt.Sprintf("account_%08d", i), []byte("balance"))
	}
	return m
}

// BenchmarkRangeSorted measures the checkpoint-serialization iteration
// order: one trie walk plus a key sort, streamed in key order.
func BenchmarkRangeSorted(b *testing.B) {
	for _, n := range []int{1000, 10000, 100000} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			m := benchMap(n)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				count := 0
				m.RangeSorted(func(string, []byte) bool {
					count++
					return true
				})
				if count != n {
					b.Fatal("short iteration")
				}
			}
		})
	}
}

// BenchmarkDelete measures structural-sharing removal cost.
func BenchmarkDelete(b *testing.B) {
	for _, n := range []int{1000, 100000} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			m := benchMap(n)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				m.Delete(fmt.Sprintf("account_%08d", i%n))
			}
		})
	}
}
