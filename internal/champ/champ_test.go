package champ

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestEmpty(t *testing.T) {
	m := Empty()
	if m.Len() != 0 {
		t.Fatal("empty map has entries")
	}
	if _, ok := m.Get("missing"); ok {
		t.Fatal("empty map returned a value")
	}
	if m.Has("x") {
		t.Fatal("empty map Has returned true")
	}
	if m.Delete("x") != m {
		t.Fatal("deleting from empty map should return the same map")
	}
}

func TestSetGet(t *testing.T) {
	m := Empty()
	for i := 0; i < 1000; i++ {
		m = m.Set(fmt.Sprintf("key-%d", i), []byte(fmt.Sprintf("val-%d", i)))
	}
	if m.Len() != 1000 {
		t.Fatalf("len %d != 1000", m.Len())
	}
	for i := 0; i < 1000; i++ {
		v, ok := m.Get(fmt.Sprintf("key-%d", i))
		if !ok || string(v) != fmt.Sprintf("val-%d", i) {
			t.Fatalf("key-%d: got %q ok=%v", i, v, ok)
		}
	}
	if _, ok := m.Get("key-1000"); ok {
		t.Fatal("absent key found")
	}
}

func TestOverwrite(t *testing.T) {
	m := Empty().Set("k", []byte("a"))
	m2 := m.Set("k", []byte("b"))
	if m.Len() != 1 || m2.Len() != 1 {
		t.Fatal("overwrite changed length")
	}
	if v, _ := m.Get("k"); string(v) != "a" {
		t.Fatal("original mutated by overwrite")
	}
	if v, _ := m2.Get("k"); string(v) != "b" {
		t.Fatal("overwrite did not take")
	}
}

func TestImmutability(t *testing.T) {
	base := Empty()
	for i := 0; i < 100; i++ {
		base = base.Set(fmt.Sprintf("k%d", i), []byte{byte(i)})
	}
	snapshot := base
	derived := base
	for i := 0; i < 100; i++ {
		derived = derived.Set(fmt.Sprintf("k%d", i), []byte{0xff})
		derived = derived.Delete(fmt.Sprintf("k%d", (i+50)%100))
	}
	// The snapshot must be untouched.
	if snapshot.Len() != 100 {
		t.Fatal("snapshot length changed")
	}
	for i := 0; i < 100; i++ {
		v, ok := snapshot.Get(fmt.Sprintf("k%d", i))
		if !ok || v[0] != byte(i) {
			t.Fatalf("snapshot entry k%d changed: %v %v", i, v, ok)
		}
	}
}

func TestDelete(t *testing.T) {
	m := Empty()
	const n = 500
	for i := 0; i < n; i++ {
		m = m.Set(fmt.Sprintf("k%d", i), []byte("v"))
	}
	for i := 0; i < n; i += 2 {
		m = m.Delete(fmt.Sprintf("k%d", i))
	}
	if m.Len() != n/2 {
		t.Fatalf("len %d after deletes", m.Len())
	}
	for i := 0; i < n; i++ {
		_, ok := m.Get(fmt.Sprintf("k%d", i))
		if (i%2 == 0) == ok {
			t.Fatalf("k%d present=%v", i, ok)
		}
	}
	// Deleting absent keys is a no-op returning the same map.
	if m.Delete("k0") != m {
		t.Fatal("delete of absent key did not return same map")
	}
}

func TestRange(t *testing.T) {
	m := Empty()
	want := map[string]string{}
	for i := 0; i < 300; i++ {
		k, v := fmt.Sprintf("k%d", i), fmt.Sprintf("v%d", i)
		m = m.Set(k, []byte(v))
		want[k] = v
	}
	got := map[string]string{}
	m.Range(func(k string, v []byte) bool {
		got[k] = string(v)
		return true
	})
	if len(got) != len(want) {
		t.Fatalf("range visited %d of %d", len(got), len(want))
	}
	for k, v := range want {
		if got[k] != v {
			t.Fatalf("range %s: %q != %q", k, got[k], v)
		}
	}
	// Early termination.
	count := 0
	m.Range(func(string, []byte) bool {
		count++
		return count < 10
	})
	if count != 10 {
		t.Fatalf("early termination visited %d", count)
	}
}

func TestRangeStableForSameValue(t *testing.T) {
	m := Empty()
	for i := 0; i < 200; i++ {
		m = m.Set(fmt.Sprintf("k%d", i), []byte("v"))
	}
	var a, b []string
	m.Range(func(k string, _ []byte) bool { a = append(a, k); return true })
	m.Range(func(k string, _ []byte) bool { b = append(b, k); return true })
	if len(a) != len(b) {
		t.Fatal("iteration lengths differ")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("iteration order not stable")
		}
	}
}

func TestRangeSorted(t *testing.T) {
	m := Empty()
	want := make([]string, 0, 100)
	for i := 99; i >= 0; i-- {
		k := fmt.Sprintf("key-%03d", i)
		m = m.Set(k, []byte{byte(i)})
		want = append(want, k)
	}
	sort.Strings(want)
	got := make([]string, 0, 100)
	m.RangeSorted(func(k string, v []byte) bool {
		if len(got) > 0 && got[len(got)-1] >= k {
			t.Fatalf("keys out of order: %q after %q", k, got[len(got)-1])
		}
		i := len(got)
		if v[0] != byte(i) {
			t.Fatalf("key %q paired with wrong value %d", k, v[0])
		}
		got = append(got, k)
		return true
	})
	if len(got) != len(want) {
		t.Fatalf("visited %d keys, want %d", len(got), len(want))
	}

	// Early stop.
	n := 0
	m.RangeSorted(func(string, []byte) bool {
		n++
		return n < 5
	})
	if n != 5 {
		t.Fatalf("early stop visited %d", n)
	}

	// Empty map.
	Empty().RangeSorted(func(string, []byte) bool {
		t.Fatal("callback on empty map")
		return true
	})
}

// TestQuickModel drives the map against Go's builtin map with random ops.
func TestQuickModel(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := Empty()
		model := map[string]string{}
		for op := 0; op < 500; op++ {
			k := fmt.Sprintf("k%d", rng.Intn(120))
			switch rng.Intn(3) {
			case 0, 1:
				v := fmt.Sprintf("v%d", rng.Int())
				m = m.Set(k, []byte(v))
				model[k] = v
			case 2:
				m = m.Delete(k)
				delete(model, k)
			}
			if m.Len() != len(model) {
				return false
			}
			v, ok := m.Get(k)
			mv, mok := model[k]
			if ok != mok || (ok && string(v) != mv) {
				return false
			}
		}
		// Full consistency check at the end.
		for k, mv := range model {
			v, ok := m.Get(k)
			if !ok || string(v) != mv {
				return false
			}
		}
		count := 0
		m.Range(func(k string, v []byte) bool {
			count++
			return model[k] == string(v)
		})
		return count == len(model)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// TestCollisions exercises collision buckets via keys engineered to collide
// by exhausting the trie (many keys, ensuring deep paths exercise merge).
func TestManyKeysDeepPaths(t *testing.T) {
	m := Empty()
	const n = 20000
	for i := 0; i < n; i++ {
		m = m.Set(fmt.Sprintf("account_%08d", i), []byte{byte(i), byte(i >> 8)})
	}
	if m.Len() != n {
		t.Fatalf("len %d", m.Len())
	}
	for i := 0; i < n; i += 97 {
		v, ok := m.Get(fmt.Sprintf("account_%08d", i))
		if !ok || v[0] != byte(i) {
			t.Fatalf("account %d wrong", i)
		}
	}
}

func TestCollisionNodePaths(t *testing.T) {
	// Drive merge/collision logic directly at max depth.
	n1 := merge("a", []byte("1"), 0, "b", []byte("2"), 0, maxLevel)
	if !n1.coll {
		t.Fatal("expected collision node at max level")
	}
	n2, added := n1.set("c", []byte("3"), 0, maxLevel)
	if !added || len(n2.keys) != 3 {
		t.Fatal("collision insert failed")
	}
	n3, added := n2.set("a", []byte("9"), 0, maxLevel)
	if added {
		t.Fatal("collision overwrite reported as add")
	}
	if v, ok := n3.get("a", 0, maxLevel); !ok || string(v) != "9" {
		t.Fatal("collision get after overwrite failed")
	}
	n4, removed := n3.delete("b", 0, maxLevel)
	if !removed {
		t.Fatal("collision delete failed")
	}
	if _, ok := n4.get("b", 0, maxLevel); ok {
		t.Fatal("deleted collision key still present")
	}
	if _, removed := n4.delete("zz", 0, maxLevel); removed {
		t.Fatal("absent collision delete reported removal")
	}
}

func BenchmarkGet(b *testing.B) {
	for _, n := range []int{1000, 10000, 100000, 1000000} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			m := Empty()
			for i := 0; i < n; i++ {
				m = m.Set(fmt.Sprintf("account_%08d", i), []byte("balance"))
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				m.Get(fmt.Sprintf("account_%08d", i%n))
			}
		})
	}
}

func BenchmarkSet(b *testing.B) {
	for _, n := range []int{1000, 10000, 100000, 1000000} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			m := Empty()
			for i := 0; i < n; i++ {
				m = m.Set(fmt.Sprintf("account_%08d", i), []byte("balance"))
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				m.Set(fmt.Sprintf("account_%08d", i%n), []byte("updated"))
			}
		})
	}
}

func TestShardOfDeterministic(t *testing.T) {
	// Known-answer values pin the FNV-1a assignment: any change to the hash
	// moves keys between shards and invalidates every existing sharded
	// checkpoint digest d_C, so a change here must be a deliberate,
	// format-breaking decision — not an accident this test lets through.
	pinned := []struct {
		key    string
		shards uint32
		want   uint32
	}{
		{"", 16, 5}, {"", 64, 37}, {"", 1024, 805},
		{"alice", 16, 7}, {"alice", 64, 7}, {"alice", 1024, 263},
		{"bob", 16, 4}, {"bob", 64, 20}, {"bob", 1024, 596},
		{"account_00000042", 16, 7}, {"account_00000042", 64, 23}, {"account_00000042", 1024, 215},
	}
	for _, p := range pinned {
		if got := ShardOf(p.key, p.shards); got != p.want {
			t.Fatalf("ShardOf(%q, %d) = %d, want pinned %d: the shard hash changed", p.key, p.shards, got, p.want)
		}
	}
	if got := ShardOf("alice", 1); got != 0 {
		t.Fatalf("ShardOf(_, 1) = %d, want 0", got)
	}
	if got := ShardOf("alice", 0); got != 0 {
		t.Fatalf("ShardOf(_, 0) = %d, want 0", got)
	}
	for _, shards := range []uint32{2, 3, 16, 64} {
		for i := 0; i < 1000; i++ {
			k := fmt.Sprintf("key-%d", i)
			s := ShardOf(k, shards)
			if s >= shards {
				t.Fatalf("ShardOf(%q, %d) = %d out of range", k, shards, s)
			}
			if s != ShardOf(k, shards) {
				t.Fatalf("ShardOf(%q, %d) not deterministic", k, shards)
			}
		}
	}
}

func TestShardOfSpreads(t *testing.T) {
	const shards = 16
	counts := make([]int, shards)
	const n = 16000
	for i := 0; i < n; i++ {
		counts[ShardOf(fmt.Sprintf("account_%08d", i), shards)]++
	}
	for s, c := range counts {
		// Expect ~1000 per shard; a shard at <1/4 or >4x of uniform means the
		// hash is badly skewed for realistic key shapes.
		if c < n/shards/4 || c > n/shards*4 {
			t.Fatalf("shard %d holds %d of %d keys: badly skewed", s, c, n)
		}
	}
}

func TestRangeShardPartitions(t *testing.T) {
	m := Empty()
	want := map[string]string{}
	for i := 0; i < 500; i++ {
		k, v := fmt.Sprintf("k%d", i), fmt.Sprintf("v%d", i)
		m = m.Set(k, []byte(v))
		want[k] = v
	}
	const shards = 7
	seen := map[string]string{}
	for s := uint32(0); s < shards; s++ {
		m.RangeShard(s, shards, func(k string, v []byte) bool {
			if ShardOf(k, shards) != s {
				t.Fatalf("RangeShard(%d) yielded key %q of shard %d", s, k, ShardOf(k, shards))
			}
			if _, dup := seen[k]; dup {
				t.Fatalf("key %q yielded by two shards", k)
			}
			seen[k] = string(v)
			return true
		})
	}
	if len(seen) != len(want) {
		t.Fatalf("shards yielded %d keys, map holds %d", len(seen), len(want))
	}
	for k, v := range want {
		if seen[k] != v {
			t.Fatalf("key %q value %q, want %q", k, seen[k], v)
		}
	}
	// Early exit stops iteration.
	n := 0
	m.RangeShard(0, 1, func(string, []byte) bool {
		n++
		return n < 3
	})
	if n != 3 {
		t.Fatalf("early exit iterated %d entries", n)
	}
}
