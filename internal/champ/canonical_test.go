package champ

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

// canonicalKeys returns the canonical iteration order of m's keys.
func canonicalKeys(m *Map) []string {
	keys := make([]string, 0, m.Len())
	m.RangeCanonical(func(k string, _ []byte) bool {
		keys = append(keys, k)
		return true
	})
	return keys
}

// chunkLess is the specification of canonical order: lexicographic on the
// hash chunk sequence, ties (full 64-bit collisions) broken by key. The
// iterator must produce exactly this order without ever computing it.
func chunkLess(a, b string) bool {
	ha, hb := hashKey(a), hashKey(b)
	for level := 0; level <= maxLevel; level++ {
		ca, cb := chunk(ha, level), chunk(hb, level)
		if ca != cb {
			return ca < cb
		}
	}
	return a < b
}

func TestRangeCanonicalEmpty(t *testing.T) {
	Empty().RangeCanonical(func(string, []byte) bool {
		t.Fatal("callback on empty map")
		return true
	})
}

func TestRangeCanonicalSingle(t *testing.T) {
	m := Empty().Set("only", []byte("v"))
	got := canonicalKeys(m)
	if len(got) != 1 || got[0] != "only" {
		t.Fatalf("single-key canonical order = %v", got)
	}
}

func TestRangeCanonicalMatchesSpec(t *testing.T) {
	m := Empty()
	want := make([]string, 0, 2000)
	for i := 0; i < 2000; i++ {
		k := fmt.Sprintf("account_%08d", i)
		m = m.Set(k, []byte{byte(i)})
		want = append(want, k)
	}
	sort.Slice(want, func(i, j int) bool { return chunkLess(want[i], want[j]) })
	got := canonicalKeys(m)
	if len(got) != len(want) {
		t.Fatalf("canonical visited %d of %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("position %d: got %q want %q", i, got[i], want[i])
		}
	}
}

func TestRangeCanonicalEarlyStop(t *testing.T) {
	m := Empty()
	for i := 0; i < 100; i++ {
		m = m.Set(fmt.Sprintf("k%d", i), []byte("v"))
	}
	n := 0
	m.RangeCanonical(func(string, []byte) bool {
		n++
		return n < 7
	})
	if n != 7 {
		t.Fatalf("early stop visited %d", n)
	}
}

// TestRangeCanonicalHistoryIndependent is the property the checkpoint paths
// rely on: two maps holding identical contents stream identically, no matter
// the insertion order or any insert/delete detours taken along the way.
func TestRangeCanonicalHistoryIndependent(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 50 + rng.Intn(400)
		keys := make([]string, n)
		a := Empty()
		for i := range keys {
			keys[i] = fmt.Sprintf("key-%d-%d", rng.Intn(1000), i)
			a = a.Set(keys[i], []byte{byte(i)})
		}
		// Build b with the same final contents through a scrambled insertion
		// order, plus inserted-then-deleted extras that perturb the trie
		// structure (delete does not collapse single-child paths).
		perm := rng.Perm(n)
		b := Empty()
		for _, i := range perm {
			if rng.Intn(3) == 0 {
				extra := fmt.Sprintf("extra-%d", rng.Int())
				b = b.Set(extra, []byte("x"))
				b = b.Delete(extra)
			}
			b = b.Set(keys[i], []byte{byte(i)})
		}
		ka, kb := canonicalKeys(a), canonicalKeys(b)
		if len(ka) != len(kb) || len(ka) != n {
			return false
		}
		for i := range ka {
			if ka[i] != kb[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// TestRangeCanonicalCollisions drives the collision-bucket branch directly
// at max depth (all keys share hash 0) and checks keys stream sorted no
// matter the order they arrived in.
func TestRangeCanonicalCollisions(t *testing.T) {
	n := merge("delta", []byte("4"), 0, "bravo", []byte("2"), 0, maxLevel)
	if !n.coll {
		t.Fatal("expected collision node at max level")
	}
	for _, k := range []string{"echo", "alpha", "charlie"} {
		n, _ = n.set(k, []byte(k), 0, maxLevel)
	}
	if !sort.StringsAreSorted(n.keys) {
		t.Fatalf("collision bucket not sorted: %v", n.keys)
	}
	var got []string
	n.rangCanonical(func(k string, v []byte) bool {
		got = append(got, k)
		return true
	})
	want := []string{"alpha", "bravo", "charlie", "delta", "echo"}
	if len(got) != len(want) {
		t.Fatalf("collision canonical visited %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("collision order %v, want %v", got, want)
		}
	}
	// Delete keeps the remaining bucket sorted; overwrite keeps position.
	n, removed := n.delete("charlie", 0, maxLevel)
	if !removed || !sort.StringsAreSorted(n.keys) {
		t.Fatalf("bucket after delete: %v", n.keys)
	}
	n, added := n.set("bravo", []byte("new"), 0, maxLevel)
	if added || !sort.StringsAreSorted(n.keys) {
		t.Fatalf("bucket after overwrite: %v (added=%v)", n.keys, added)
	}
	// Early stop inside a bucket.
	count := 0
	n.rangCanonical(func(string, []byte) bool {
		count++
		return false
	})
	if count != 1 {
		t.Fatalf("early stop in bucket visited %d", count)
	}
}

// BenchmarkRangeCanonical measures the streaming iterator against the
// collect-then-sort path it replaces on the checkpoint-serialization shape.
func BenchmarkRangeCanonical(b *testing.B) {
	for _, n := range []int{10000, 100000} {
		m := Empty()
		for i := 0; i < n; i++ {
			m = m.Set(fmt.Sprintf("account_%08d", i), []byte("0000000100"))
		}
		b.Run(fmt.Sprintf("canonical/n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				m.RangeCanonical(func(string, []byte) bool { return true })
			}
		})
		b.Run(fmt.Sprintf("sorted/n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				m.RangeSorted(func(string, []byte) bool { return true })
			}
		})
	}
}
