package transport

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// TCPConfig parameterizes a TCP transport.
type TCPConfig struct {
	// Self is this node's ID. Required to appear in Addrs.
	Self NodeID
	// Addrs maps every cluster node (including Self) to its host:port.
	// Self's entry is the listen address.
	Addrs map[NodeID]string
	// Handler receives inbound frames. Required.
	Handler Handler
	// QueueLen bounds each peer's outbound queue. 0 means 1024.
	QueueLen int
	// DialBackoff is the initial reconnect delay, doubling to 32x.
	// 0 means 50ms.
	DialBackoff time.Duration
	// WriteTimeout bounds one frame write. 0 means 10s.
	WriteTimeout time.Duration
}

// TCP is the production transport: one dialed connection per peer for
// sending (reconnecting with exponential backoff), one accepted connection
// per peer for receiving. See the package doc for the wire protocol.
type TCP struct {
	cfg     TCPConfig
	ln      net.Listener
	peers   map[NodeID]*tcpPeer
	dropped atomic.Uint64

	mu     sync.Mutex
	closed bool
	conns  map[net.Conn]struct{} // accepted connections, for Close
	wg     sync.WaitGroup
}

// tcpPeer is one outbound lane: a bounded queue drained by a writer
// goroutine that owns the dial/reconnect loop.
type tcpPeer struct {
	id    NodeID
	addr  string
	queue chan []byte
	done  chan struct{}
}

// ListenTCP starts a TCP transport: binds Self's listen address and spawns
// one sender per peer. Peers may come up in any order — senders retry
// until their peer is listening.
func ListenTCP(cfg TCPConfig) (*TCP, error) {
	if cfg.Handler == nil {
		return nil, fmt.Errorf("transport: nil handler")
	}
	if _, ok := cfg.Addrs[cfg.Self]; !ok {
		return nil, fmt.Errorf("transport: self %d missing from address map", cfg.Self)
	}
	if cfg.QueueLen <= 0 {
		cfg.QueueLen = 1024
	}
	if cfg.DialBackoff <= 0 {
		cfg.DialBackoff = 50 * time.Millisecond
	}
	if cfg.WriteTimeout <= 0 {
		cfg.WriteTimeout = 10 * time.Second
	}
	ln, err := net.Listen("tcp", cfg.Addrs[cfg.Self])
	if err != nil {
		return nil, fmt.Errorf("transport: listen %s: %w", cfg.Addrs[cfg.Self], err)
	}
	t := &TCP{
		cfg:   cfg,
		ln:    ln,
		peers: make(map[NodeID]*tcpPeer),
		conns: make(map[net.Conn]struct{}),
	}
	for id, addr := range cfg.Addrs {
		if id == cfg.Self {
			continue
		}
		p := &tcpPeer{id: id, addr: addr, queue: make(chan []byte, cfg.QueueLen), done: make(chan struct{})}
		t.peers[id] = p
		t.wg.Add(1)
		go t.sendLoop(p)
	}
	t.wg.Add(1)
	go t.acceptLoop()
	return t, nil
}

// Addr returns the bound listen address (useful with ":0" configs).
func (t *TCP) Addr() net.Addr { return t.ln.Addr() }

// Dropped reports frames discarded because a peer's queue was full or its
// connection was down mid-write.
func (t *TCP) Dropped() uint64 { return t.dropped.Load() }

// Send queues a frame for one peer. The transport takes ownership of the
// slice; the caller must not modify it afterwards. To the local node it is
// a no-op.
func (t *TCP) Send(to NodeID, frame []byte) error {
	if to == t.cfg.Self {
		return nil
	}
	p, ok := t.peers[to]
	if !ok {
		return fmt.Errorf("transport: unknown peer %d", to)
	}
	t.mu.Lock()
	closed := t.closed
	t.mu.Unlock()
	if closed {
		return ErrClosed
	}
	select {
	case p.queue <- frame:
	default:
		t.dropped.Add(1)
	}
	return nil
}

// Broadcast queues a frame for every peer. All lanes share the one backing
// array (writers only read it), so the caller must not modify it.
func (t *TCP) Broadcast(frame []byte) error {
	var err error
	for id := range t.peers {
		if e := t.Send(id, frame); e != nil && err == nil {
			err = e
		}
	}
	return err
}

// Close shuts the listener, all connections, and all sender loops.
func (t *TCP) Close() error {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil
	}
	t.closed = true
	for c := range t.conns {
		c.Close()
	}
	t.mu.Unlock()
	t.ln.Close()
	for _, p := range t.peers {
		close(p.done)
	}
	t.wg.Wait()
	return nil
}

// track registers an accepted or dialed connection for Close; it reports
// false (and closes the conn) when the transport is already shutting down.
func (t *TCP) track(c net.Conn) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		c.Close()
		return false
	}
	t.conns[c] = struct{}{}
	return true
}

func (t *TCP) untrack(c net.Conn) {
	t.mu.Lock()
	delete(t.conns, c)
	t.mu.Unlock()
	c.Close()
}

func (t *TCP) acceptLoop() {
	defer t.wg.Done()
	for {
		c, err := t.ln.Accept()
		if err != nil {
			return // listener closed
		}
		if !t.track(c) {
			return
		}
		t.wg.Add(1)
		go t.readLoop(c)
	}
}

// readLoop validates the handshake then delivers frames until the
// connection dies. The frame buffer is reused across frames, matching the
// Handler ownership contract.
func (t *TCP) readLoop(c net.Conn) {
	defer t.wg.Done()
	defer t.untrack(c)
	br := bufio.NewReaderSize(c, 1<<16)
	var hs [12]byte
	if _, err := io.ReadFull(br, hs[:]); err != nil {
		return
	}
	if binary.BigEndian.Uint32(hs[0:4]) != Magic ||
		binary.BigEndian.Uint32(hs[4:8]) != VCurrent {
		return
	}
	from := NodeID(binary.BigEndian.Uint32(hs[8:12]))
	if _, known := t.peers[from]; !known {
		return // unknown or self-claiming sender
	}
	var lenBuf [4]byte
	var frame []byte
	for {
		if _, err := io.ReadFull(br, lenBuf[:]); err != nil {
			return
		}
		n := binary.BigEndian.Uint32(lenBuf[:])
		if n > MaxFrameLen {
			return // protocol violation: hang up
		}
		if uint32(cap(frame)) < n {
			frame = make([]byte, n)
		}
		frame = frame[:n]
		if _, err := io.ReadFull(br, frame); err != nil {
			return
		}
		t.cfg.Handler(from, frame)
	}
}

// sendLoop owns one peer's outbound connection: dial with backoff, write
// the handshake, then drain the queue. A write error drops the in-flight
// frame and redials — consensus retransmission covers the loss.
func (t *TCP) sendLoop(p *tcpPeer) {
	defer t.wg.Done()
	backoff := t.cfg.DialBackoff
	var conn net.Conn
	var bw *bufio.Writer
	defer func() {
		if conn != nil {
			t.untrack(conn)
		}
	}()
	for {
		var frame []byte
		select {
		case <-p.done:
			return
		case frame = <-p.queue:
		}
		for {
			if conn == nil {
				c, err := net.DialTimeout("tcp", p.addr, backoff)
				if err != nil {
					select {
					case <-p.done:
						return
					case <-time.After(backoff):
					}
					if backoff < t.cfg.DialBackoff*32 {
						backoff *= 2
					}
					continue
				}
				if !t.track(c) {
					return
				}
				w := bufio.NewWriterSize(c, 1<<16)
				var hs [12]byte
				binary.BigEndian.PutUint32(hs[0:4], Magic)
				binary.BigEndian.PutUint32(hs[4:8], VCurrent)
				binary.BigEndian.PutUint32(hs[8:12], uint32(t.cfg.Self))
				if _, err := w.Write(hs[:]); err != nil {
					t.untrack(c)
					continue
				}
				conn, bw = c, w
				backoff = t.cfg.DialBackoff
			}
			conn.SetWriteDeadline(time.Now().Add(t.cfg.WriteTimeout))
			if err := writeFrame(bw, frame); err == nil {
				// Flush opportunistically: batch while the queue has more.
				if len(p.queue) == 0 {
					if err := bw.Flush(); err != nil {
						t.dropped.Add(1)
						t.untrack(conn)
						conn, bw = nil, nil
					}
				}
				break
			}
			// Write failed: the frame is lost, reconnect for the next one.
			t.dropped.Add(1)
			t.untrack(conn)
			conn, bw = nil, nil
			break
		}
	}
}

func writeFrame(w *bufio.Writer, frame []byte) error {
	var lenBuf [4]byte
	binary.BigEndian.PutUint32(lenBuf[:], uint32(len(frame)))
	if _, err := w.Write(lenBuf[:]); err != nil {
		return err
	}
	_, err := w.Write(frame)
	return err
}
