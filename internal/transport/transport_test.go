package transport

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"
)

// startCluster boots n TCP transports on loopback ports, each recording
// inbound frames, and returns the transports plus the per-node recorders.
// Ports are reserved up front by binding throwaway listeners, so every
// node starts with the complete address map.
func startCluster(t *testing.T, n int) ([]*TCP, []*recorder) {
	t.Helper()
	addrs := reserveAddrs(t, n)
	recs := make([]*recorder, n)
	tps := make([]*TCP, n)
	for i := 0; i < n; i++ {
		recs[i] = &recorder{}
		tp, err := ListenTCP(TCPConfig{
			Self:    NodeID(i),
			Addrs:   addrs,
			Handler: recs[i].record,
		})
		if err != nil {
			t.Fatal(err)
		}
		tps[i] = tp
		t.Cleanup(func() { tp.Close() })
	}
	return tps, recs
}

// reserveAddrs picks n free loopback ports by bind-and-release. A raced
// port between release and the real bind would fail the subsequent
// ListenTCP loudly, not corrupt the test.
func reserveAddrs(t *testing.T, n int) map[NodeID]string {
	t.Helper()
	addrs := make(map[NodeID]string, n)
	for i := 0; i < n; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		addrs[NodeID(i)] = ln.Addr().String()
		ln.Close()
	}
	return addrs
}

type recorder struct {
	mu     sync.Mutex
	frames [][]byte
	froms  []NodeID
}

func (r *recorder) record(from NodeID, frame []byte) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.froms = append(r.froms, from)
	r.frames = append(r.frames, append([]byte(nil), frame...))
}

func (r *recorder) count() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.frames)
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// dialRawWith opens a raw socket and writes an arbitrary handshake.
func dialRawWith(addr string, magic, version, from uint32) (net.Conn, error) {
	c, err := net.DialTimeout("tcp", addr, 5*time.Second)
	if err != nil {
		return nil, err
	}
	var hs [12]byte
	binary.BigEndian.PutUint32(hs[0:4], magic)
	binary.BigEndian.PutUint32(hs[4:8], version)
	binary.BigEndian.PutUint32(hs[8:12], from)
	if _, err := c.Write(hs[:]); err != nil {
		c.Close()
		return nil, err
	}
	return c, nil
}

// dialRaw opens a raw socket with a valid handshake claiming sender id.
func dialRaw(addr string, from uint32) (net.Conn, error) {
	return dialRawWith(addr, Magic, VCurrent, from)
}

func writeRawFrameHeader(c net.Conn, length uint32) error {
	var lenBuf [4]byte
	binary.BigEndian.PutUint32(lenBuf[:], length)
	_, err := c.Write(lenBuf[:])
	return err
}

func writeRawFrame(c net.Conn, body []byte) error {
	if err := writeRawFrameHeader(c, uint32(len(body))); err != nil {
		return err
	}
	_, err := c.Write(body)
	return err
}

func isTimeout(err error) bool {
	ne, ok := err.(net.Error)
	return ok && ne.Timeout()
}

// TestTCPUnicastAndBroadcast boots a 3-node cluster and checks unicast
// reaches exactly the addressee, broadcast reaches everyone else, frames
// arrive intact and in per-sender order, and self-send is a no-op.
func TestTCPUnicastAndBroadcast(t *testing.T) {
	tps, recs := startCluster(t, 3)

	if err := tps[0].Send(1, []byte("uni-0-to-1")); err != nil {
		t.Fatal(err)
	}
	if err := tps[0].Send(0, []byte("self")); err != nil {
		t.Fatal(err)
	}
	if err := tps[2].Broadcast([]byte("all-from-2")); err != nil {
		t.Fatal(err)
	}
	if err := tps[0].Broadcast([]byte("all-from-0")); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		if err := tps[1].Send(0, []byte(fmt.Sprintf("seq-%02d", i))); err != nil {
			t.Fatal(err)
		}
	}

	waitFor(t, "node1 frames", func() bool { return recs[1].count() >= 2 })
	waitFor(t, "node0 frames", func() bool { return recs[0].count() >= 21 })
	waitFor(t, "node2 frame", func() bool { return recs[2].count() >= 1 })

	recs[1].mu.Lock()
	var sawUni, sawBcast bool
	for i, f := range recs[1].frames {
		switch {
		case bytes.Equal(f, []byte("uni-0-to-1")):
			sawUni = true
			if recs[1].froms[i] != 0 {
				t.Errorf("unicast attributed to %d", recs[1].froms[i])
			}
		case bytes.Equal(f, []byte("all-from-2")):
			sawBcast = true
		}
	}
	recs[1].mu.Unlock()
	if !sawUni || !sawBcast {
		t.Fatalf("node1 missing frames: uni=%v bcast=%v", sawUni, sawBcast)
	}

	// Unicast to 1 must not reach 2; self-send must not come back.
	recs[2].mu.Lock()
	for _, f := range recs[2].frames {
		if bytes.Equal(f, []byte("uni-0-to-1")) {
			t.Error("unicast leaked to node2")
		}
	}
	recs[2].mu.Unlock()
	recs[0].mu.Lock()
	seq := 0
	for i, f := range recs[0].frames {
		if bytes.Equal(f, []byte("self")) {
			t.Error("self-send delivered")
		}
		if recs[0].froms[i] == 1 && bytes.HasPrefix(f, []byte("seq-")) {
			want := fmt.Sprintf("seq-%02d", seq)
			if string(f) != want {
				recs[0].mu.Unlock()
				t.Fatalf("per-sender order broken: got %q want %q", f, want)
			}
			seq++
		}
	}
	recs[0].mu.Unlock()
	if seq != 20 {
		t.Fatalf("got %d ordered frames from node1, want 20", seq)
	}
}

// TestTCPPeerComesUpLate sends into a dead peer address, then boots the
// peer and checks reconnect delivers subsequent frames.
func TestTCPPeerComesUpLate(t *testing.T) {
	addrs := reserveAddrs(t, 2)
	recA := &recorder{}
	a, err := ListenTCP(TCPConfig{Self: 0, Addrs: addrs, Handler: recA.record})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()

	// B is down: these are dropped or queued, never an error.
	for i := 0; i < 5; i++ {
		if err := a.Send(1, []byte("early")); err != nil {
			t.Fatal(err)
		}
	}

	recB := &recorder{}
	b, err := ListenTCP(TCPConfig{Self: 1, Addrs: addrs, Handler: recB.record})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()

	// Keep sending until the reconnect lands one.
	waitFor(t, "late peer delivery", func() bool {
		a.Send(1, []byte("late"))
		return recB.count() > 0
	})
}

// TestTCPOversizedFrameHangsUp: a peer announcing a frame over MaxFrameLen
// gets disconnected before any allocation, and the transport survives.
func TestTCPOversizedFrameHangsUp(t *testing.T) {
	tps, recs := startCluster(t, 2)
	c, err := dialRaw(tps[1].Addr().String(), 0)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := writeRawFrameHeader(c, MaxFrameLen+1); err != nil {
		t.Fatal(err)
	}
	// The reader must hang up without delivering anything.
	waitFor(t, "hangup", func() bool {
		one := []byte{0}
		c.SetReadDeadline(time.Now().Add(50 * time.Millisecond))
		_, err := c.Read(one)
		return err != nil && !isTimeout(err)
	})
	if recs[1].count() != 0 {
		t.Fatal("oversized frame delivered")
	}
	// The transport still works for honest peers.
	tps[0].Send(1, []byte("still-alive"))
	waitFor(t, "post-attack delivery", func() bool { return recs[1].count() >= 1 })
}

// TestTCPBadHandshakeRejected: wrong magic, wrong version, unknown sender,
// or a peer claiming the receiver's own ID delivers nothing.
func TestTCPBadHandshakeRejected(t *testing.T) {
	tps, recs := startCluster(t, 2)
	_ = tps
	for _, tc := range []struct {
		name    string
		magic   uint32
		version uint32
		from    uint32
	}{
		{"bad magic", 0xdeadbeef, VCurrent, 0},
		{"bad version", Magic, VCurrent + 1, 0},
		{"unknown sender", Magic, VCurrent, 99},
		{"self-claiming sender", Magic, VCurrent, 1},
	} {
		c, err := dialRawWith(tps[1].Addr().String(), tc.magic, tc.version, tc.from)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		writeRawFrame(c, []byte("evil"))
		c.Close()
	}
	time.Sleep(200 * time.Millisecond)
	if recs[1].count() != 0 {
		t.Fatal("frame delivered over a rejected handshake")
	}
}

// TestLoopbackDeterminism: two hubs with the same seed, policy, and send
// sequence deliver identical frame sequences; a different seed diverges
// (sanity that the schedule is actually random).
func TestLoopbackDeterminism(t *testing.T) {
	run := func(seed int64) []string {
		hub := NewHub(seed, TamperPolicy{DropRate: 0.2, DupRate: 0.1, ReorderWindow: 4})
		var gotMu sync.Mutex
		var got []string
		eps := make([]Transport, 3)
		for i := 0; i < 3; i++ {
			id := NodeID(i)
			eps[i] = hub.Endpoint(id, func(from NodeID, frame []byte) {
				gotMu.Lock()
				got = append(got, fmt.Sprintf("%d<-%d:%s", id, from, frame))
				gotMu.Unlock()
			})
		}
		for i := 0; i < 10; i++ {
			eps[i%3].Broadcast([]byte(fmt.Sprintf("b%d", i)))
			eps[(i+1)%3].Send(NodeID(i%3), []byte(fmt.Sprintf("u%d", i)))
		}
		for hub.Step() {
		}
		return got
	}
	a, b := run(7), run(7)
	if len(a) != len(b) {
		t.Fatalf("same seed, different delivery counts: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at %d: %q vs %q", i, a[i], b[i])
		}
	}
	c := run(8)
	same := len(a) == len(c)
	if same {
		for i := range a {
			if a[i] != c[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("different seeds produced identical schedules; rng not wired")
	}
}
