// Package transport moves opaque encoded frames between cluster nodes. It
// is the first real-network layer in the repo: everything above it —
// consensus, the node runtime, the transaction pool — stays byte-oriented
// and deterministic, while this package owns sockets, reconnection, and
// wall-clock deadlines (it is deliberately OUTSIDE iaccfvet's detsource
// deterministic scope; see internal/analysis).
//
// # Wire protocol
//
// A connection opens with a fixed 12-byte handshake, then carries frames:
//
//	handshake: magic (4, big-endian, transport.Magic)
//	           version (4, big-endian, transport.VCurrent)
//	           sender node id (4, big-endian)
//	frame:     length (4, big-endian) | body (length bytes)
//
// Frame bodies are opaque to the transport; the node layer encodes
// consensus messages and RPC payloads with internal/wire. Bodies are
// capped at MaxFrameLen — large enough for a full sync chunk plus
// envelope overhead, small enough that a hostile peer cannot make the
// reader allocate unboundedly. A handshake with the wrong magic or an
// unknown version closes the connection; version negotiation is a
// same-version check, matching the batch stream codec's policy.
//
// Connections are unidirectional by convention: each node dials one
// outbound connection per peer for sending and accepts inbound
// connections for receiving, so peers never race to dedup a shared
// socket pair.
package transport

import (
	"errors"
	"sync/atomic"
)

// NodeID names a cluster node on the wire. It matches the width of
// consensus.ReplicaID so node layers can convert without truncation.
type NodeID uint32

const (
	// Magic opens every transport connection ("iacT").
	Magic = 0x69616354
	// VCurrent is the only protocol version current nodes speak.
	VCurrent = 1
	// MaxFrameLen bounds frame bodies: a maximal sync chunk plus framing
	// slack. Mirrors the codec caps in internal/wire.
	MaxFrameLen = 1<<26 + 1<<16
)

// ErrClosed reports use of a transport after Close.
var ErrClosed = errors.New("transport: closed")

// Handler consumes one inbound frame. The frame buffer is owned by the
// transport and reused after the call returns; handlers that retain bytes
// must copy. Handlers for a given peer are invoked sequentially in arrival
// order; different peers may be concurrent.
type Handler func(from NodeID, frame []byte)

// Transport delivers frames to cluster peers. Send and Broadcast are
// asynchronous and non-blocking: delivery is best-effort over bounded
// per-peer queues, and a full queue or dead peer drops the frame. That is
// the contract consensus is built for — every protocol message is either
// retransmitted (Retransmit, sync backoff) or safe to lose.
type Transport interface {
	// Send queues a frame for one peer. Sending to the local node is a
	// no-op (the consensus layer already self-delivers).
	Send(to NodeID, frame []byte) error
	// Broadcast queues a frame for every peer except the local node.
	Broadcast(frame []byte) error
	// Close releases sockets and stops delivery. Idempotent.
	Close() error
}

// HandlerProxy breaks the construction cycle between a transport (which
// needs its Handler at listen time) and the consumer built on top of the
// transport (which needs the transport first). Pass proxy.Handle as the
// transport's Handler, then Set the real handler once the consumer
// exists. Frames arriving before Set are dropped — the same best-effort
// contract as a peer that is not up yet.
type HandlerProxy struct {
	h atomic.Value // Handler
}

// Set installs the real handler. Safe to call concurrently with Handle.
func (p *HandlerProxy) Set(h Handler) { p.h.Store(h) }

// Handle forwards to the installed handler, if any.
func (p *HandlerProxy) Handle(from NodeID, frame []byte) {
	if h, ok := p.h.Load().(Handler); ok && h != nil {
		h(from, frame)
	}
}
