package transport

import (
	"math/rand"
	"sort"
	"sync"
)

// TamperPolicy parameterizes the loopback hub's adversarial schedule.
// Zero values mean in-order, lossless delivery.
type TamperPolicy struct {
	// DropRate is the probability a frame is silently discarded.
	DropRate float64
	// DupRate is the probability a delivered frame is re-queued once.
	DupRate float64
	// ReorderWindow lets Step pick any of the first W queued frames
	// instead of the head (0 or 1 means strict FIFO).
	ReorderWindow int
}

// Hub is an in-process transport double: endpoints implement Transport,
// frames land in one central queue, and the test drives delivery one
// Step at a time under a seeded adversarial schedule. Determinism
// contract: a single-threaded driver with the same seed, policy, and
// send sequence sees the same delivery sequence — which is what lets a
// failing adversarial run be replayed by seed, like the sim matrix.
type Hub struct {
	mu     sync.Mutex
	rng    *rand.Rand
	policy TamperPolicy
	eps    map[NodeID]*loopEndpoint
	queue  []loopFrame
	sent   uint64
	lost   uint64
}

type loopFrame struct {
	from, to NodeID
	body     []byte
}

// NewHub builds a hub with a seeded schedule.
func NewHub(seed int64, policy TamperPolicy) *Hub {
	return &Hub{
		rng:    rand.New(rand.NewSource(seed)),
		policy: policy,
		eps:    make(map[NodeID]*loopEndpoint),
	}
}

// loopEndpoint is one node's view of the hub.
type loopEndpoint struct {
	hub     *Hub
	id      NodeID
	handler Handler
	closed  bool
}

// Endpoint registers a node on the hub and returns its Transport. The
// handler runs inside Step, on the driving goroutine.
func (h *Hub) Endpoint(id NodeID, handler Handler) Transport {
	h.mu.Lock()
	defer h.mu.Unlock()
	ep := &loopEndpoint{hub: h, id: id, handler: handler}
	h.eps[id] = ep
	return ep
}

// Pending reports undelivered frames.
func (h *Hub) Pending() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.queue)
}

// Lost reports frames discarded by the drop schedule.
func (h *Hub) Lost() uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.lost
}

// enqueue copies the body: the Transport contract gives the transport
// ownership of sent frames, and the Handler contract says delivered
// buffers are transport-owned, so the hub must hold its own copy either
// way.
func (h *Hub) enqueue(from, to NodeID, body []byte) {
	h.queue = append(h.queue, loopFrame{from: from, to: to, body: append([]byte(nil), body...)})
	h.sent++
}

// Step delivers (or adversarially drops/duplicates) one queued frame and
// reports whether any work remains. The reorder window, drop, and dup
// draws all come from the seeded rng, in a fixed order per step.
func (h *Hub) Step() bool {
	h.mu.Lock()
	if len(h.queue) == 0 {
		h.mu.Unlock()
		return false
	}
	w := h.policy.ReorderWindow
	if w < 1 {
		w = 1
	}
	if w > len(h.queue) {
		w = len(h.queue)
	}
	i := 0
	if w > 1 {
		i = h.rng.Intn(w)
	}
	f := h.queue[i]
	h.queue = append(h.queue[:i], h.queue[i+1:]...)
	if h.policy.DropRate > 0 && h.rng.Float64() < h.policy.DropRate {
		h.lost++
		n := len(h.queue)
		h.mu.Unlock()
		return n > 0
	}
	if h.policy.DupRate > 0 && h.rng.Float64() < h.policy.DupRate {
		h.queue = append(h.queue, loopFrame{from: f.from, to: f.to, body: append([]byte(nil), f.body...)})
	}
	ep := h.eps[f.to]
	h.mu.Unlock()
	if ep != nil && ep.handler != nil {
		ep.handler(f.from, f.body)
	}
	h.mu.Lock()
	n := len(h.queue)
	h.mu.Unlock()
	return n > 0
}

func (ep *loopEndpoint) Send(to NodeID, frame []byte) error {
	h := ep.hub
	h.mu.Lock()
	defer h.mu.Unlock()
	if ep.closed {
		return ErrClosed
	}
	if to == ep.id {
		return nil
	}
	if _, ok := h.eps[to]; !ok {
		return nil // dead peer: best-effort, like a down TCP lane
	}
	h.enqueue(ep.id, to, frame)
	return nil
}

func (ep *loopEndpoint) Broadcast(frame []byte) error {
	h := ep.hub
	h.mu.Lock()
	defer h.mu.Unlock()
	if ep.closed {
		return ErrClosed
	}
	// Enqueue in ascending peer order: map iteration order would leak
	// scheduler nondeterminism into the seeded delivery sequence.
	ids := make([]NodeID, 0, len(h.eps))
	for id := range h.eps {
		if id != ep.id {
			ids = append(ids, id)
		}
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		h.enqueue(ep.id, id, frame)
	}
	return nil
}

func (ep *loopEndpoint) Close() error {
	h := ep.hub
	h.mu.Lock()
	defer h.mu.Unlock()
	ep.closed = true
	delete(h.eps, ep.id)
	return nil
}
