package merkle

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math/bits"

	"iaccf/internal/hashsig"
)

// Frontier is the compact serializable state of a Merkle tree: its size and
// the hashes of the maximal perfect subtrees (peaks) covering all leaves.
// Checkpoints record the history tree's frontier so a replica restoring from
// a checkpoint can keep appending ledger entries and produce the same roots
// as a replica that replayed the full ledger (paper §3.4).
type Frontier struct {
	Size  uint64
	Peaks []hashsig.Digest
}

// Frontier captures the tree's current frontier.
func (t *Tree) Frontier() (Frontier, error) {
	n := t.Size()
	peaks, err := t.peaksOf(n)
	if err != nil {
		return Frontier{}, err
	}
	hashes := make([]hashsig.Digest, len(peaks))
	for i, p := range peaks {
		hashes[i] = p.hash
	}
	return Frontier{Size: n, Peaks: hashes}, nil
}

// peaksOf computes the peak decomposition of the prefix of n leaves.
func (t *Tree) peaksOf(n uint64) ([]peak, error) {
	if n < t.base || n > t.Size() {
		return nil, fmt.Errorf("%w: peaks of %d (base %d, size %d)", ErrOutOfRange, n, t.base, t.Size())
	}
	if n == t.Size() {
		return append([]peak(nil), t.peaks...), nil
	}
	var out []peak
	var off uint64
	for rem := n; rem > 0; {
		size := uint64(1) << (bits.Len64(rem) - 1)
		h, err := t.hashRange(off, off+size)
		if err != nil {
			return nil, err
		}
		out = append(out, peak{size: size, hash: h})
		off += size
		rem -= size
	}
	return out, nil
}

// FromFrontier reconstructs a tree from a frontier. The resulting tree
// accepts appends and produces identical roots, but cannot provide paths or
// rollback for leaves before the restore point.
func FromFrontier(f Frontier) (*Tree, error) {
	want := bits.OnesCount64(f.Size)
	if len(f.Peaks) != want {
		return nil, fmt.Errorf("merkle: frontier size %d needs %d peaks, got %d", f.Size, want, len(f.Peaks))
	}
	t := &Tree{base: f.Size}
	rem := f.Size
	for _, h := range f.Peaks {
		size := uint64(1) << (bits.Len64(rem) - 1)
		t.basePeaks = append(t.basePeaks, peak{size: size, hash: h})
		rem -= size
	}
	t.peaks = append([]peak(nil), t.basePeaks...)
	return t, nil
}

// Compact drops retained leaves before index n, keeping only the peak
// summary for the prefix. Rollback and paths before n become unavailable.
func (t *Tree) Compact(n uint64) error {
	if n <= t.base {
		return nil
	}
	if n > t.Size() {
		return fmt.Errorf("%w: compact to %d (size %d)", ErrOutOfRange, n, t.Size())
	}
	peaks, err := t.peaksOf(n)
	if err != nil {
		return err
	}
	t.leaves = append([]hashsig.Digest(nil), t.leaves[n-t.base:]...)
	t.base = n
	t.basePeaks = peaks
	return nil
}

// Encode serializes the frontier deterministically.
func (f Frontier) Encode() []byte {
	out := make([]byte, 8+4+len(f.Peaks)*hashsig.DigestSize)
	binary.BigEndian.PutUint64(out[0:8], f.Size)
	binary.BigEndian.PutUint32(out[8:12], uint32(len(f.Peaks)))
	off := 12
	for _, p := range f.Peaks {
		copy(out[off:], p[:])
		off += hashsig.DigestSize
	}
	return out
}

// DecodeFrontier parses a serialized frontier.
func DecodeFrontier(b []byte) (Frontier, error) {
	if len(b) < 12 {
		return Frontier{}, errors.New("merkle: frontier too short")
	}
	f := Frontier{Size: binary.BigEndian.Uint64(b[0:8])}
	n := binary.BigEndian.Uint32(b[8:12])
	if n > 64 {
		// A valid frontier has one peak per set bit of Size — at most 64. A
		// hostile stream claiming more is rejected before the length check so
		// the error names the actual lie.
		return Frontier{}, fmt.Errorf("merkle: frontier claims %d peaks, maximum is 64", n)
	}
	if uint64(len(b)) != 12+uint64(n)*hashsig.DigestSize {
		return Frontier{}, errors.New("merkle: frontier length mismatch")
	}
	off := 12
	for i := uint32(0); i < n; i++ {
		var d hashsig.Digest
		copy(d[:], b[off:off+hashsig.DigestSize])
		f.Peaks = append(f.Peaks, d)
		off += hashsig.DigestSize
	}
	return f, nil
}

// Digest returns a digest identifying the frontier (and therefore the entire
// tree contents).
func (f Frontier) Digest() hashsig.Digest {
	return hashsig.Sum(f.Encode())
}
