package merkle

import (
	"fmt"
	"testing"

	"iaccf/internal/hashsig"
)

// TestVerifyShardedPathNegativeTable drives VerifyShardedPath through a
// table of adversarial mutations. The positive case is asserted first so a
// failing negative can only mean the mutation itself was accepted.
func TestVerifyShardedPathNegativeTable(t *testing.T) {
	const shards = 4
	shardSizes := []uint64{3, 6, 1, 4}
	var trees []*Tree
	entries := make([][]hashsig.Digest, shards)
	top := New()
	for s := 0; s < shards; s++ {
		tr := New()
		for i := uint64(0); i < shardSizes[s]; i++ {
			e := hashsig.Sum([]byte(fmt.Sprintf("neg-%d-%d", s, i)))
			entries[s] = append(entries[s], e)
			tr.Append(e)
		}
		trees = append(trees, tr)
		top.Append(tr.Root())
	}
	root := top.Root()

	pathFor := func(s int, i uint64) []hashsig.Digest {
		t.Helper()
		sp, err := trees[s].Path(i)
		if err != nil {
			t.Fatal(err)
		}
		tp, err := top.Path(uint64(s))
		if err != nil {
			t.Fatal(err)
		}
		return append(append([]hashsig.Digest(nil), sp...), tp...)
	}

	// Anchor case: shard 1, leaf 2 of 6 — a path with both shard-stage and
	// top-stage segments.
	const s, i = 1, uint64(2)
	entry := entries[s][i]
	path := pathFor(s, i)
	if !VerifyShardedPath(entry, i, shardSizes[s], s, shards, path, root) {
		t.Fatal("anchor path rejected")
	}

	cases := []struct {
		name string
		run  func() bool
	}{
		{"wrong shard index", func() bool {
			return VerifyShardedPath(entry, i, shardSizes[s], s+1, shards, path, root)
		}},
		{"shard index out of range", func() bool {
			return VerifyShardedPath(entry, i, shardSizes[s], shards, shards, path, root)
		}},
		// No "wrong shard count" row: like all position metadata, a shard
		// count whose roll-up shape coincides can verify — the binding of
		// the true count is the signed header (BatchHeader.Shards), which
		// Receipt.Verify feeds in from under the signature.
		{"truncated path (no top stage)", func() bool {
			return VerifyShardedPath(entry, i, shardSizes[s], s, shards, path[:len(path)-2], root)
		}},
		{"truncated path (one node)", func() bool {
			return VerifyShardedPath(entry, i, shardSizes[s], s, shards, path[:len(path)-1], root)
		}},
		{"empty path", func() bool {
			return VerifyShardedPath(entry, i, shardSizes[s], s, shards, nil, root)
		}},
		{"overlong path", func() bool {
			long := append(append([]hashsig.Digest(nil), path...), hashsig.Sum([]byte("pad")))
			return VerifyShardedPath(entry, i, shardSizes[s], s, shards, long, root)
		}},
		{"swapped siblings (shard stage)", func() bool {
			swapped := append([]hashsig.Digest(nil), path...)
			swapped[0], swapped[1] = swapped[1], swapped[0]
			return VerifyShardedPath(entry, i, shardSizes[s], s, shards, swapped, root)
		}},
		{"swapped siblings (across stages)", func() bool {
			swapped := append([]hashsig.Digest(nil), path...)
			last := len(swapped) - 1
			swapped[0], swapped[last] = swapped[last], swapped[0]
			return VerifyShardedPath(entry, i, shardSizes[s], s, shards, swapped, root)
		}},
		{"another leaf's path", func() bool {
			return VerifyShardedPath(entry, i, shardSizes[s], s, shards, pathFor(s, i+1), root)
		}},
		{"another shard's path", func() bool {
			return VerifyShardedPath(entry, 0, shardSizes[2], 2, shards, pathFor(2, 0), root) &&
				VerifyShardedPath(entry, i, shardSizes[s], s, shards, pathFor(2, 0), root)
		}},
		{"leaf index out of shard", func() bool {
			return VerifyShardedPath(entry, shardSizes[s], shardSizes[s], s, shards, path, root)
		}},
		{"shard root replayed as entry", func() bool {
			// The shard root itself must not verify as a leaf of the top
			// tree via the suffix alone: leaf domain separation blocks it.
			tp, err := top.Path(uint64(s))
			if err != nil {
				t.Fatal(err)
			}
			return VerifyShardedPath(trees[s].Root(), s, shards, s, shards, tp, root)
		}},
	}
	for _, tc := range cases {
		if tc.run() {
			t.Errorf("%s: accepted", tc.name)
		}
	}
	// The anchor still verifies after all mutations (no aliasing).
	if !VerifyShardedPath(entry, i, shardSizes[s], s, shards, path, root) {
		t.Fatal("anchor path no longer verifies")
	}
}

// TestVerifyPathNegativeTable gives the single-tree verifier the same
// treatment: swapped siblings and truncations must fail for every size.
func TestVerifyPathNegativeTable(t *testing.T) {
	for n := uint64(2); n <= 16; n++ {
		tr := New()
		var es []hashsig.Digest
		for i := uint64(0); i < n; i++ {
			e := hashsig.Sum([]byte(fmt.Sprintf("vp-%d-%d", n, i)))
			es = append(es, e)
			tr.Append(e)
		}
		root := tr.Root()
		for i := uint64(0); i < n; i++ {
			path, err := tr.Path(i)
			if err != nil {
				t.Fatal(err)
			}
			if !VerifyPath(es[i], i, n, path, root) {
				t.Fatalf("n=%d i=%d: valid path rejected", n, i)
			}
			if VerifyPath(es[i], i, n, path[:len(path)-1], root) {
				t.Fatalf("n=%d i=%d: truncated path accepted", n, i)
			}
			if len(path) >= 2 {
				swapped := append([]hashsig.Digest(nil), path...)
				swapped[0], swapped[1] = swapped[1], swapped[0]
				if VerifyPath(es[i], i, n, swapped, root) {
					t.Fatalf("n=%d i=%d: swapped siblings accepted", n, i)
				}
			}
			// Claimed size/index metadata is not cryptographically bound
			// (see TestVerifyShardedPath's note): only the (entry, root)
			// pair is, so no inflated-size assertion here.
		}
	}
}
