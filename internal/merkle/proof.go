package merkle

import (
	"fmt"
	"runtime"
	"sync"

	"iaccf/internal/hashsig"
	"iaccf/internal/par"
	"iaccf/internal/pool"
)

// minParallelProofLeaves gates both parallel fan-outs in this file: leaf
// hashing across the worker pool and the forked path-build recursion. Below
// this many leaves one SHA-256 pass is cheaper than goroutine startup.
const minParallelProofLeaves = 512

// leafScratch recycles the leaf-hash staging slice used by AppendAndProve.
// AppendLeafHash copies each digest into the tree, so the scratch never
// escapes the call.
var leafScratch pool.Slice[hashsig.Digest]

// AppendAndProve appends the given entry digests and returns the index of
// the first appended leaf, the root over the grown tree, and one audit path
// per appended entry, each valid against that root. This is the batch
// construction primitive: the ledger builds the per-batch tree G by
// appending all of a batch's entries at once and handing the paths out in
// client receipts (paper §3.1). Interior hashes are computed once and
// shared across paths, instead of once per leaf as repeated Path calls
// would. Leaf hashes for large batches are computed in parallel; see
// PathsAt for the ownership of the returned paths.
func (t *Tree) AppendAndProve(entries []hashsig.Digest) (uint64, hashsig.Digest, [][]hashsig.Digest, error) {
	scratch := leafScratch.Get(len(entries))
	leaves := scratch[:len(entries)]
	par.ForEach(len(entries), len(entries), minParallelProofLeaves, func(i int) {
		leaves[i] = LeafHash(entries[i])
	})
	first, root, paths, err := t.AppendAndProveLeafHashes(leaves)
	leafScratch.Put(scratch)
	return first, root, paths, err
}

// AppendAndProveLeafHashes is AppendAndProve for pre-hashed (domain
// separated) leaves. The ledger uses it to reuse leaf hashes that its entry
// hasher already computed for the history tree, instead of hashing every
// entry a second time per batch tree. The tree copies each leaf hash; the
// caller keeps ownership of the slice.
func (t *Tree) AppendAndProveLeafHashes(leaves []hashsig.Digest) (uint64, hashsig.Digest, [][]hashsig.Digest, error) {
	first := t.Size()
	for _, l := range leaves {
		t.AppendLeafHash(l)
	}
	if t.Size() == 0 {
		return first, EmptyRoot(), nil, nil
	}
	root := t.Root()
	if len(leaves) == 0 {
		return first, root, nil, nil
	}
	paths, err := t.PathsAt(first, t.Size())
	if err != nil {
		return first, root, nil, err
	}
	return first, root, paths, nil
}

// PathsAt returns the audit paths for every leaf in [from, n) against the
// prefix tree of n leaves. It shares interior hash computations across the
// returned paths: one O(n) traversal instead of one O(n) traversal per
// leaf. Requires Base() <= from < n <= Size().
//
// All returned paths sub-slice a single backing arena allocated by this
// call — one allocation for the whole batch instead of O(log n) appends per
// leaf. Each path is a three-index sub-slice with capacity equal to its
// length, so a caller that appends to a returned path (as the ledger does
// when joining a shard path to the top path in a receipt) forces a fresh
// copy instead of overwriting a neighboring path's hashes. Callers own the
// paths and may retain them indefinitely.
func (t *Tree) PathsAt(from, n uint64) ([][]hashsig.Digest, error) {
	if from >= n || n > t.Size() {
		return nil, fmt.Errorf("%w: paths [%d,%d) (size %d)", ErrOutOfRange, from, n, t.Size())
	}
	if from < t.base {
		return nil, fmt.Errorf("%w: paths from %d before base %d", ErrCompacted, from, t.base)
	}
	count := n - from
	paths := make([][]hashsig.Digest, count)
	lens := make([]uint32, count)
	pathLens(from, 0, n, lens)
	total := 0
	for _, l := range lens {
		total += int(l)
	}
	arena := make([]hashsig.Digest, total)
	off := 0
	for j, l := range lens {
		end := off + int(l)
		paths[j] = arena[off:off:end]
		off = end
	}
	var err error
	if runtime.GOMAXPROCS(0) > 1 && count >= minParallelProofLeaves {
		_, err = t.buildPathsFork(from, 0, n, paths, runtime.GOMAXPROCS(0))
	} else {
		_, err = t.buildPaths(from, 0, n, paths)
	}
	if err != nil {
		return nil, err
	}
	return paths, nil
}

// pathLens computes, per target leaf, the number of sibling hashes its
// audit path will receive. It mirrors the recursion shape of buildPaths:
// every level whose range contains a target leaf and splits contributes
// exactly one sibling to that leaf's path. The counts size the arena in
// PathsAt, so they must stay in lockstep with buildPaths.
func pathLens(from, a, b uint64, lens []uint32) {
	if b <= from || b-a == 1 {
		return
	}
	k := splitPoint(b - a)
	pathLens(from, a, a+k, lens)
	pathLens(from, a+k, b, lens)
	for i := max(a, from); i < b; i++ {
		lens[i-from]++
	}
}

// buildPathsFork is buildPaths with the two half-range recursions run
// concurrently while the remaining range is large enough to split
// profitably. Safety: the two halves append to disjoint sets of paths
// (targets in [a,a+k) vs [a+k,b)) backed by disjoint arena regions, the
// tree itself is only read, and the parent's own sibling appends happen
// after the join — so every write to a given path is sequenced along that
// leaf's spine exactly as in the sequential recursion.
func (t *Tree) buildPathsFork(from, a, b uint64, paths [][]hashsig.Digest, procs int) (hashsig.Digest, error) {
	if procs <= 1 || b <= from || b-a < minParallelProofLeaves {
		return t.buildPaths(from, a, b, paths)
	}
	k := splitPoint(b - a)
	var (
		right hashsig.Digest
		rerr  error
		wg    sync.WaitGroup
	)
	wg.Add(1)
	go func() {
		defer wg.Done()
		right, rerr = t.buildPathsFork(from, a+k, b, paths, procs/2)
	}()
	left, lerr := t.buildPathsFork(from, a, a+k, paths, procs-procs/2)
	wg.Wait()
	if lerr != nil {
		return hashsig.Digest{}, lerr
	}
	if rerr != nil {
		return hashsig.Digest{}, rerr
	}
	for i := max(a, from); i < a+k; i++ {
		paths[i-from] = append(paths[i-from], right)
	}
	for i := max(a+k, from); i < b; i++ {
		paths[i-from] = append(paths[i-from], left)
	}
	return nodeHash(left, right), nil
}

// buildPaths computes the hash of [a, b) while extending, bottom-up, the
// audit path of every target leaf (index >= from) inside the range.
func (t *Tree) buildPaths(from, a, b uint64, paths [][]hashsig.Digest) (hashsig.Digest, error) {
	if b <= from {
		// No target leaves here: a plain subtree hash (possibly from peaks).
		return t.hashRange(a, b)
	}
	if b-a == 1 {
		return t.hashRange(a, b)
	}
	k := splitPoint(b - a)
	left, err := t.buildPaths(from, a, a+k, paths)
	if err != nil {
		return hashsig.Digest{}, err
	}
	right, err := t.buildPaths(from, a+k, b, paths)
	if err != nil {
		return hashsig.Digest{}, err
	}
	for i := max(a, from); i < a+k; i++ {
		paths[i-from] = append(paths[i-from], right)
	}
	for i := max(a+k, from); i < b; i++ {
		paths[i-from] = append(paths[i-from], left)
	}
	return nodeHash(left, right), nil
}

// ConsistencyProof returns the RFC 6962 proof that the tree's first m
// leaves are a prefix of its first n leaves (1 <= m <= n <= Size). A
// restored tree can prove consistency from its restore point: the proof's
// old-tree nodes are exactly the frontier peaks recorded in the checkpoint,
// so an auditor holding a pre-checkpoint signed root ¯M can check it
// against any later root (paper §3.4).
func (t *Tree) ConsistencyProof(m, n uint64) ([]hashsig.Digest, error) {
	if m == 0 || m > n || n > t.Size() {
		return nil, fmt.Errorf("%w: consistency %d -> %d (size %d)", ErrOutOfRange, m, n, t.Size())
	}
	if m == n {
		return nil, nil
	}
	return t.consProof(m, 0, n, true)
}

// consProof computes SUBPROOF(m, [a,b), complete) per RFC 6962 §2.1.2.
func (t *Tree) consProof(m, a, b uint64, complete bool) ([]hashsig.Digest, error) {
	if m == b-a {
		if complete {
			// The old tree is this entire subtree; the verifier already
			// knows its hash (the old root).
			return nil, nil
		}
		h, err := t.hashRange(a, b)
		if err != nil {
			return nil, err
		}
		return []hashsig.Digest{h}, nil
	}
	k := splitPoint(b - a)
	if m <= k {
		p, err := t.consProof(m, a, a+k, complete)
		if err != nil {
			return nil, err
		}
		sib, err := t.hashRange(a+k, b)
		if err != nil {
			return nil, err
		}
		return append(p, sib), nil
	}
	p, err := t.consProof(m-k, a+k, b, false)
	if err != nil {
		return nil, err
	}
	sib, err := t.hashRange(a, a+k)
	if err != nil {
		return nil, err
	}
	return append(p, sib), nil
}

// VerifyConsistency checks an RFC 6962 consistency proof: that the tree
// with n leaves and root newRoot extends the tree with m leaves and root
// oldRoot.
func VerifyConsistency(m, n uint64, oldRoot, newRoot hashsig.Digest, proof []hashsig.Digest) bool {
	if m == 0 || m > n {
		return false
	}
	if m == n {
		return len(proof) == 0 && oldRoot == newRoot
	}
	idx := 0
	var rec func(m, n uint64, complete bool) (hashsig.Digest, hashsig.Digest, bool)
	rec = func(m, n uint64, complete bool) (hashsig.Digest, hashsig.Digest, bool) {
		if m == n {
			if complete {
				return oldRoot, oldRoot, true
			}
			if idx >= len(proof) {
				return hashsig.Digest{}, hashsig.Digest{}, false
			}
			h := proof[idx]
			idx++
			return h, h, true
		}
		k := splitPoint(n)
		if m <= k {
			oldH, newH, ok := rec(m, k, complete)
			if !ok || idx >= len(proof) {
				return hashsig.Digest{}, hashsig.Digest{}, false
			}
			right := proof[idx]
			idx++
			return oldH, nodeHash(newH, right), true
		}
		oldH, newH, ok := rec(m-k, n-k, false)
		if !ok || idx >= len(proof) {
			return hashsig.Digest{}, hashsig.Digest{}, false
		}
		left := proof[idx]
		idx++
		return nodeHash(left, oldH), nodeHash(left, newH), true
	}
	oldH, newH, ok := rec(m, n, true)
	return ok && idx == len(proof) && oldH == oldRoot && newH == newRoot
}
