package merkle

import (
	"fmt"

	"iaccf/internal/hashsig"
)

// AppendAndProve appends the given entry digests and returns the index of
// the first appended leaf, the root over the grown tree, and one audit path
// per appended entry, each valid against that root. This is the batch
// construction primitive: the ledger builds the per-batch tree G by
// appending all of a batch's entries at once and handing the paths out in
// client receipts (paper §3.1). Interior hashes are computed once and
// shared across paths, instead of once per leaf as repeated Path calls
// would.
func (t *Tree) AppendAndProve(entries []hashsig.Digest) (uint64, hashsig.Digest, [][]hashsig.Digest, error) {
	first := t.Size()
	for _, e := range entries {
		t.Append(e)
	}
	if t.Size() == 0 {
		return first, EmptyRoot(), nil, nil
	}
	root := t.Root()
	if len(entries) == 0 {
		return first, root, nil, nil
	}
	paths, err := t.PathsAt(first, t.Size())
	if err != nil {
		return first, root, nil, err
	}
	return first, root, paths, nil
}

// PathsAt returns the audit paths for every leaf in [from, n) against the
// prefix tree of n leaves. It shares interior hash computations across the
// returned paths: one O(n) traversal instead of one O(n) traversal per
// leaf. Requires Base() <= from < n <= Size().
func (t *Tree) PathsAt(from, n uint64) ([][]hashsig.Digest, error) {
	if from >= n || n > t.Size() {
		return nil, fmt.Errorf("%w: paths [%d,%d) (size %d)", ErrOutOfRange, from, n, t.Size())
	}
	if from < t.base {
		return nil, fmt.Errorf("%w: paths from %d before base %d", ErrCompacted, from, t.base)
	}
	paths := make([][]hashsig.Digest, n-from)
	if _, err := t.buildPaths(from, 0, n, paths); err != nil {
		return nil, err
	}
	return paths, nil
}

// buildPaths computes the hash of [a, b) while extending, bottom-up, the
// audit path of every target leaf (index >= from) inside the range.
func (t *Tree) buildPaths(from, a, b uint64, paths [][]hashsig.Digest) (hashsig.Digest, error) {
	if b <= from {
		// No target leaves here: a plain subtree hash (possibly from peaks).
		return t.hashRange(a, b)
	}
	if b-a == 1 {
		return t.hashRange(a, b)
	}
	k := splitPoint(b - a)
	left, err := t.buildPaths(from, a, a+k, paths)
	if err != nil {
		return hashsig.Digest{}, err
	}
	right, err := t.buildPaths(from, a+k, b, paths)
	if err != nil {
		return hashsig.Digest{}, err
	}
	for i := max(a, from); i < a+k; i++ {
		paths[i-from] = append(paths[i-from], right)
	}
	for i := max(a+k, from); i < b; i++ {
		paths[i-from] = append(paths[i-from], left)
	}
	return nodeHash(left, right), nil
}

// ConsistencyProof returns the RFC 6962 proof that the tree's first m
// leaves are a prefix of its first n leaves (1 <= m <= n <= Size). A
// restored tree can prove consistency from its restore point: the proof's
// old-tree nodes are exactly the frontier peaks recorded in the checkpoint,
// so an auditor holding a pre-checkpoint signed root ¯M can check it
// against any later root (paper §3.4).
func (t *Tree) ConsistencyProof(m, n uint64) ([]hashsig.Digest, error) {
	if m == 0 || m > n || n > t.Size() {
		return nil, fmt.Errorf("%w: consistency %d -> %d (size %d)", ErrOutOfRange, m, n, t.Size())
	}
	if m == n {
		return nil, nil
	}
	return t.consProof(m, 0, n, true)
}

// consProof computes SUBPROOF(m, [a,b), complete) per RFC 6962 §2.1.2.
func (t *Tree) consProof(m, a, b uint64, complete bool) ([]hashsig.Digest, error) {
	if m == b-a {
		if complete {
			// The old tree is this entire subtree; the verifier already
			// knows its hash (the old root).
			return nil, nil
		}
		h, err := t.hashRange(a, b)
		if err != nil {
			return nil, err
		}
		return []hashsig.Digest{h}, nil
	}
	k := splitPoint(b - a)
	if m <= k {
		p, err := t.consProof(m, a, a+k, complete)
		if err != nil {
			return nil, err
		}
		sib, err := t.hashRange(a+k, b)
		if err != nil {
			return nil, err
		}
		return append(p, sib), nil
	}
	p, err := t.consProof(m-k, a+k, b, false)
	if err != nil {
		return nil, err
	}
	sib, err := t.hashRange(a, a+k)
	if err != nil {
		return nil, err
	}
	return append(p, sib), nil
}

// VerifyConsistency checks an RFC 6962 consistency proof: that the tree
// with n leaves and root newRoot extends the tree with m leaves and root
// oldRoot.
func VerifyConsistency(m, n uint64, oldRoot, newRoot hashsig.Digest, proof []hashsig.Digest) bool {
	if m == 0 || m > n {
		return false
	}
	if m == n {
		return len(proof) == 0 && oldRoot == newRoot
	}
	idx := 0
	var rec func(m, n uint64, complete bool) (hashsig.Digest, hashsig.Digest, bool)
	rec = func(m, n uint64, complete bool) (hashsig.Digest, hashsig.Digest, bool) {
		if m == n {
			if complete {
				return oldRoot, oldRoot, true
			}
			if idx >= len(proof) {
				return hashsig.Digest{}, hashsig.Digest{}, false
			}
			h := proof[idx]
			idx++
			return h, h, true
		}
		k := splitPoint(n)
		if m <= k {
			oldH, newH, ok := rec(m, k, complete)
			if !ok || idx >= len(proof) {
				return hashsig.Digest{}, hashsig.Digest{}, false
			}
			right := proof[idx]
			idx++
			return oldH, nodeHash(newH, right), true
		}
		oldH, newH, ok := rec(m-k, n-k, false)
		if !ok || idx >= len(proof) {
			return hashsig.Digest{}, hashsig.Digest{}, false
		}
		left := proof[idx]
		idx++
		return nodeHash(left, oldH), nodeHash(left, newH), true
	}
	oldH, newH, ok := rec(m, n, true)
	return ok && idx == len(proof) && oldH == oldRoot && newH == newRoot
}
