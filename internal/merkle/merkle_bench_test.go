package merkle

import (
	"fmt"
	"testing"

	"iaccf/internal/hashsig"
)

// BenchmarkAppendRoot measures appending one leaf and recomputing the root
// on trees of increasing size: the per-entry history tree cost.
func BenchmarkAppendRoot(b *testing.B) {
	for _, n := range []int{1000, 10000, 100000} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			tr := New()
			for _, e := range entries(n, "bench") {
				tr.Append(e)
			}
			e := hashsig.Sum([]byte("next"))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				tr.Append(e)
				tr.Root()
			}
		})
	}
}

// BenchmarkPath measures a single audit path on a full tree.
func BenchmarkPath(b *testing.B) {
	for _, n := range []int{1000, 100000} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			tr := New()
			for _, e := range entries(n, "bench") {
				tr.Append(e)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := tr.Path(uint64(i % n)); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAppendAndProve measures batch-tree construction with all paths,
// against the naive per-leaf Path loop it replaces.
func BenchmarkAppendAndProve(b *testing.B) {
	for _, n := range []int{64, 512, 4096} {
		es := entries(n, "batch")
		b.Run(fmt.Sprintf("shared/n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				tr := New()
				if _, _, _, err := tr.AppendAndProve(es); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("perleaf/n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				tr := New()
				for _, e := range es {
					tr.Append(e)
				}
				tr.Root()
				for j := 0; j < n; j++ {
					if _, err := tr.Path(uint64(j)); err != nil {
						b.Fatal(err)
					}
				}
			}
		})
	}
}

// BenchmarkConsistencyProof measures checkpoint-to-head consistency proofs.
func BenchmarkConsistencyProof(b *testing.B) {
	const n = 100000
	tr := New()
	for _, e := range entries(n, "bench") {
		tr.Append(e)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tr.ConsistencyProof(uint64(1+i%(n-1)), n); err != nil {
			b.Fatal(err)
		}
	}
}
