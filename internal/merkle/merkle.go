// Package merkle implements the append-only Merkle trees that bind the
// IA-CCF ledger (paper §2, §3.1). The tree follows the RFC 6962 structure:
//
//	MTH([])      = H("")
//	MTH([e])     = H(0x00 || e)
//	MTH(D[0:n])  = H(0x01 || MTH(D[0:k]) || MTH(D[k:n]))   k = max pow2 < n
//
// Two trees are used by L-PBFT: the history tree M over all ledger entries,
// whose root ¯M appears in every signed pre-prepare, and a small per-batch
// tree G over the ⟨t,i,o⟩ transaction entries of one batch, whose root ¯G is
// also signed and whose audit paths appear in client receipts.
//
// The tree supports rollback (truncation of a leaf suffix) as required by
// Lemma 1, and can be reconstructed from a compact frontier (size + peaks)
// recorded in checkpoints, after which it keeps accepting appends.
package merkle

import (
	"errors"
	"fmt"
	"math/bits"

	"iaccf/internal/hashsig"
)

var (
	// ErrOutOfRange reports an index outside the tree.
	ErrOutOfRange = errors.New("merkle: index out of range")
	// ErrCompacted reports an operation that needs leaves that were dropped
	// by Compact or never present after a frontier restore.
	ErrCompacted = errors.New("merkle: leaves compacted away")
)

const (
	leafPrefix     = 0x00
	internalPrefix = 0x01
)

// EmptyRoot is the root of a tree with no leaves.
func EmptyRoot() hashsig.Digest { return hashsig.Sum(nil) }

// LeafHash computes the domain-separated hash of a leaf entry digest. The
// preimage is assembled in a stack array: leaf hashing runs once per ledger
// entry per tree and must not allocate.
func LeafHash(entry hashsig.Digest) hashsig.Digest {
	var b [1 + hashsig.DigestSize]byte
	b[0] = leafPrefix
	copy(b[1:], entry[:])
	return hashsig.Sum(b[:])
}

func nodeHash(left, right hashsig.Digest) hashsig.Digest {
	var b [1 + 2*hashsig.DigestSize]byte
	b[0] = internalPrefix
	copy(b[1:], left[:])
	copy(b[1+hashsig.DigestSize:], right[:])
	return hashsig.Sum(b[:])
}

// peak is a perfect subtree on the frontier.
type peak struct {
	size uint64 // number of leaves covered; a power of two
	hash hashsig.Digest
}

// Tree is an append-only Merkle tree. The zero value is an empty tree ready
// for use.
//
// A Tree retains the leaf hashes appended since its base (zero for a fresh
// tree; the restore point for a tree built from a Frontier, or the Compact
// point). Audit paths and prefix roots are available for the retained
// region; the region before the base is summarized by its peaks.
//
// The tree additionally maintains its full peak decomposition incrementally
// (a binary-counter merge per append, amortized one node hash), so Root is
// O(log n) instead of re-hashing every retained leaf. The ledger calls Root
// once per batch; without the cache that call is what made batch execution
// quadratic in ledger length.
type Tree struct {
	base      uint64           // leaves [0, base) are summarized by basePeaks
	basePeaks []peak           // maximal perfect subtrees covering [0, base)
	leaves    []hashsig.Digest // leaf hashes for positions [base, size)
	peaks     []peak           // peak decomposition of [0, Size()), maintained on append
}

// New returns an empty tree.
func New() *Tree { return &Tree{} }

// Size returns the number of leaves in the tree.
func (t *Tree) Size() uint64 { return t.base + uint64(len(t.leaves)) }

// Base returns the first leaf index for which the tree retains the leaf
// hash. Paths and rollback are only available at or after the base.
func (t *Tree) Base() uint64 { return t.base }

// Append adds the digest of a new ledger entry as the rightmost leaf and
// returns its leaf index.
func (t *Tree) Append(entry hashsig.Digest) uint64 {
	return t.AppendLeafHash(LeafHash(entry))
}

// AppendLeafHash adds a pre-hashed leaf (already domain separated). It is
// used when replaying serialized leaf hashes, e.g. restoring checkpoints.
func (t *Tree) AppendLeafHash(leaf hashsig.Digest) uint64 {
	i := t.Size()
	t.leaves = append(t.leaves, leaf)
	t.peaks = pushPeak(t.peaks, leaf)
	return i
}

// pushPeak appends a one-leaf peak and performs the binary-counter merges:
// two adjacent peaks of equal size are siblings of an aligned subtree, so
// folding them keeps the stack equal to the greedy RFC 6962 decomposition.
func pushPeak(peaks []peak, leaf hashsig.Digest) []peak {
	peaks = append(peaks, peak{size: 1, hash: leaf})
	for len(peaks) >= 2 && peaks[len(peaks)-1].size == peaks[len(peaks)-2].size {
		a, b := peaks[len(peaks)-2], peaks[len(peaks)-1]
		peaks = peaks[:len(peaks)-2]
		peaks = append(peaks, peak{size: a.size * 2, hash: nodeHash(a.hash, b.hash)})
	}
	return peaks
}

// rebuildPeaks recomputes the peak decomposition covering the base peaks
// plus the given retained leaves. Used after rollback, the only operation
// that shrinks the tree within the retained region.
func rebuildPeaks(basePeaks []peak, leaves []hashsig.Digest) []peak {
	peaks := append([]peak(nil), basePeaks...)
	for _, leaf := range leaves {
		peaks = pushPeak(peaks, leaf)
	}
	return peaks
}

// Root returns the Merkle root over all leaves: the right fold of the peak
// decomposition, which is exactly the RFC 6962 recursion (the split point
// of a ragged tree is its largest peak).
func (t *Tree) Root() hashsig.Digest {
	if t.Size() == 0 {
		return EmptyRoot()
	}
	acc := t.peaks[len(t.peaks)-1].hash
	for i := len(t.peaks) - 2; i >= 0; i-- {
		acc = nodeHash(t.peaks[i].hash, acc)
	}
	return acc
}

// RootAt returns the root of the prefix containing the first n leaves.
// n must satisfy Base() <= n <= Size(), or n == 0.
func (t *Tree) RootAt(n uint64) (hashsig.Digest, error) {
	if n == 0 {
		return EmptyRoot(), nil
	}
	if n < t.base || n > t.Size() {
		return hashsig.Digest{}, fmt.Errorf("%w: prefix %d (base %d, size %d)", ErrOutOfRange, n, t.base, t.Size())
	}
	if n == t.Size() {
		return t.Root(), nil
	}
	return t.hashRange(0, n)
}

// hashRange computes MTH(D[a:b)) for 0 <= a < b <= Size, using retained
// leaves for positions >= base and base peaks for aligned blocks before it.
func (t *Tree) hashRange(a, b uint64) (hashsig.Digest, error) {
	if b <= a {
		return hashsig.Digest{}, fmt.Errorf("%w: empty range [%d,%d)", ErrOutOfRange, a, b)
	}
	if a >= t.base {
		return t.hashRetained(a, b), nil
	}
	// The range begins before the base: look for a base peak that starts
	// exactly at a and fits in [a, b).
	var off uint64
	for _, p := range t.basePeaks {
		if off == a {
			if p.size == b-a {
				return p.hash, nil
			}
			if p.size < b-a {
				// Peak covers a prefix of the range; combine with the rest.
				// This only happens when the range is ragged on the right,
				// i.e. the recursion below would split exactly at the peak
				// boundary, so recurse on the remainder.
				break
			}
			return hashsig.Digest{}, fmt.Errorf("%w: range [%d,%d) finer than frontier", ErrCompacted, a, b)
		}
		off += p.size
	}
	if b-a == 1 {
		return hashsig.Digest{}, fmt.Errorf("%w: leaf %d before base %d", ErrCompacted, a, t.base)
	}
	k := splitPoint(b - a)
	left, err := t.hashRange(a, a+k)
	if err != nil {
		return hashsig.Digest{}, err
	}
	right, err := t.hashRange(a+k, b)
	if err != nil {
		return hashsig.Digest{}, err
	}
	return nodeHash(left, right), nil
}

// hashRetained computes MTH over a range fully inside the retained leaves.
func (t *Tree) hashRetained(a, b uint64) hashsig.Digest {
	if b-a == 1 {
		return t.leaves[a-t.base]
	}
	k := splitPoint(b - a)
	return nodeHash(t.hashRetained(a, a+k), t.hashRetained(a+k, b))
}

// splitPoint returns the largest power of two strictly less than n (n >= 2).
func splitPoint(n uint64) uint64 {
	return 1 << (bits.Len64(n-1) - 1)
}

// Path returns the audit path (bottom-up sibling hashes) proving leaf i is
// part of the tree of the current size, per RFC 6962 PATH.
func (t *Tree) Path(i uint64) ([]hashsig.Digest, error) {
	return t.PathAt(i, t.Size())
}

// PathAt returns the audit path for leaf i within the prefix tree of n
// leaves. Requires base <= i < n <= Size().
func (t *Tree) PathAt(i, n uint64) ([]hashsig.Digest, error) {
	if i >= n || n > t.Size() {
		return nil, fmt.Errorf("%w: leaf %d of prefix %d (size %d)", ErrOutOfRange, i, n, t.Size())
	}
	if i < t.base {
		return nil, fmt.Errorf("%w: leaf %d before base %d", ErrCompacted, i, t.base)
	}
	return t.pathRange(i, 0, n)
}

// pathRange computes the audit path for leaf i within the range [a, b).
func (t *Tree) pathRange(i, a, b uint64) ([]hashsig.Digest, error) {
	if b-a == 1 {
		return nil, nil
	}
	k := splitPoint(b - a)
	if i < a+k {
		path, err := t.pathRange(i, a, a+k)
		if err != nil {
			return nil, err
		}
		sib, err := t.hashRange(a+k, b)
		if err != nil {
			return nil, err
		}
		return append(path, sib), nil
	}
	path, err := t.pathRange(i, a+k, b)
	if err != nil {
		return nil, err
	}
	sib, err := t.hashRange(a, a+k)
	if err != nil {
		return nil, err
	}
	return append(path, sib), nil
}

// VerifyPath checks that entry is the i-th of n leaves of the tree with the
// given root, using the audit path returned by Path/PathAt.
func VerifyPath(entry hashsig.Digest, i, n uint64, path []hashsig.Digest, root hashsig.Digest) bool {
	if i >= n {
		return false
	}
	h, rest, ok := rollUp(LeafHash(entry), i, n, path)
	return ok && len(rest) == 0 && h == root
}

// VerifyShardedPath checks a two-stage audit path: entry is the i-th of m
// leaves in shard tree number `shard`, and that shard tree's root is the
// shard-th of `shards` leaves in the top tree with the given root. The path
// is the shard-tree audit path (the prefix) followed by the top-tree audit
// path — exactly what a sharded-execution receipt carries, rooting a
// transaction entry in the single signed ¯G that combines all per-shard
// batch trees G_s (paper §6). The split point is not declared anywhere in
// the path: the prefix length is fully determined by (i, m), so a path
// cannot be reinterpreted across the stage boundary.
func VerifyShardedPath(entry hashsig.Digest, i, m, shard, shards uint64, path []hashsig.Digest, root hashsig.Digest) bool {
	if i >= m || shard >= shards {
		return false
	}
	shardRoot, rest, ok := rollUp(LeafHash(entry), i, m, path)
	if !ok {
		return false
	}
	h, rest, ok := rollUp(LeafHash(shardRoot), shard, shards, rest)
	return ok && len(rest) == 0 && h == root
}

// rollUp recomputes the subtree hash for the range containing leaf i.
func rollUp(h hashsig.Digest, i, n uint64, path []hashsig.Digest) (hashsig.Digest, []hashsig.Digest, bool) {
	if n == 1 {
		return h, path, true
	}
	if len(path) == 0 {
		return h, nil, false
	}
	k := splitPoint(n)
	if i < k {
		sub, rest, ok := rollUp(h, i, k, path)
		if !ok || len(rest) == 0 {
			return h, nil, false
		}
		return nodeHash(sub, rest[0]), rest[1:], true
	}
	sub, rest, ok := rollUp(h, i-k, n-k, path)
	if !ok || len(rest) == 0 {
		return h, nil, false
	}
	return nodeHash(rest[0], sub), rest[1:], true
}

// Rollback truncates the tree to n leaves, discarding the suffix. L-PBFT
// rolls the history tree back when a backup rejects a pre-prepare or during
// view changes (Lemma 1). n must be within the retained region.
func (t *Tree) Rollback(n uint64) error {
	if n > t.Size() {
		return fmt.Errorf("%w: rollback to %d (size %d)", ErrOutOfRange, n, t.Size())
	}
	if n < t.base {
		return fmt.Errorf("%w: rollback to %d before base %d", ErrCompacted, n, t.base)
	}
	t.leaves = t.leaves[:n-t.base]
	t.peaks = rebuildPeaks(t.basePeaks, t.leaves)
	return nil
}

// LeafHashAt returns the stored leaf hash for index i (i >= Base).
func (t *Tree) LeafHashAt(i uint64) (hashsig.Digest, error) {
	if i >= t.Size() {
		return hashsig.Digest{}, fmt.Errorf("%w: leaf %d (size %d)", ErrOutOfRange, i, t.Size())
	}
	if i < t.base {
		return hashsig.Digest{}, fmt.Errorf("%w: leaf %d before base %d", ErrCompacted, i, t.base)
	}
	return t.leaves[i-t.base], nil
}

// Clone returns an independent copy of the tree.
func (t *Tree) Clone() *Tree {
	c := &Tree{
		base:      t.base,
		basePeaks: append([]peak(nil), t.basePeaks...),
		leaves:    append([]hashsig.Digest(nil), t.leaves...),
		peaks:     append([]peak(nil), t.peaks...),
	}
	return c
}
