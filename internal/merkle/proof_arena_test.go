package merkle

import (
	"fmt"
	"testing"

	"iaccf/internal/hashsig"
)

func entryDigests(n int) []hashsig.Digest {
	out := make([]hashsig.Digest, n)
	for i := range out {
		out[i] = hashsig.Sum([]byte(fmt.Sprintf("entry-%d", i)))
	}
	return out
}

// TestPathsAtMatchesPathAt checks the shared-traversal (and, on multi-core
// machines, forked) path builder against the reference single-leaf PathAt
// across sizes spanning the parallel gate and ragged tree shapes.
func TestPathsAtMatchesPathAt(t *testing.T) {
	for _, n := range []int{1, 2, 3, 7, 64, 65, 511, 512, 1500} {
		entries := entryDigests(n)
		tree := New()
		for _, e := range entries {
			tree.Append(e)
		}
		for _, from := range []uint64{0, uint64(n) / 3, uint64(n) - 1} {
			paths, err := tree.PathsAt(from, uint64(n))
			if err != nil {
				t.Fatalf("n=%d from=%d: %v", n, from, err)
			}
			for i := from; i < uint64(n); i++ {
				want, err := tree.PathAt(i, uint64(n))
				if err != nil {
					t.Fatal(err)
				}
				got := paths[i-from]
				if len(got) != len(want) {
					t.Fatalf("n=%d from=%d leaf %d: path len %d, want %d", n, from, i, len(got), len(want))
				}
				for j := range got {
					if got[j] != want[j] {
						t.Fatalf("n=%d from=%d leaf %d: path[%d] mismatch", n, from, i, j)
					}
				}
				if !VerifyPath(entries[i], i, uint64(n), got, tree.Root()) {
					t.Fatalf("n=%d from=%d leaf %d: path does not verify", n, from, i)
				}
			}
		}
	}
}

// TestPathsArenaAppendSafe: the arena'd paths must behave like independent
// slices. Appending to one returned path (what the ledger does to join a
// shard path with the top path) must not alter any sibling path.
func TestPathsArenaAppendSafe(t *testing.T) {
	const n = 600 // above the parallel gate
	entries := entryDigests(n)
	tree := New()
	for _, e := range entries {
		tree.Append(e)
	}
	paths, err := tree.PathsAt(0, n)
	if err != nil {
		t.Fatal(err)
	}
	if len(paths[0]) != cap(paths[0]) {
		t.Fatalf("path capacity %d exceeds length %d: appends would spill into the neighbor", cap(paths[0]), len(paths[0]))
	}
	// Stomp every path with appended garbage...
	junk := hashsig.Sum([]byte("junk"))
	for i := range paths {
		paths[i] = append(paths[i], junk, junk, junk)
	}
	// ...then re-verify each original prefix against a fresh recompute.
	for i := uint64(0); i < n; i++ {
		want, err := tree.PathAt(i, n)
		if err != nil {
			t.Fatal(err)
		}
		for j := range want {
			if paths[i][j] != want[j] {
				t.Fatalf("leaf %d: append to other paths corrupted element %d", i, j)
			}
		}
	}
}

// TestAppendAndProveLeafHashes: the pre-hashed-leaves variant must be
// byte-identical to AppendAndProve over the same entries.
func TestAppendAndProveLeafHashes(t *testing.T) {
	for _, n := range []int{0, 1, 5, 700} {
		entries := entryDigests(n)
		t1, t2 := New(), New()
		f1, r1, p1, err1 := t1.AppendAndProve(entries)
		leaves := make([]hashsig.Digest, n)
		for i, e := range entries {
			leaves[i] = LeafHash(e)
		}
		f2, r2, p2, err2 := t2.AppendAndProveLeafHashes(leaves)
		if err1 != nil || err2 != nil {
			t.Fatalf("n=%d: %v / %v", n, err1, err2)
		}
		if f1 != f2 || r1 != r2 || len(p1) != len(p2) {
			t.Fatalf("n=%d: variants diverge (first %d/%d root %v/%v)", n, f1, f2, r1, r2)
		}
		for i := range p1 {
			if len(p1[i]) != len(p2[i]) {
				t.Fatalf("n=%d leaf %d: path lengths differ", n, i)
			}
			for j := range p1[i] {
				if p1[i][j] != p2[i][j] {
					t.Fatalf("n=%d leaf %d: paths differ at %d", n, i, j)
				}
			}
		}
	}
}

// TestAppendAndProveRagged: appending a second batch onto a ragged tree
// still yields paths valid against the grown root (the arena sizing must
// account for hashRange lookups left of the batch).
func TestAppendAndProveRagged(t *testing.T) {
	entries := entryDigests(900)
	tree := New()
	if _, _, _, err := tree.AppendAndProve(entries[:333]); err != nil {
		t.Fatal(err)
	}
	first, root, paths, err := tree.AppendAndProve(entries[333:])
	if err != nil {
		t.Fatal(err)
	}
	if first != 333 {
		t.Fatalf("first = %d", first)
	}
	for i, p := range paths {
		leaf := uint64(333 + i)
		if !VerifyPath(entries[leaf], leaf, 900, p, root) {
			t.Fatalf("leaf %d: path does not verify against grown root", leaf)
		}
	}
}
