package merkle

import (
	"fmt"
	"testing"

	"iaccf/internal/hashsig"
)

func TestAppendAndProveMatchesPathAt(t *testing.T) {
	for _, n := range []int{1, 2, 3, 7, 8, 33} {
		es := entries(n, "aap")
		batch := New()
		first, root, paths, err := batch.AppendAndProve(es)
		if err != nil {
			t.Fatal(err)
		}
		if first != 0 || root != batch.Root() {
			t.Fatalf("n=%d: first=%d root mismatch", n, first)
		}
		if len(paths) != n {
			t.Fatalf("n=%d: %d paths", n, len(paths))
		}
		ref := New()
		for _, e := range es {
			ref.Append(e)
		}
		for i, e := range es {
			if !VerifyPath(e, uint64(i), uint64(n), paths[i], root) {
				t.Fatalf("n=%d: path %d does not verify", n, i)
			}
			want, err := ref.Path(uint64(i))
			if err != nil {
				t.Fatal(err)
			}
			if len(want) != len(paths[i]) {
				t.Fatalf("n=%d leaf %d: path length %d, want %d", n, i, len(paths[i]), len(want))
			}
			for j := range want {
				if want[j] != paths[i][j] {
					t.Fatalf("n=%d leaf %d: path node %d differs from Path()", n, i, j)
				}
			}
		}
	}
}

func TestAppendAndProveGrowsExistingTree(t *testing.T) {
	tr := New()
	pre := entries(5, "pre")
	for _, e := range pre {
		tr.Append(e)
	}
	more := entries(3, "more")
	first, root, paths, err := tr.AppendAndProve(more)
	if err != nil {
		t.Fatal(err)
	}
	if first != 5 || tr.Size() != 8 {
		t.Fatalf("first=%d size=%d", first, tr.Size())
	}
	for i, e := range more {
		if !VerifyPath(e, first+uint64(i), 8, paths[i], root) {
			t.Fatalf("appended leaf %d path does not verify", i)
		}
	}
	// Old leaves still provable against the same root via PathAt.
	for i, e := range pre {
		p, err := tr.Path(uint64(i))
		if err != nil {
			t.Fatal(err)
		}
		if !VerifyPath(e, uint64(i), 8, p, root) {
			t.Fatalf("pre-existing leaf %d no longer proves", i)
		}
	}
}

func TestAppendAndProveEmpty(t *testing.T) {
	tr := New()
	first, root, paths, err := tr.AppendAndProve(nil)
	if err != nil || first != 0 || root != EmptyRoot() || paths != nil {
		t.Fatalf("empty append-and-prove: %d %v %v %v", first, root, paths, err)
	}
}

func TestPathsAtValidation(t *testing.T) {
	tr := New()
	for _, e := range entries(8, "v") {
		tr.Append(e)
	}
	if _, err := tr.PathsAt(3, 3); err == nil {
		t.Fatal("empty range accepted")
	}
	if _, err := tr.PathsAt(0, 9); err == nil {
		t.Fatal("past-size range accepted")
	}
	if err := tr.Compact(4); err != nil {
		t.Fatal(err)
	}
	if _, err := tr.PathsAt(2, 8); err == nil {
		t.Fatal("compacted range accepted")
	}
	// Retained suffix still provable: interior hashes left of base come
	// from the peaks.
	paths, err := tr.PathsAt(4, 8)
	if err != nil {
		t.Fatal(err)
	}
	es := entries(8, "v")
	for i := 4; i < 8; i++ {
		if !VerifyPath(es[i], uint64(i), 8, paths[i-4], tr.Root()) {
			t.Fatalf("leaf %d after compact does not verify", i)
		}
	}
}

func TestConsistencyProofAllSizes(t *testing.T) {
	const maxN = 20
	es := entries(maxN, "cons")
	for n := 1; n <= maxN; n++ {
		tr := New()
		for _, e := range es[:n] {
			tr.Append(e)
		}
		newRoot := tr.Root()
		for m := 1; m <= n; m++ {
			oldRoot, err := tr.RootAt(uint64(m))
			if err != nil {
				t.Fatal(err)
			}
			proof, err := tr.ConsistencyProof(uint64(m), uint64(n))
			if err != nil {
				t.Fatalf("m=%d n=%d: %v", m, n, err)
			}
			if !VerifyConsistency(uint64(m), uint64(n), oldRoot, newRoot, proof) {
				t.Fatalf("m=%d n=%d: proof does not verify", m, n)
			}
			// Tampering with the old root, new root, or any proof node fails.
			bad := hashsig.Sum([]byte("bad"))
			if VerifyConsistency(uint64(m), uint64(n), bad, newRoot, proof) && oldRoot != bad {
				t.Fatalf("m=%d n=%d: wrong old root accepted", m, n)
			}
			if VerifyConsistency(uint64(m), uint64(n), oldRoot, bad, proof) && newRoot != bad {
				t.Fatalf("m=%d n=%d: wrong new root accepted", m, n)
			}
			if len(proof) > 0 {
				mut := append([]hashsig.Digest(nil), proof...)
				mut[0] = hashsig.Sum(mut[0][:])
				if VerifyConsistency(uint64(m), uint64(n), oldRoot, newRoot, mut) {
					t.Fatalf("m=%d n=%d: corrupted proof accepted", m, n)
				}
				if VerifyConsistency(uint64(m), uint64(n), oldRoot, newRoot, proof[:len(proof)-1]) {
					t.Fatalf("m=%d n=%d: truncated proof accepted", m, n)
				}
			}
		}
	}
}

func TestConsistencyProofValidation(t *testing.T) {
	tr := New()
	for _, e := range entries(8, "cv") {
		tr.Append(e)
	}
	if _, err := tr.ConsistencyProof(0, 8); err == nil {
		t.Fatal("m=0 accepted")
	}
	if _, err := tr.ConsistencyProof(5, 3); err == nil {
		t.Fatal("m>n accepted")
	}
	if _, err := tr.ConsistencyProof(3, 9); err == nil {
		t.Fatal("n>size accepted")
	}
	p, err := tr.ConsistencyProof(8, 8)
	if err != nil || p != nil {
		t.Fatal("m==n should yield an empty proof")
	}
	if !VerifyConsistency(8, 8, tr.Root(), tr.Root(), nil) {
		t.Fatal("m==n identity proof rejected")
	}
}

// TestFrontierRestoreConsistency is the checkpoint-audit scenario: a
// replica records a frontier at size m, restores from it, keeps appending,
// and proves to an auditor holding the pre-restore signed root that the new
// history extends the old one.
func TestFrontierRestoreConsistency(t *testing.T) {
	for _, m := range []int{1, 3, 4, 6, 8, 11} {
		for _, extra := range []int{1, 2, 5, 9} {
			n := m + extra
			es := entries(n, "fr")

			full := New()
			for _, e := range es[:m] {
				full.Append(e)
			}
			oldRoot := full.Root()
			f, err := full.Frontier()
			if err != nil {
				t.Fatal(err)
			}

			restored, err := FromFrontier(f)
			if err != nil {
				t.Fatal(err)
			}
			for _, e := range es[m:] {
				restored.Append(e)
			}
			for _, e := range es[m:] {
				full.Append(e)
			}
			if restored.Root() != full.Root() {
				t.Fatalf("m=%d n=%d: restored root diverges", m, n)
			}
			// The restored tree can still state the pre-restore root...
			r, err := restored.RootAt(uint64(m))
			if err != nil {
				t.Fatalf("m=%d n=%d: RootAt(m): %v", m, n, err)
			}
			if r != oldRoot {
				t.Fatalf("m=%d n=%d: RootAt(m) != pre-restore root", m, n)
			}
			// ...and prove consistency against it, identically to a tree
			// that never dropped its leaves.
			proof, err := restored.ConsistencyProof(uint64(m), uint64(n))
			if err != nil {
				t.Fatalf("m=%d n=%d: restored proof: %v", m, n, err)
			}
			if !VerifyConsistency(uint64(m), uint64(n), oldRoot, restored.Root(), proof) {
				t.Fatalf("m=%d n=%d: restored consistency proof rejected", m, n)
			}
			fullProof, err := full.ConsistencyProof(uint64(m), uint64(n))
			if err != nil {
				t.Fatal(err)
			}
			if len(proof) != len(fullProof) {
				t.Fatalf("m=%d n=%d: proof lengths differ", m, n)
			}
			for i := range proof {
				if proof[i] != fullProof[i] {
					t.Fatalf("m=%d n=%d: proof node %d differs from full tree", m, n, i)
				}
			}
		}
	}
}

func TestVerifyShardedPath(t *testing.T) {
	// Build 3 shard trees of uneven sizes, then a top tree over their roots,
	// exactly as the ledger builds the combined batch tree ¯G.
	shardSizes := []int{5, 1, 8}
	var shardTrees []*Tree
	var entries [][]hashsig.Digest
	top := New()
	for s, size := range shardSizes {
		tr := New()
		var es []hashsig.Digest
		for i := 0; i < size; i++ {
			e := hashsig.Sum([]byte(fmt.Sprintf("entry-%d-%d", s, i)))
			es = append(es, e)
			tr.Append(e)
		}
		shardTrees = append(shardTrees, tr)
		entries = append(entries, es)
		top.Append(tr.Root())
	}
	root := top.Root()
	shards := uint64(len(shardSizes))

	for s, tr := range shardTrees {
		m := tr.Size()
		topPath, err := top.Path(uint64(s))
		if err != nil {
			t.Fatal(err)
		}
		for i := uint64(0); i < m; i++ {
			shardPath, err := tr.Path(i)
			if err != nil {
				t.Fatal(err)
			}
			path := append(append([]hashsig.Digest(nil), shardPath...), topPath...)
			if !VerifyShardedPath(entries[s][i], i, m, uint64(s), shards, path, root) {
				t.Fatalf("shard %d leaf %d: valid sharded path rejected", s, i)
			}
			// Wrong entry, index, shard, sizes, root: all rejected.
			if VerifyShardedPath(hashsig.Sum([]byte("evil")), i, m, uint64(s), shards, path, root) {
				t.Fatal("forged entry accepted")
			}
			if VerifyShardedPath(entries[s][i], i+1, m, uint64(s), shards, path, root) {
				t.Fatal("wrong leaf index accepted")
			}
			if VerifyShardedPath(entries[s][i], i, m, uint64((s+1))%shards, shards, path, root) {
				t.Fatal("wrong shard index accepted")
			}
			// Note: like plain RFC 6962 audit paths, claimed position
			// metadata (sizes, shard widths) whose roll-up shape happens to
			// coincide can still verify — only the (entry, root) binding is
			// cryptographic, via leaf/interior domain separation. Assertions
			// here therefore only check that a different entry, path, or
			// root is rejected.
			if VerifyShardedPath(entries[s][i], i, m, uint64(s), shards, path, hashsig.Sum([]byte("bad"))) {
				t.Fatal("wrong root accepted")
			}
			if len(path) > 0 {
				truncated := path[:len(path)-1]
				if VerifyShardedPath(entries[s][i], i, m, uint64(s), shards, truncated, root) {
					t.Fatal("truncated path accepted")
				}
				flipped := append([]hashsig.Digest(nil), path...)
				flipped[0][3] ^= 0x10
				if VerifyShardedPath(entries[s][i], i, m, uint64(s), shards, flipped, root) {
					t.Fatal("corrupted path accepted")
				}
			}
		}
	}
	// Degenerate single-shard, single-entry case.
	one := New()
	e := hashsig.Sum([]byte("only"))
	one.Append(e)
	t1 := New()
	t1.Append(one.Root())
	if !VerifyShardedPath(e, 0, 1, 0, 1, nil, t1.Root()) {
		t.Fatal("single-shard single-entry path rejected")
	}
	if VerifyShardedPath(e, 0, 0, 0, 1, nil, t1.Root()) {
		t.Fatal("zero shard size accepted")
	}
}
