package merkle

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"iaccf/internal/hashsig"
)

// refRoot is an independent reference implementation of RFC 6962 MTH used to
// validate the incremental tree.
func refRoot(entries []hashsig.Digest) hashsig.Digest {
	leaves := make([]hashsig.Digest, len(entries))
	for i, e := range entries {
		leaves[i] = LeafHash(e)
	}
	return refMTH(leaves)
}

func refMTH(leaves []hashsig.Digest) hashsig.Digest {
	switch len(leaves) {
	case 0:
		return EmptyRoot()
	case 1:
		return leaves[0]
	}
	k := 1
	for k*2 < len(leaves) {
		k *= 2
	}
	return nodeHash(refMTH(leaves[:k]), refMTH(leaves[k:]))
}

func entries(n int, seed string) []hashsig.Digest {
	out := make([]hashsig.Digest, n)
	for i := range out {
		out[i] = hashsig.Sum([]byte(fmt.Sprintf("%s-%d", seed, i)))
	}
	return out
}

func TestEmptyTree(t *testing.T) {
	tr := New()
	if tr.Size() != 0 {
		t.Fatal("empty tree has nonzero size")
	}
	if tr.Root() != EmptyRoot() {
		t.Fatal("empty tree root mismatch")
	}
}

func TestRootMatchesReferenceAllSizes(t *testing.T) {
	es := entries(130, "root")
	tr := New()
	for i, e := range es {
		tr.Append(e)
		want := refRoot(es[:i+1])
		if got := tr.Root(); got != want {
			t.Fatalf("size %d: root %v != reference %v", i+1, got, want)
		}
	}
}

func TestRootAtPrefixes(t *testing.T) {
	es := entries(40, "prefix")
	tr := New()
	for _, e := range es {
		tr.Append(e)
	}
	for n := 0; n <= 40; n++ {
		got, err := tr.RootAt(uint64(n))
		if err != nil {
			t.Fatalf("RootAt(%d): %v", n, err)
		}
		if want := refRoot(es[:n]); got != want {
			t.Fatalf("RootAt(%d) mismatch", n)
		}
	}
	if _, err := tr.RootAt(41); err == nil {
		t.Fatal("RootAt beyond size succeeded")
	}
}

func TestPathsVerifyAllSizes(t *testing.T) {
	for _, n := range []int{1, 2, 3, 4, 5, 7, 8, 9, 15, 16, 17, 33, 64, 65} {
		es := entries(n, fmt.Sprintf("path-%d", n))
		tr := New()
		for _, e := range es {
			tr.Append(e)
		}
		root := tr.Root()
		for i := 0; i < n; i++ {
			path, err := tr.Path(uint64(i))
			if err != nil {
				t.Fatalf("n=%d Path(%d): %v", n, i, err)
			}
			if !VerifyPath(es[i], uint64(i), uint64(n), path, root) {
				t.Fatalf("n=%d: path for leaf %d does not verify", n, i)
			}
			// Wrong leaf, wrong index, wrong root must all fail.
			if VerifyPath(hashsig.Sum([]byte("evil")), uint64(i), uint64(n), path, root) {
				t.Fatalf("n=%d: forged leaf accepted at %d", n, i)
			}
			if n > 1 && VerifyPath(es[i], uint64((i+1)%n), uint64(n), path, root) {
				t.Fatalf("n=%d: path accepted for wrong index %d", n, i)
			}
			if VerifyPath(es[i], uint64(i), uint64(n), path, hashsig.Sum([]byte("bad"))) {
				t.Fatalf("n=%d: path accepted for wrong root", n)
			}
		}
	}
}

func TestVerifyPathRejectsTruncatedPath(t *testing.T) {
	es := entries(10, "trunc")
	tr := New()
	for _, e := range es {
		tr.Append(e)
	}
	path, err := tr.Path(3)
	if err != nil {
		t.Fatal(err)
	}
	root := tr.Root()
	if len(path) == 0 {
		t.Fatal("expected non-empty path")
	}
	if VerifyPath(es[3], 3, 10, path[:len(path)-1], root) {
		t.Fatal("truncated path accepted")
	}
	if VerifyPath(es[3], 3, 10, append(append([]hashsig.Digest{}, path...), hashsig.Sum([]byte("extra"))), root) {
		t.Fatal("extended path accepted")
	}
	// A size with a different path length must fail (same-shape sizes, e.g.
	// 11 or 16 for leaf 3, legitimately verify: the root, not n, binds the
	// contents).
	if VerifyPath(es[3], 3, 5, path, root) {
		t.Fatal("path accepted with wrong tree shape")
	}
	if VerifyPath(es[3], 12, 10, path, root) {
		t.Fatal("out-of-range index accepted")
	}
}

func TestRollback(t *testing.T) {
	es := entries(50, "rb")
	tr := New()
	roots := make([]hashsig.Digest, 0, 51)
	roots = append(roots, tr.Root())
	for _, e := range es {
		tr.Append(e)
		roots = append(roots, tr.Root())
	}
	for n := 50; n >= 0; n-- {
		if err := tr.Rollback(uint64(n)); err != nil {
			t.Fatalf("Rollback(%d): %v", n, err)
		}
		if tr.Size() != uint64(n) {
			t.Fatalf("size after rollback: %d != %d", tr.Size(), n)
		}
		if tr.Root() != roots[n] {
			t.Fatalf("root after rollback to %d differs", n)
		}
	}
	if err := tr.Rollback(1); err == nil {
		t.Fatal("rollback beyond size succeeded")
	}
}

func TestRollbackThenReappend(t *testing.T) {
	es := entries(20, "rr")
	tr := New()
	for _, e := range es {
		tr.Append(e)
	}
	want := tr.Root()
	if err := tr.Rollback(7); err != nil {
		t.Fatal(err)
	}
	for _, e := range es[7:] {
		tr.Append(e)
	}
	if tr.Root() != want {
		t.Fatal("root differs after rollback+reappend of same leaves")
	}
}

func TestFrontierRestore(t *testing.T) {
	es := entries(60, "fr")
	for _, cut := range []int{0, 1, 2, 5, 31, 32, 33, 59, 60} {
		tr := New()
		for _, e := range es[:cut] {
			tr.Append(e)
		}
		f, err := tr.Frontier()
		if err != nil {
			t.Fatalf("cut=%d Frontier: %v", cut, err)
		}
		restored, err := FromFrontier(f)
		if err != nil {
			t.Fatalf("cut=%d FromFrontier: %v", cut, err)
		}
		if restored.Size() != uint64(cut) {
			t.Fatalf("cut=%d restored size %d", cut, restored.Size())
		}
		if restored.Root() != tr.Root() {
			t.Fatalf("cut=%d restored root differs", cut)
		}
		// Continue appending on both; roots must stay in lockstep.
		for _, e := range es[cut:] {
			tr.Append(e)
			restored.Append(e)
			if restored.Root() != tr.Root() {
				t.Fatalf("cut=%d divergence at size %d", cut, tr.Size())
			}
		}
		// Paths for post-restore leaves must verify against the full root.
		root := restored.Root()
		for i := cut; i < 60; i++ {
			path, err := restored.Path(uint64(i))
			if err != nil {
				t.Fatalf("cut=%d Path(%d): %v", cut, i, err)
			}
			if !VerifyPath(es[i], uint64(i), 60, path, root) {
				t.Fatalf("cut=%d: restored path for %d fails", cut, i)
			}
		}
		// Pre-restore paths must be unavailable, not wrong.
		if cut > 0 {
			if _, err := restored.Path(uint64(cut - 1)); err == nil {
				t.Fatalf("cut=%d: path before base succeeded", cut)
			}
		}
	}
}

func TestFrontierEncodeDecode(t *testing.T) {
	tr := New()
	for _, e := range entries(13, "enc") {
		tr.Append(e)
	}
	f, err := tr.Frontier()
	if err != nil {
		t.Fatal(err)
	}
	dec, err := DecodeFrontier(f.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if dec.Size != f.Size || len(dec.Peaks) != len(f.Peaks) {
		t.Fatal("frontier round trip mismatch")
	}
	for i := range f.Peaks {
		if dec.Peaks[i] != f.Peaks[i] {
			t.Fatal("peak mismatch")
		}
	}
	if dec.Digest() != f.Digest() {
		t.Fatal("frontier digest mismatch")
	}
	if _, err := DecodeFrontier(f.Encode()[:5]); err == nil {
		t.Fatal("short frontier accepted")
	}
	bad := f.Encode()
	bad = append(bad, 0xff)
	if _, err := DecodeFrontier(bad); err == nil {
		t.Fatal("over-long frontier accepted")
	}
}

func TestFromFrontierValidation(t *testing.T) {
	if _, err := FromFrontier(Frontier{Size: 3, Peaks: []hashsig.Digest{{}}}); err == nil {
		t.Fatal("frontier with wrong peak count accepted")
	}
}

func TestCompact(t *testing.T) {
	es := entries(48, "cp")
	tr := New()
	for _, e := range es {
		tr.Append(e)
	}
	full := tr.Root()
	if err := tr.Compact(17); err != nil {
		t.Fatal(err)
	}
	if tr.Root() != full {
		t.Fatal("root changed after compact")
	}
	if tr.Base() != 17 {
		t.Fatalf("base %d after compact", tr.Base())
	}
	// Paths at or after the compact point still work.
	for i := 17; i < 48; i++ {
		path, err := tr.Path(uint64(i))
		if err != nil {
			t.Fatalf("Path(%d) after compact: %v", i, err)
		}
		if !VerifyPath(es[i], uint64(i), 48, path, full) {
			t.Fatalf("path %d fails after compact", i)
		}
	}
	if _, err := tr.Path(16); err == nil {
		t.Fatal("path before compact point succeeded")
	}
	if err := tr.Rollback(16); err == nil {
		t.Fatal("rollback before compact point succeeded")
	}
	// Appends continue correctly.
	more := entries(9, "cp2")
	ref := append(append([]hashsig.Digest{}, es...), more...)
	for _, e := range more {
		tr.Append(e)
	}
	if tr.Root() != refRoot(ref) {
		t.Fatal("root after compact+append differs from reference")
	}
	// Compacting to an earlier point is a no-op.
	if err := tr.Compact(3); err != nil {
		t.Fatal(err)
	}
	if tr.Base() != 17 {
		t.Fatal("compact moved base backwards")
	}
	if err := tr.Compact(1000); err == nil {
		t.Fatal("compact beyond size succeeded")
	}
}

func TestClone(t *testing.T) {
	tr := New()
	for _, e := range entries(11, "cl") {
		tr.Append(e)
	}
	c := tr.Clone()
	if c.Root() != tr.Root() {
		t.Fatal("clone root differs")
	}
	c.Append(hashsig.Sum([]byte("extra")))
	if c.Root() == tr.Root() {
		t.Fatal("clone aliases original")
	}
	if tr.Size() != 11 || c.Size() != 12 {
		t.Fatal("sizes wrong after clone append")
	}
}

func TestLeafHashAt(t *testing.T) {
	es := entries(5, "lh")
	tr := New()
	for _, e := range es {
		tr.Append(e)
	}
	h, err := tr.LeafHashAt(2)
	if err != nil {
		t.Fatal(err)
	}
	if h != LeafHash(es[2]) {
		t.Fatal("leaf hash mismatch")
	}
	if _, err := tr.LeafHashAt(5); err == nil {
		t.Fatal("leaf hash beyond size succeeded")
	}
}

// Property: for random append/rollback interleavings the incremental tree
// always matches the reference implementation.
func TestQuickAppendRollbackMatchesReference(t *testing.T) {
	f := func(seed int64, ops []byte) bool {
		rng := rand.New(rand.NewSource(seed))
		tr := New()
		var model []hashsig.Digest
		for _, op := range ops {
			if op%4 == 0 && len(model) > 0 {
				n := rng.Intn(len(model) + 1)
				if err := tr.Rollback(uint64(n)); err != nil {
					return false
				}
				model = model[:n]
			} else {
				e := hashsig.Sum([]byte{op, byte(rng.Intn(256))})
				tr.Append(e)
				model = append(model, e)
			}
			if tr.Root() != refRoot(model) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: paths generated from a frontier-restored tree verify for every
// retained leaf at every tree size.
func TestQuickFrontierPaths(t *testing.T) {
	f := func(cutRaw, extraRaw uint8) bool {
		cut := int(cutRaw % 40)
		extra := 1 + int(extraRaw%40)
		es := entries(cut+extra, "qf")
		tr := New()
		for _, e := range es[:cut] {
			tr.Append(e)
		}
		fr, err := tr.Frontier()
		if err != nil {
			return false
		}
		rt, err := FromFrontier(fr)
		if err != nil {
			return false
		}
		for _, e := range es[cut:] {
			rt.Append(e)
		}
		root := rt.Root()
		n := uint64(cut + extra)
		for i := cut; i < cut+extra; i++ {
			path, err := rt.Path(uint64(i))
			if err != nil {
				return false
			}
			if !VerifyPath(es[i], uint64(i), n, path, root) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
