package hashsig

import (
	"runtime"
	"testing"
)

func TestSignAsyncMatchesSign(t *testing.T) {
	key := GenerateKeyFromSeed("async-test")
	pub := key.Public()
	d := Sum([]byte("payload"))
	futures := make([]*SigFuture, 8)
	for i := range futures {
		futures[i] = key.SignAsync(d)
	}
	for i, f := range futures {
		sig, err := f.Wait()
		if err != nil {
			t.Fatalf("future %d: %v", i, err)
		}
		if !pub.Verify(d, sig) {
			t.Fatalf("future %d: signature does not verify", i)
		}
		// Wait is idempotent.
		again := f.MustWait()
		if string(again) != string(sig) {
			t.Fatalf("future %d: second Wait returned a different signature", i)
		}
	}
	if pub.Verify(Sum([]byte("other")), futures[0].MustWait()) {
		t.Fatal("async signature verified against the wrong digest")
	}
}

func TestDefaultPoolTracksGOMAXPROCS(t *testing.T) {
	old := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(old)

	runtime.GOMAXPROCS(2)
	p2 := DefaultPool()
	if p2.Workers() != 2 {
		t.Fatalf("pool at GOMAXPROCS=2 has %d workers", p2.Workers())
	}
	runtime.GOMAXPROCS(3)
	p3 := DefaultPool()
	if p3.Workers() != 3 {
		t.Fatalf("pool at GOMAXPROCS=3 has %d workers", p3.Workers())
	}
	// The earlier pool stays usable after the change.
	key := GenerateKeyFromSeed("pool-test")
	d := Sum([]byte("m"))
	sig := key.MustSign(d)
	tasks := []VerifyTask{{Key: key.Public(), Digest: d, Sig: sig}}
	if !p2.AllValid(tasks) || !p3.AllValid(tasks) {
		t.Fatal("default pools failed a valid verification")
	}
	// Same size is the same cached pool.
	if DefaultPool() != p3 {
		t.Fatal("same GOMAXPROCS did not reuse the cached pool")
	}
}
