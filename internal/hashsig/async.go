package hashsig

// SigFuture is a signature being computed concurrently with other work.
// ECDSA signing over P-256 is the single largest fixed cost on the batch
// commit path (paper §6.4: one header signature per batch); SignAsync lets
// the replica overlap it with receipt construction, and lets a backup
// overlap its own co-signature with re-executing the batch it is checking —
// the signed fields are known before re-execution starts, because adopting
// the primary's header means signing the primary's exact field values.
type SigFuture struct {
	done chan struct{}
	sig  Signature
	err  error
}

// SignAsync starts signing d on a fresh goroutine and returns a future.
// The goroutine is per-call rather than pooled: signing is milliseconds of
// work at most once per batch, so a persistent worker would idle almost
// always and leak if a ledger is abandoned.
func (p *PrivateKey) SignAsync(d Digest) *SigFuture {
	f := &SigFuture{done: make(chan struct{})}
	go func() {
		f.sig, f.err = p.Sign(d)
		close(f.done)
	}()
	return f
}

// Wait blocks until the signature is ready and returns it. Like Sign, an
// error is possible only on entropy exhaustion.
func (f *SigFuture) Wait() (Signature, error) {
	<-f.done
	return f.sig, f.err
}

// MustWait is Wait panicking on failure, matching MustSign.
func (f *SigFuture) MustWait() Signature {
	sig, err := f.Wait()
	if err != nil {
		panic(err)
	}
	return sig
}
