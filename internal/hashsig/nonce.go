package hashsig

import (
	"crypto/rand"
	"fmt"
)

// NonceSize is the size in bytes of L-PBFT commitment nonces.
const NonceSize = 32

// Nonce is the random value a replica commits to (by hash) in its
// pre-prepare or prepare message and reveals in its commit message. Revealing
// the preimage proves the replica prepared the batch without requiring a
// second signature (paper §3.1, Appx. A Lemma 3).
type Nonce [NonceSize]byte

// ZeroNonce is the all-zero nonce, used as "absent".
var ZeroNonce Nonce

// NewNonce samples a fresh random nonce.
func NewNonce() Nonce {
	var n Nonce
	if _, err := rand.Read(n[:]); err != nil {
		// Entropy exhaustion is unrecoverable; a predictable nonce would
		// void the commitment scheme's security.
		panic(fmt.Sprintf("hashsig: nonce entropy: %v", err))
	}
	return n
}

// NonceFromSeed deterministically derives a nonce, for reproducible tests.
func NonceFromSeed(seed string) Nonce {
	return Nonce(Sum([]byte("iaccf-nonce-seed:" + seed)))
}

// Commit returns the hash commitment H(n) that is embedded in signed
// pre-prepare/prepare messages.
func (n Nonce) Commit() Digest {
	return Sum(n[:])
}

// IsZero reports whether the nonce is absent.
func (n Nonce) IsZero() bool { return n == ZeroNonce }

// Opens reports whether n is the preimage of commitment c.
func (n Nonce) Opens(c Digest) bool {
	return n.Commit() == c
}
