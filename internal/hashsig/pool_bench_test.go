package hashsig

import (
	"fmt"
	"testing"
)

func benchTasks(n int) []VerifyTask {
	key := GenerateKeyFromSeed("bench-signer")
	pub := key.Public()
	tasks := make([]VerifyTask, n)
	for i := range tasks {
		d := Sum([]byte(fmt.Sprintf("message-%d", i)))
		tasks[i] = VerifyTask{Key: pub, Digest: d, Sig: key.MustSign(d)}
	}
	return tasks
}

// BenchmarkVerifyAll measures pool throughput at replay-sized signature
// batches across worker counts (workers=0 selects GOMAXPROCS).
func BenchmarkVerifyAll(b *testing.B) {
	for _, workers := range []int{1, 4, 0} {
		for _, n := range []int{16, 256} {
			b.Run(fmt.Sprintf("workers=%d/n=%d", workers, n), func(b *testing.B) {
				pool := NewVerifierPool(workers)
				defer pool.Close()
				tasks := benchTasks(n)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					for _, ok := range pool.VerifyAll(tasks) {
						if !ok {
							b.Fatal("valid signature rejected")
						}
					}
				}
			})
		}
	}
}

// BenchmarkSign is the baseline cost the header signer pays per batch.
func BenchmarkSign(b *testing.B) {
	key := GenerateKeyFromSeed("bench-signer")
	d := Sum([]byte("header"))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		key.MustSign(d)
	}
}
