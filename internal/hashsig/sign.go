package hashsig

import (
	"crypto/ecdsa"
	"crypto/elliptic"
	"crypto/rand"
	"errors"
	"fmt"
	"io"
	"math/big"
)

// Signature is an ASN.1 DER-encoded ECDSA signature over a Digest.
type Signature []byte

// Clone returns a copy of the signature.
func (s Signature) Clone() Signature {
	out := make(Signature, len(s))
	copy(out, s)
	return out
}

// PrivateKey is a replica, member, or client signing key.
type PrivateKey struct {
	key *ecdsa.PrivateKey
}

// PublicKey is the verification half of a PrivateKey. Its canonical byte
// encoding (Bytes) is what the ledger and governance transactions store.
type PublicKey struct {
	key *ecdsa.PublicKey
}

// GenerateKey creates a fresh P-256 key pair using entropy from r
// (crypto/rand.Reader if r is nil).
func GenerateKey(r io.Reader) (*PrivateKey, error) {
	if r == nil {
		r = rand.Reader
	}
	k, err := ecdsa.GenerateKey(elliptic.P256(), r)
	if err != nil {
		return nil, fmt.Errorf("hashsig: generate key: %w", err)
	}
	return &PrivateKey{key: k}, nil
}

// MustGenerateKey is GenerateKey with crypto/rand, panicking on failure.
// Entropy exhaustion is not a recoverable condition for callers.
func MustGenerateKey() *PrivateKey {
	k, err := GenerateKey(nil)
	if err != nil {
		panic(err)
	}
	return k
}

// Public returns the public half of the key.
func (p *PrivateKey) Public() *PublicKey {
	return &PublicKey{key: &p.key.PublicKey}
}

// Sign signs the digest d and returns an ASN.1 DER signature.
func (p *PrivateKey) Sign(d Digest) (Signature, error) {
	sig, err := ecdsa.SignASN1(rand.Reader, p.key, d[:])
	if err != nil {
		return nil, fmt.Errorf("hashsig: sign: %w", err)
	}
	return sig, nil
}

// MustSign is Sign panicking on failure; ECDSA signing over a fixed-size
// digest only fails on entropy exhaustion.
func (p *PrivateKey) MustSign(d Digest) Signature {
	sig, err := p.Sign(d)
	if err != nil {
		panic(err)
	}
	return sig
}

// Verify reports whether sig is a valid signature by k over digest d.
func (k *PublicKey) Verify(d Digest, sig Signature) bool {
	if k == nil || k.key == nil {
		return false
	}
	return ecdsa.VerifyASN1(k.key, d[:], sig)
}

// Bytes returns the canonical (uncompressed SEC1) encoding of the key.
func (k *PublicKey) Bytes() []byte {
	return elliptic.Marshal(elliptic.P256(), k.key.X, k.key.Y)
}

// ID returns the digest of the canonical key encoding. Clients and members
// are identified by their key IDs throughout the system.
func (k *PublicKey) ID() Digest {
	return Sum(k.Bytes())
}

// Equal reports whether two public keys are the same point.
func (k *PublicKey) Equal(o *PublicKey) bool {
	if k == nil || o == nil {
		return k == o
	}
	return k.key.Equal(o.key)
}

// ParsePublicKey decodes a canonical public key encoding.
func ParsePublicKey(b []byte) (*PublicKey, error) {
	x, y := elliptic.Unmarshal(elliptic.P256(), b)
	if x == nil {
		return nil, errors.New("hashsig: invalid public key encoding")
	}
	return &PublicKey{key: &ecdsa.PublicKey{Curve: elliptic.P256(), X: x, Y: y}}, nil
}

// GenerateKeyFromSeed deterministically derives a key pair from a seed
// string by hashing the seed into the private scalar. Intended for tests,
// examples, and reproducible benchmarks; real deployments must use
// GenerateKey.
func GenerateKeyFromSeed(seed string) *PrivateKey {
	curve := elliptic.P256()
	order := curve.Params().N
	h := Sum([]byte("iaccf-key-seed:" + seed))
	d := new(big.Int).SetBytes(h[:])
	// Map into [1, order-1].
	d.Mod(d, new(big.Int).Sub(order, big.NewInt(1)))
	d.Add(d, big.NewInt(1))
	k := &ecdsa.PrivateKey{D: d}
	k.PublicKey.Curve = curve
	k.PublicKey.X, k.PublicKey.Y = curve.ScalarBaseMult(d.Bytes())
	return &PrivateKey{key: k}
}
