package hashsig

import (
	"runtime"
	"sync"
)

// VerifyTask is one signature check submitted to a VerifierPool.
type VerifyTask struct {
	Key    *PublicKey
	Digest Digest
	Sig    Signature
}

// VerifierPool verifies signatures in parallel across a fixed set of worker
// goroutines. The paper parallelizes verification of client and replica
// signatures to keep replicas compute-bound on useful work (§3.4); the pool
// is shared by the replica hot path and the auditor's replay.
//
// The zero value is not usable; construct with NewVerifierPool.
type VerifierPool struct {
	workers int
	tasks   chan poolBatch
	wg      sync.WaitGroup
	once    sync.Once
}

type poolBatch struct {
	tasks   []VerifyTask
	results []bool
	from    int
	done    *sync.WaitGroup
}

// DefaultPool returns a process-wide pool sized to GOMAXPROCS *at the time
// of the call*, not at first use: `go test -cpu 1,4` runs and processes
// whose CPU quota changes get a pool matching the current parallelism
// instead of whichever setting happened to be live when the first caller
// arrived. Pools are cached per size; a pool handed out earlier stays valid
// (and is never closed), so callers may hold one across a GOMAXPROCS
// change without risk — they just stop sharing with new callers.
func DefaultPool() *VerifierPool {
	n := runtime.GOMAXPROCS(0)
	defaultPoolsMu.Lock()
	defer defaultPoolsMu.Unlock()
	if defaultPools == nil {
		defaultPools = make(map[int]*VerifierPool)
	}
	p, ok := defaultPools[n]
	if !ok {
		p = NewVerifierPool(n)
		defaultPools[n] = p
	}
	return p
}

var (
	defaultPoolsMu sync.Mutex
	defaultPools   map[int]*VerifierPool
)

// Workers returns the pool's worker count. Callers use it to decide
// whether handing off a small batch is worth the channel round-trip (a
// one-worker pool can never verify in parallel).
func (p *VerifierPool) Workers() int { return p.workers }

// NewVerifierPool creates a pool with the given number of workers.
// workers <= 0 selects GOMAXPROCS.
func NewVerifierPool(workers int) *VerifierPool {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	p := &VerifierPool{
		workers: workers,
		tasks:   make(chan poolBatch, workers*2),
	}
	p.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go p.worker()
	}
	return p
}

func (p *VerifierPool) worker() {
	defer p.wg.Done()
	for b := range p.tasks {
		for i, t := range b.tasks {
			b.results[b.from+i] = t.Key.Verify(t.Digest, t.Sig)
		}
		b.done.Done()
	}
}

// VerifyAll checks every task and returns a parallel slice of results.
func (p *VerifierPool) VerifyAll(tasks []VerifyTask) []bool {
	results := make([]bool, len(tasks))
	if len(tasks) == 0 {
		return results
	}
	// Shard tasks across workers in contiguous chunks.
	chunk := (len(tasks) + p.workers - 1) / p.workers
	var done sync.WaitGroup
	for from := 0; from < len(tasks); from += chunk {
		to := from + chunk
		if to > len(tasks) {
			to = len(tasks)
		}
		done.Add(1)
		p.tasks <- poolBatch{tasks: tasks[from:to], results: results, from: from, done: &done}
	}
	done.Wait()
	return results
}

// AllValid verifies every task and reports whether all signatures check out.
func (p *VerifierPool) AllValid(tasks []VerifyTask) bool {
	for _, ok := range p.VerifyAll(tasks) {
		if !ok {
			return false
		}
	}
	return true
}

// Close shuts the pool down. Pending VerifyAll calls complete first.
func (p *VerifierPool) Close() {
	p.once.Do(func() {
		close(p.tasks)
	})
	p.wg.Wait()
}
