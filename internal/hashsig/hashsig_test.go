package hashsig

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestSumMatchesSumMany(t *testing.T) {
	f := func(a, b, c []byte) bool {
		joined := append(append(append([]byte{}, a...), b...), c...)
		return Sum(joined) == SumMany(a, b, c)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDigestFromBytes(t *testing.T) {
	d := Sum([]byte("hello"))
	got, ok := DigestFromBytes(d.Bytes())
	if !ok || got != d {
		t.Fatalf("round trip failed: ok=%v got=%v want=%v", ok, got, d)
	}
	if _, ok := DigestFromBytes([]byte("short")); ok {
		t.Fatal("DigestFromBytes accepted a short slice")
	}
	if _, ok := DigestFromBytes(make([]byte, DigestSize+1)); ok {
		t.Fatal("DigestFromBytes accepted a long slice")
	}
}

func TestDigestZero(t *testing.T) {
	if !ZeroDigest.IsZero() {
		t.Fatal("ZeroDigest not zero")
	}
	if Sum(nil).IsZero() {
		t.Fatal("Sum(nil) should not be zero")
	}
}

func TestSignVerify(t *testing.T) {
	k := MustGenerateKey()
	d := Sum([]byte("transaction"))
	sig := k.MustSign(d)
	if !k.Public().Verify(d, sig) {
		t.Fatal("valid signature rejected")
	}
	if k.Public().Verify(Sum([]byte("other")), sig) {
		t.Fatal("signature accepted for wrong digest")
	}
	other := MustGenerateKey()
	if other.Public().Verify(d, sig) {
		t.Fatal("signature accepted under wrong key")
	}
}

func TestVerifyCorruptedSignature(t *testing.T) {
	k := MustGenerateKey()
	d := Sum([]byte("m"))
	sig := k.MustSign(d)
	for i := range sig {
		bad := sig.Clone()
		bad[i] ^= 0xff
		if k.Public().Verify(d, bad) {
			t.Fatalf("corrupted signature at byte %d accepted", i)
		}
	}
	if k.Public().Verify(d, nil) {
		t.Fatal("nil signature accepted")
	}
}

func TestPublicKeyRoundTrip(t *testing.T) {
	k := MustGenerateKey().Public()
	parsed, err := ParsePublicKey(k.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if !parsed.Equal(k) {
		t.Fatal("parsed key differs")
	}
	if parsed.ID() != k.ID() {
		t.Fatal("parsed key ID differs")
	}
	if _, err := ParsePublicKey([]byte{0x04, 0x01}); err == nil {
		t.Fatal("garbage key accepted")
	}
	if _, err := ParsePublicKey(nil); err == nil {
		t.Fatal("nil key accepted")
	}
}

func TestNilPublicKeyVerify(t *testing.T) {
	var k *PublicKey
	if k.Verify(Sum([]byte("x")), Signature{1}) {
		t.Fatal("nil key verified a signature")
	}
}

func TestDeterministicKeys(t *testing.T) {
	a := GenerateKeyFromSeed("replica-0")
	b := GenerateKeyFromSeed("replica-0")
	c := GenerateKeyFromSeed("replica-1")
	if !a.Public().Equal(b.Public()) {
		t.Fatal("same seed produced different keys")
	}
	if a.Public().Equal(c.Public()) {
		t.Fatal("different seeds produced the same key")
	}
	d := Sum([]byte("payload"))
	if !b.Public().Verify(d, a.MustSign(d)) {
		t.Fatal("cross verification between same-seed keys failed")
	}
}

func TestNonceCommitment(t *testing.T) {
	n := NewNonce()
	if n.IsZero() {
		t.Fatal("fresh nonce is zero")
	}
	c := n.Commit()
	if !n.Opens(c) {
		t.Fatal("nonce does not open its own commitment")
	}
	var forged Nonce
	copy(forged[:], n[:])
	forged[0] ^= 1
	if forged.Opens(c) {
		t.Fatal("forged nonce opened commitment")
	}
}

func TestNonceFromSeedDeterministic(t *testing.T) {
	if NonceFromSeed("a") != NonceFromSeed("a") {
		t.Fatal("seeded nonce not deterministic")
	}
	if NonceFromSeed("a") == NonceFromSeed("b") {
		t.Fatal("seeded nonces collide")
	}
}

func TestNonceDistinct(t *testing.T) {
	seen := map[Nonce]bool{}
	for i := 0; i < 64; i++ {
		n := NewNonce()
		if seen[n] {
			t.Fatal("duplicate nonce from NewNonce")
		}
		seen[n] = true
	}
}

func TestVerifierPool(t *testing.T) {
	pool := NewVerifierPool(4)
	defer pool.Close()

	keys := make([]*PrivateKey, 10)
	tasks := make([]VerifyTask, 10)
	for i := range keys {
		keys[i] = MustGenerateKey()
		d := Sum([]byte{byte(i)})
		tasks[i] = VerifyTask{Key: keys[i].Public(), Digest: d, Sig: keys[i].MustSign(d)}
	}
	if !pool.AllValid(tasks) {
		t.Fatal("pool rejected valid signatures")
	}

	// Corrupt one task and check it is pinpointed.
	tasks[7].Sig = tasks[7].Sig.Clone()
	tasks[7].Sig[4] ^= 0x55
	results := pool.VerifyAll(tasks)
	for i, ok := range results {
		if (i == 7) == ok {
			t.Fatalf("task %d: got %v", i, ok)
		}
	}
	if pool.AllValid(tasks) {
		t.Fatal("pool accepted a corrupted signature")
	}
}

func TestVerifierPoolEmpty(t *testing.T) {
	pool := NewVerifierPool(0)
	defer pool.Close()
	if got := pool.VerifyAll(nil); len(got) != 0 {
		t.Fatalf("expected empty results, got %d", len(got))
	}
	if !pool.AllValid(nil) {
		t.Fatal("empty task list should be valid")
	}
}

func TestVerifierPoolManyTasks(t *testing.T) {
	pool := NewVerifierPool(3)
	defer pool.Close()
	k := MustGenerateKey()
	d := Sum([]byte("same"))
	sig := k.MustSign(d)
	tasks := make([]VerifyTask, 100)
	for i := range tasks {
		tasks[i] = VerifyTask{Key: k.Public(), Digest: d, Sig: sig}
	}
	if !pool.AllValid(tasks) {
		t.Fatal("pool rejected valid batch")
	}
}

func TestSignatureClone(t *testing.T) {
	k := MustGenerateKey()
	sig := k.MustSign(Sum([]byte("x")))
	cl := sig.Clone()
	if !bytes.Equal(sig, cl) {
		t.Fatal("clone differs")
	}
	cl[0] ^= 1
	if bytes.Equal(sig, cl) {
		t.Fatal("clone aliases original")
	}
}
