// Package hashsig provides the cryptographic substrate for IA-CCF: SHA-256
// digests, ECDSA P-256 signatures, the nonce-commitment scheme used by
// L-PBFT, and a parallel verification pool.
//
// The paper's implementation uses secp256k1 and EverCrypt; this package
// substitutes the Go standard library's P-256 and crypto/sha256, which have
// the same asymptotics (see DESIGN.md §2).
package hashsig

import (
	"crypto/sha256"
	"encoding/hex"
	"hash"
)

// DigestSize is the size in bytes of all digests used by IA-CCF.
const DigestSize = sha256.Size

// Digest is a SHA-256 hash value. Ledger entries, protocol messages and
// Merkle tree nodes are all identified by Digests.
type Digest [DigestSize]byte

// ZeroDigest is the all-zero digest, used as a placeholder for "no value"
// (for example the checkpoint digest before the first checkpoint exists).
var ZeroDigest Digest

// Sum returns the SHA-256 digest of data.
func Sum(data []byte) Digest {
	return sha256.Sum256(data)
}

// NewHasher returns a streaming hasher whose Sum output is a Digest's bytes.
func NewHasher() hash.Hash { return sha256.New() }

// SumMany returns the SHA-256 digest of the concatenation of the given
// byte slices without materializing the concatenation.
func SumMany(parts ...[]byte) Digest {
	h := sha256.New()
	for _, p := range parts {
		h.Write(p)
	}
	var d Digest
	h.Sum(d[:0])
	return d
}

// IsZero reports whether d is the zero digest.
func (d Digest) IsZero() bool { return d == ZeroDigest }

// String returns the first 8 bytes of the digest in hex, for logs.
func (d Digest) String() string { return hex.EncodeToString(d[:8]) }

// Hex returns the full digest in hex.
func (d Digest) Hex() string { return hex.EncodeToString(d[:]) }

// Bytes returns the digest as a freshly allocated byte slice.
func (d Digest) Bytes() []byte {
	out := make([]byte, DigestSize)
	copy(out, d[:])
	return out
}

// DigestFromBytes converts a byte slice to a Digest. It returns false if the
// slice is not exactly DigestSize bytes.
func DigestFromBytes(b []byte) (Digest, bool) {
	var d Digest
	if len(b) != DigestSize {
		return d, false
	}
	copy(d[:], b)
	return d, true
}
