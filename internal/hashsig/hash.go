// Package hashsig provides the cryptographic substrate for IA-CCF: SHA-256
// digests, ECDSA P-256 signatures, the nonce-commitment scheme used by
// L-PBFT, and a parallel verification pool.
//
// The paper's implementation uses secp256k1 and EverCrypt; this package
// substitutes the Go standard library's P-256 and crypto/sha256, which have
// the same asymptotics (see DESIGN.md §2).
package hashsig

import (
	"crypto/sha256"
	"encoding/hex"
	"hash"
	"sync"

	"iaccf/internal/pool"
)

// DigestSize is the size in bytes of all digests used by IA-CCF.
const DigestSize = sha256.Size

// Digest is a SHA-256 hash value. Ledger entries, protocol messages and
// Merkle tree nodes are all identified by Digests.
type Digest [DigestSize]byte

// ZeroDigest is the all-zero digest, used as a placeholder for "no value"
// (for example the checkpoint digest before the first checkpoint exists).
var ZeroDigest Digest

// Sum returns the SHA-256 digest of data.
func Sum(data []byte) Digest {
	return sha256.Sum256(data)
}

// NewHasher returns a streaming hasher whose Sum output is a Digest's bytes.
func NewHasher() hash.Hash { return sha256.New() }

// hasherPool recycles streaming SHA-256 states for BorrowHasher. A sha256
// state is a heap allocation per NewHasher call; digest-heavy paths (shard
// checkpoint digests, certificate signing digests) borrow instead.
var hasherPool = sync.Pool{New: func() any { return sha256.New() }}

// BorrowHasher returns a reset streaming hasher from a process-wide pool.
// Ownership rule: the hasher is the caller's until ReturnHasher; it must
// not be retained — directly or inside any returned value — after that.
func BorrowHasher() hash.Hash {
	h := hasherPool.Get().(hash.Hash)
	h.Reset()
	return h
}

// ReturnHasher gives a borrowed hasher back to the pool.
func ReturnHasher(h hash.Hash) { hasherPool.Put(h) }

// sumManyStack is the assembly-buffer size under which SumMany runs with
// zero heap allocations. 256 bytes covers every fixed-shape preimage in the
// system (domain prefix + a few digests + a signature).
const sumManyStack = 256

// sumManyScratch backs SumMany's over-stack-size path.
var sumManyScratch pool.Bytes

// SumMany returns the SHA-256 digest of the concatenation of the given
// byte slices without materializing the concatenation on the heap: small
// totals concatenate into a stack buffer, larger ones into pooled scratch.
// Neither path retains any part slice past the call.
func SumMany(parts ...[]byte) Digest {
	total := 0
	for _, p := range parts {
		total += len(p)
	}
	if total <= sumManyStack {
		var buf [sumManyStack]byte
		b := buf[:0]
		for _, p := range parts {
			b = append(b, p...)
		}
		return sha256.Sum256(b)
	}
	b := sumManyScratch.Get(total)
	for _, p := range parts {
		b = append(b, p...)
	}
	d := Digest(sha256.Sum256(b))
	sumManyScratch.Put(b)
	return d
}

// IsZero reports whether d is the zero digest.
func (d Digest) IsZero() bool { return d == ZeroDigest }

// String returns the first 8 bytes of the digest in hex, for logs.
func (d Digest) String() string { return hex.EncodeToString(d[:8]) }

// Hex returns the full digest in hex.
func (d Digest) Hex() string { return hex.EncodeToString(d[:]) }

// Bytes returns the digest as a freshly allocated byte slice.
func (d Digest) Bytes() []byte {
	out := make([]byte, DigestSize)
	copy(out, d[:])
	return out
}

// DigestFromBytes converts a byte slice to a Digest. It returns false if the
// slice is not exactly DigestSize bytes.
func DigestFromBytes(b []byte) (Digest, bool) {
	var d Digest
	if len(b) != DigestSize {
		return d, false
	}
	copy(d[:], b)
	return d, true
}
