package consensus

import (
	"iaccf/internal/hashsig"
)

// memoKey identifies one (digest, signature, key) verification so a
// successful check is never repeated. All three components are bound: a
// digest alone would let a valid signature by one key vouch for a
// different signature (or a different key) over the same digest — exactly
// the aliasing TestHeaderSigCacheCrossKeyProbe probes for. Peer key IDs
// are precomputed at construction: recomputing the point marshal + hash
// per lookup would tax every memo hit in the verification hot path.
func (r *Replica) memoKey(t hashsig.VerifyTask) hashsig.Digest {
	id, ok := r.peerID[t.Key]
	if !ok {
		id = t.Key.ID()
	}
	return hashsig.SumMany(t.Digest[:], t.Sig, id[:])
}

// maxSigCache bounds the verified-signature memo across both generations;
// eviction only re-imposes verification costs on the buffered-message
// drain, never correctness.
const maxSigCache = 1 << 16

// sigMemo is a two-generation set of verified-signature memo keys. Entries
// land in cur; when cur fills its half of the budget, cur becomes prev and
// a fresh cur starts, discarding the old prev. A hit in prev promotes the
// entry back into cur, so signatures still circulating (re-sent prepares,
// view-change evidence) survive rotations while one-shot traffic ages out
// within two generations — unlike the previous drop-everything reset, which
// threw away the hot set alongside the cold on every overflow.
type sigMemo struct {
	cur, prev map[hashsig.Digest]bool
}

func newSigMemo() *sigMemo {
	return &sigMemo{cur: make(map[hashsig.Digest]bool)}
}

// hit reports whether k was memoized, refreshing its generation on a
// prev-hit so repeated lookups keep it resident.
func (m *sigMemo) hit(k hashsig.Digest) bool {
	if m.cur[k] {
		return true
	}
	if m.prev[k] {
		m.add(k)
		return true
	}
	return false
}

// add records a successful verification. Only successes are cached: a
// failure says nothing about a different signature from the same sender.
func (m *sigMemo) add(k hashsig.Digest) {
	if len(m.cur) >= maxSigCache/2 {
		m.prev = m.cur
		m.cur = make(map[hashsig.Digest]bool)
	}
	m.cur[k] = true
}

// len reports resident entries across both generations (prev and cur are
// disjoint by construction: add never inserts a key already counted in cur,
// and rotation moves the whole map).
func (m *sigMemo) len() int { return len(m.cur) + len(m.prev) }

func (r *Replica) cacheSig(k hashsig.Digest) { r.sigOK.add(k) }

// verifyTasks checks every task, consulting the memo first and routing the
// remainder through the verifier pool (paper §3.4: protocol signature
// verification is pooled so replicas stay compute-bound on useful work).
// Single leftovers — and every task when the pool cannot actually run
// checks concurrently — verify inline: the pool round-trip only pays for
// itself when there is parallelism to buy.
func (r *Replica) verifyTasks(tasks []hashsig.VerifyTask) bool {
	pending := tasks[:0:0]
	var keys []hashsig.Digest
	for _, t := range tasks {
		k := r.memoKey(t)
		if r.sigOK.hit(k) {
			continue
		}
		pending = append(pending, t)
		keys = append(keys, k)
	}
	if len(pending) == 0 {
		return true
	}
	if len(pending) == 1 || r.pool == nil || r.pool.Workers() <= 1 {
		ok := true
		for i, t := range pending {
			if t.Key.Verify(t.Digest, t.Sig) {
				r.cacheSig(keys[i])
			} else {
				ok = false
			}
		}
		return ok
	}
	results := r.pool.VerifyAll(pending)
	ok := true
	for i, res := range results {
		if res {
			r.cacheSig(keys[i])
		} else {
			ok = false
		}
	}
	return ok
}

// proposalTasks appends the two signature checks a proposal owes (the
// proposal signature and the embedded header signature, both by the
// claimed primary) when the primary index is in range.
func (r *Replica) proposalTasks(p *Proposal, tasks []hashsig.VerifyTask) []hashsig.VerifyTask {
	if int(p.Primary) >= r.n {
		return tasks
	}
	pub := r.cfg.Peers[p.Primary]
	tasks = append(tasks, hashsig.VerifyTask{Key: pub, Digest: p.SigningDigest(), Sig: p.Sig})
	tasks = append(tasks, hashsig.VerifyTask{Key: pub, Digest: p.Header.SigningDigest(), Sig: p.Header.Sig})
	return tasks
}

// prepareTasks appends a prepare's three checks: the carried proposal's two
// plus the backup's own signature.
func (r *Replica) prepareTasks(p *Prepare, tasks []hashsig.VerifyTask) []hashsig.VerifyTask {
	tasks = r.proposalTasks(&p.Prop, tasks)
	if int(p.Replica) < r.n {
		tasks = append(tasks, hashsig.VerifyTask{Key: r.cfg.Peers[p.Replica], Digest: p.SigningDigest(), Sig: p.Sig})
	}
	return tasks
}

// messageTasks appends every signature check message m will require when
// handled, using the identities the message itself claims (all bounds
// checked; invalid claims simply contribute no task and fail later in the
// serial path).
func (r *Replica) messageTasks(m Message, tasks []hashsig.VerifyTask) []hashsig.VerifyTask {
	switch msg := m.(type) {
	case *PrePrepare:
		tasks = r.proposalTasks(&msg.Prop, tasks)
	case *Prepare:
		tasks = r.prepareTasks(msg, tasks)
	case *ViewChange:
		tasks = r.viewChangeMsgTasks(msg, tasks)
	case *NewView:
		if int(msg.Replica) < r.n {
			tasks = append(tasks, hashsig.VerifyTask{
				Key: r.cfg.Peers[msg.Replica], Digest: msg.SigningDigest(), Sig: msg.Sig})
		}
		for i := range msg.VCs {
			tasks = r.viewChangeMsgTasks(&msg.VCs[i], tasks)
		}
	}
	return tasks
}

func (r *Replica) viewChangeMsgTasks(vc *ViewChange, tasks []hashsig.VerifyTask) []hashsig.VerifyTask {
	if int(vc.Replica) < r.n {
		tasks = append(tasks, hashsig.VerifyTask{
			Key: r.cfg.Peers[vc.Replica], Digest: vc.SigningDigest(), Sig: vc.Sig})
	}
	if vc.CommitProof != nil {
		if ts, ok := vc.CommitProof.structure(r.cfg.Peers, r.quorum); ok {
			tasks = append(tasks, ts...)
		}
	}
	for i := range vc.Prepared {
		claim := &vc.Prepared[i]
		tasks = r.proposalTasks(&claim.PP.Prop, tasks)
		for j := range claim.Prepares {
			p := &claim.Prepares[j]
			if int(p.Replica) < r.n {
				tasks = append(tasks, hashsig.VerifyTask{
					Key: r.cfg.Peers[p.Replica], Digest: p.SigningDigest(), Sig: p.Sig})
			}
		}
	}
	return tasks
}

// prewarm batch-verifies every signature the given messages will need and
// seeds the memo with the successes, so the serial Handle pass afterwards
// hits the memo instead of verifying one signature at a time. Failures are
// not recorded; the serial path re-verifies and rejects them with a proper
// error. With a proposal window above one there are several instances'
// worth of traffic in flight at once, which is what gives the pool real
// batches to spread across workers.
func (r *Replica) prewarm(msgs []Message) {
	if r.pool == nil || r.pool.Workers() <= 1 {
		return // nothing to parallelize; the serial path memoizes as it goes
	}
	var tasks []hashsig.VerifyTask
	var keys []hashsig.Digest
	seen := make(map[hashsig.Digest]bool)
	for _, m := range msgs {
		for _, t := range r.messageTasks(m, nil) {
			k := r.memoKey(t)
			if seen[k] || r.sigOK.hit(k) {
				continue
			}
			seen[k] = true
			tasks = append(tasks, t)
			keys = append(keys, k)
		}
	}
	if len(tasks) < 2 {
		return
	}
	for i, res := range r.pool.VerifyAll(tasks) {
		if res {
			r.cacheSig(keys[i])
		}
	}
}

// HandleAll processes a batch of messages: one pooled signature prewarm
// over everything the batch carries, then the usual serial state-machine
// pass. Output envelopes are concatenated in order; per-message errors are
// dropped (invalid messages are the sender's fault and change no state), so
// callers that care about individual verdicts should use Handle.
func (r *Replica) HandleAll(msgs []Message) []Outbound {
	r.prewarm(msgs)
	var out []Outbound
	for _, m := range msgs {
		o, _ := r.Handle(m)
		out = append(out, o...)
	}
	return out
}
