package consensus

import (
	"errors"
	"testing"

	"iaccf/internal/hashsig"
	"iaccf/internal/ledger"
)

// deliver hands each message to every replica once (no recursive flood)
// and returns everything they emitted in response.
func (c *cluster) deliver(msgs []Message) []Message {
	c.t.Helper()
	var out []Message
	for _, m := range msgs {
		for _, r := range c.replicas {
			o, _ := r.Handle(m)
			out = append(out, outMsgs(o)...)
		}
	}
	return out
}

// TestWindowOutOfOrderQuorums fills the whole proposal window, completes
// the prepare/commit quorums for the LATER instances first, and checks
// that nothing commits until the head of the window completes — then the
// buffered quorums cascade, strictly in order.
func TestWindowOutOfOrderQuorums(t *testing.T) {
	c := newCluster(t, 4, 1)
	author := hashsig.Sum([]byte("client"))

	pps := make([]*PrePrepare, DefaultWindow)
	for w := range pps {
		pp, _, err := c.replicas[0].Propose(reqs(author, uint64(100*(w+1)), 2))
		if err != nil {
			t.Fatalf("propose %d: %v", w+1, err)
		}
		pps[w] = pp
	}
	// Pre-prepares must flow in order (execution is sequential), and each
	// backup answers with its prepare.
	prepares := make([][]Message, DefaultWindow)
	for w, pp := range pps {
		for _, id := range []int{1, 2, 3} {
			out, err := c.replicas[id].Handle(pp)
			if err != nil {
				t.Fatalf("backup %d pp %d: %v", id, w+1, err)
			}
			prepares[w] = append(prepares[w], outMsgs(out)...)
		}
	}
	for _, r := range c.replicas {
		if got := r.InFlight(); got != DefaultWindow {
			t.Fatalf("replica %d has %d in flight, want %d", r.ID(), got, DefaultWindow)
		}
	}
	// Quorums complete back to front: seqs 4, 3, 2 fully prepare and
	// reveal their nonces while seq 1's prepares are still withheld.
	for w := DefaultWindow - 1; w >= 1; w-- {
		commits := c.deliver(prepares[w])
		c.deliver(commits)
	}
	for _, r := range c.replicas {
		if got := r.Committed(); got != 0 {
			t.Fatalf("replica %d committed %d with the window head incomplete", r.ID(), got)
		}
	}
	// The head completes: everything buffered behind it commits in order.
	commits := c.deliver(prepares[0])
	c.deliver(commits)
	c.assertAgreement(uint64(DefaultWindow), 0, 1, 2, 3)
}

// TestViewChangePartiallyCommittedWindow drives a view change against a
// window in three distinct states at once: seq 1 committed, seq 2 prepared
// but not committed, seq 3 pre-prepared on a single backup. The new
// primary must re-propose exactly the prepared batch (byte-identical
// commitments), the committed boundary must survive, and the unprepared
// tail must be discarded and its slot reusable.
func TestViewChangePartiallyCommittedWindow(t *testing.T) {
	c := newCluster(t, 4, 1)
	author := hashsig.Sum([]byte("client"))

	var pps []*PrePrepare
	for w := 0; w < 3; w++ {
		pp, _, err := c.replicas[0].Propose(reqs(author, uint64(100*(w+1)), 2))
		if err != nil {
			t.Fatal(err)
		}
		pps = append(pps, pp)
	}
	// Seq 1 commits everywhere.
	var prep1 []Message
	for _, id := range []int{1, 2, 3} {
		out, err := c.replicas[id].Handle(pps[0])
		if err != nil {
			t.Fatal(err)
		}
		prep1 = append(prep1, outMsgs(out)...)
	}
	c.deliver(c.deliver(prep1))
	// Live history roots legitimately diverge here — the primary holds
	// seqs 2 and 3 speculatively — so only the committed boundary is
	// compared.
	for _, r := range c.replicas {
		if got := r.Committed(); got != 1 {
			t.Fatalf("replica %d committed %d, want 1", r.ID(), got)
		}
	}
	// Seq 2 prepares everywhere; the commit reveals are withheld.
	var prep2 []Message
	for _, id := range []int{1, 2, 3} {
		out, err := c.replicas[id].Handle(pps[1])
		if err != nil {
			t.Fatal(err)
		}
		prep2 = append(prep2, outMsgs(out)...)
	}
	c.deliver(prep2) // commits dropped
	// Seq 3 reaches only replica 1.
	if _, err := c.replicas[1].Handle(pps[2]); err != nil {
		t.Fatal(err)
	}

	wantSeq2 := pps[1].Prop.Header.SigningDigest()
	for _, id := range []int{1, 2, 3} {
		c.queue = append(c.queue, outMsgs(c.replicas[id].OnTimeout())...)
	}
	c.flood(0) // old primary stays silent

	// The quorum {1,2,3} lands in view 1 with the prepared seq 2
	// re-committed byte-identically and the unprepared seq 3 gone.
	c.assertAgreement(2, 1, 2, 3)
	for _, id := range []int{1, 2, 3} {
		b := c.replicas[id].Ledger().Batches()
		if len(b) != 2 || b[1].Header.SigningDigest() != wantSeq2 {
			t.Fatalf("replica %d did not re-commit the prepared batch byte-identically", id)
		}
	}
	// The window is clean: the new primary proposes fresh batches for the
	// freed slots and the quorum commits them.
	if !c.replicas[1].IsPrimary() || !c.replicas[1].CanPropose() {
		t.Fatal("new primary cannot continue after the partial-window view change")
	}
	c.propose(1, reqs(author, 400, 2))
	c.flood(0)
	c.assertAgreement(3, 1, 2, 3)
}

// TestEquivocationNonHeadInstance equivocates on a MIDDLE instance of a
// full window (seq 2 of 1..4): the conflicting proposal for an already
// open, non-head slot must still produce verifiable blame naming the
// primary's key.
func TestEquivocationNonHeadInstance(t *testing.T) {
	c := newCluster(t, 4, 1)
	author := hashsig.Sum([]byte("client"))

	pps := make([]*PrePrepare, DefaultWindow)
	for w := range pps {
		pp, _, err := c.replicas[0].Propose(reqs(author, uint64(100*(w+1)), 2))
		if err != nil {
			t.Fatal(err)
		}
		pps[w] = pp
	}
	for _, pp := range pps {
		if _, err := c.replicas[1].Handle(pp); err != nil {
			t.Fatal(err)
		}
	}

	// Forge the primary's conflicting batch for seq 2 on a scratch ledger
	// holding the same key (the equivocator re-executes divergent content;
	// Lemma 1 makes the ledger a willing accomplice).
	led, err := ledger.New(ledger.Config{Key: c.keys[0], App: ledger.KVApp{}, CheckpointEvery: 2, Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := led.ExecuteBatch(reqs(author, 100, 2)); err != nil {
		t.Fatal(err)
	}
	evil, _, err := led.ExecuteBatch(reqs(author, 666, 2))
	if err != nil {
		t.Fatal(err)
	}
	nonce := hashsig.NewNonce()
	prop := Proposal{View: 0, Primary: 0, Header: evil.Header, NonceCommit: nonce.Commit()}
	prop.Sig = c.keys[0].MustSign(prop.SigningDigest())
	evilPP := &PrePrepare{Prop: prop, Entries: evil.Entries}

	if _, err := c.replicas[1].Handle(evilPP); !errors.Is(err, ErrInvalid) {
		t.Fatalf("conflicting non-head proposal accepted: %v", err)
	}
	ev := c.replicas[1].Evidence()
	if len(ev) != 1 {
		t.Fatalf("got %d blame objects, want 1", len(ev))
	}
	bl := ev[0]
	if bl.Culprit != c.keys[0].Public().ID() || bl.Seq != 2 || bl.View != 0 {
		t.Fatalf("blame %v does not name the primary's key at view 0 seq 2", bl)
	}
	if !bl.Verify(c.keys[0].Public()) {
		t.Fatal("blame evidence does not verify offline")
	}
	// The honest head and tail instances are untouched: the window still
	// holds all four, and completing them commits normally.
	if got := c.replicas[1].InFlight(); got != DefaultWindow {
		t.Fatalf("equivocation disturbed the window: %d in flight", got)
	}
}

// TestHandleAllMatchesHandle drives two identical clusters through the
// same pipelined workload — one message at a time via Handle, batched via
// HandleAll — and demands identical outcomes. HandleAll's pooled prewarm
// and error-dropping must be pure optimizations: any divergence in
// committed state, history, or evidence is a bug in the batch path.
func TestHandleAllMatchesHandle(t *testing.T) {
	a := newCluster(t, 4, 1) // per-message Handle
	b := newCluster(t, 4, 1) // batched HandleAll (same seeded keys)
	author := hashsig.Sum([]byte("client"))

	for round := 0; round < 2; round++ {
		var aMsgs, bMsgs []Message
		for w := 0; w < DefaultWindow; w++ {
			seq := uint64(round*DefaultWindow + w + 1)
			rs := reqs(author, 100*seq, 2)
			ppA, _, err := a.replicas[0].Propose(rs)
			if err != nil {
				t.Fatal(err)
			}
			ppB, _, err := b.replicas[0].Propose(rs)
			if err != nil {
				t.Fatal(err)
			}
			if ppA.Prop.Header.SigningDigest() != ppB.Prop.Header.SigningDigest() {
				t.Fatal("clusters diverged before delivery")
			}
			aMsgs = append(aMsgs, ppA)
			bMsgs = append(bMsgs, ppB)
		}
		// A malformed message rides along: Handle reports it, HandleAll
		// drops it — neither may change state.
		bad := &Commit{View: 0, Replica: 99, Seq: 1}
		aMsgs = append(aMsgs, bad)
		bMsgs = append(bMsgs, bad)

		for len(aMsgs) > 0 {
			m := aMsgs[0]
			aMsgs = aMsgs[1:]
			for _, r := range a.replicas {
				out, _ := r.Handle(m)
				aMsgs = append(aMsgs, outMsgs(out)...)
			}
		}
		for len(bMsgs) > 0 {
			var next []Message
			for _, r := range b.replicas {
				next = append(next, outMsgs(r.HandleAll(bMsgs))...)
			}
			bMsgs = next
		}
	}
	for i := range a.replicas {
		ra, rb := a.replicas[i], b.replicas[i]
		if ra.Committed() != rb.Committed() {
			t.Fatalf("replica %d: Handle committed %d, HandleAll %d", i, ra.Committed(), rb.Committed())
		}
		if ra.Ledger().HistRoot() != rb.Ledger().HistRoot() ||
			ra.Ledger().StateDigest() != rb.Ledger().StateDigest() {
			t.Fatalf("replica %d: batch path reached a different ledger state", i)
		}
		if len(ra.Evidence()) != 0 || len(rb.Evidence()) != 0 {
			t.Fatalf("replica %d: honest run produced evidence", i)
		}
	}
	if got := a.replicas[0].Committed(); got != uint64(2*DefaultWindow) {
		t.Fatalf("workload incomplete: committed %d", got)
	}
}
