package consensus

import (
	"bytes"
	"errors"
	"fmt"
	"testing"

	"iaccf/internal/hashsig"
	"iaccf/internal/ledger"
)

// cluster is a set of replicas plus a flood-delivery helper: every outbound
// message is delivered to every replica in FIFO order until quiescence.
// Flood delivery is deliberately a superset of envelope routing — handlers
// ignore misaddressed unicast traffic — so the helper strips the Outbound
// addressing; the sim harness is where Dest is honored and asserted.
type cluster struct {
	t        *testing.T
	replicas []*Replica
	keys     []*hashsig.PrivateKey
	queue    []Message
}

// outMsgs strips the addressing off a batch of envelopes for flood-style
// delivery.
func outMsgs(outs []Outbound) []Message {
	msgs := make([]Message, 0, len(outs))
	for _, o := range outs {
		msgs = append(msgs, o.Msg)
	}
	return msgs
}

func newCluster(t *testing.T, n int, shards uint32) *cluster {
	t.Helper()
	keys := make([]*hashsig.PrivateKey, n)
	peers := make([]*hashsig.PublicKey, n)
	for i := range keys {
		keys[i] = hashsig.GenerateKeyFromSeed(fmt.Sprintf("consensus-test-%d", i))
		peers[i] = keys[i].Public()
	}
	c := &cluster{t: t, keys: keys}
	for i := 0; i < n; i++ {
		r, err := New(Config{
			ID:              ReplicaID(i),
			Key:             keys[i],
			Peers:           peers,
			App:             ledger.KVApp{},
			CheckpointEvery: 2,
			Shards:          shards,
		})
		if err != nil {
			t.Fatalf("New replica %d: %v", i, err)
		}
		c.replicas = append(c.replicas, r)
	}
	return c
}

// flood broadcasts queued messages to every replica until nothing new is
// produced. Skip suppresses delivery to the given replica IDs.
func (c *cluster) flood(skip ...ReplicaID) {
	skipped := map[ReplicaID]bool{}
	for _, id := range skip {
		skipped[id] = true
	}
	for len(c.queue) > 0 {
		m := c.queue[0]
		c.queue = c.queue[1:]
		for _, r := range c.replicas {
			if skipped[r.ID()] {
				continue
			}
			out, _ := r.Handle(m)
			c.queue = append(c.queue, outMsgs(out)...)
		}
	}
}

func reqs(author hashsig.Digest, base uint64, n int) []ledger.Request {
	out := make([]ledger.Request, n)
	for i := range out {
		out[i] = ledger.Request{
			Author: author,
			ReqNo:  base + uint64(i),
			Body: ledger.EncodeOps([]ledger.Op{
				{Key: fmt.Sprintf("k%d", base+uint64(i)), Val: []byte(fmt.Sprintf("v%d", i))},
			}),
		}
	}
	return out
}

func (c *cluster) propose(primary int, rs []ledger.Request) {
	c.t.Helper()
	pp, receipts, err := c.replicas[primary].Propose(rs)
	if err != nil {
		c.t.Fatalf("Propose: %v", err)
	}
	if len(receipts) != len(rs) {
		c.t.Fatalf("got %d receipts for %d requests", len(receipts), len(rs))
	}
	c.queue = append(c.queue, pp)
}

// assertAgreement checks every listed replica committed seq with identical
// (¯M, d_C, state digest).
func (c *cluster) assertAgreement(seq uint64, ids ...int) {
	c.t.Helper()
	ref := c.replicas[ids[0]]
	if ref.Committed() != seq {
		c.t.Fatalf("replica %d committed %d, want %d", ids[0], ref.Committed(), seq)
	}
	for _, id := range ids[1:] {
		r := c.replicas[id]
		if r.Committed() != seq {
			c.t.Fatalf("replica %d committed %d, want %d", id, r.Committed(), seq)
		}
		if r.Ledger().HistRoot() != ref.Ledger().HistRoot() {
			c.t.Fatalf("replica %d history root diverges", id)
		}
		if r.Ledger().StateDigest() != ref.Ledger().StateDigest() {
			c.t.Fatalf("replica %d state digest diverges", id)
		}
	}
}

func TestHappyPathCommit(t *testing.T) {
	c := newCluster(t, 4, 1)
	author := hashsig.Sum([]byte("client"))
	for seq := uint64(1); seq <= 5; seq++ {
		c.propose(0, reqs(author, seq*10, 3))
		c.flood()
		c.assertAgreement(seq, 0, 1, 2, 3)
	}
	for _, r := range c.replicas {
		if len(r.Evidence()) != 0 {
			t.Fatalf("replica %d collected blame in an honest run", r.ID())
		}
		// Bounded retention: after committing 5 with CheckpointEvery=2 and
		// window 4, the commit path prunes below min(ckpt 4 + 1, 5 - 4 + 1),
		// so batch 1 is gone and seqs 2..5 remain.
		if got := len(r.Ledger().Batches()); got != 4 {
			t.Fatalf("replica %d retains %d batches, want 4", r.ID(), got)
		}
		if got := r.Ledger().FirstRetainedSeq(); got != 2 {
			t.Fatalf("replica %d first retained seq %d, want 2", r.ID(), got)
		}
	}
}

func TestCommitRequiresQuorum(t *testing.T) {
	c := newCluster(t, 4, 1)
	author := hashsig.Sum([]byte("client"))
	// Two replicas never hear anything: 2 participants < 2f+1 = 3.
	c.propose(0, reqs(author, 10, 2))
	c.flood(2, 3)
	if c.replicas[0].Committed() != 0 || c.replicas[1].Committed() != 0 {
		t.Fatal("committed without a quorum")
	}
}

func TestLaggardCatchesUpFromBroadcasts(t *testing.T) {
	c := newCluster(t, 4, 1)
	author := hashsig.Sum([]byte("client"))
	// Replica 3 misses two full rounds; the traffic is redelivered later
	// (the sim models drops as delayed retransmission).
	var held []Message
	for seq := uint64(1); seq <= 2; seq++ {
		pp, _, err := c.replicas[0].Propose(reqs(author, seq*10, 2))
		if err != nil {
			t.Fatalf("Propose: %v", err)
		}
		c.queue = append(c.queue, pp)
		held = append(held, pp)
		for len(c.queue) > 0 {
			m := c.queue[0]
			c.queue = c.queue[1:]
			for _, r := range c.replicas[:3] {
				out, _ := r.Handle(m)
				c.queue = append(c.queue, outMsgs(out)...)
				held = append(held, outMsgs(out)...)
			}
		}
	}
	c.assertAgreement(2, 0, 1, 2)
	if c.replicas[3].Committed() != 0 {
		t.Fatal("isolated replica advanced")
	}
	for _, m := range held {
		if out, _ := c.replicas[3].Handle(m); len(out) > 0 {
			c.queue = append(c.queue, outMsgs(out)...)
		}
	}
	c.flood()
	c.assertAgreement(2, 0, 1, 2, 3)
}

func TestEquivocatingPrimaryYieldsBlame(t *testing.T) {
	c := newCluster(t, 4, 1)
	author := hashsig.Sum([]byte("client"))
	primary := c.replicas[0]

	// The primary signs two different batches for seq 1 by executing one,
	// rolling back (Lemma 1 makes this cheap), and executing the other.
	batchA, _, err := primary.Ledger().ExecuteBatch(reqs(author, 10, 2))
	if err != nil {
		t.Fatal(err)
	}
	if err := primary.Ledger().RollbackTo(1); err != nil {
		t.Fatal(err)
	}
	batchB, _, err := primary.Ledger().ExecuteBatch(reqs(author, 99, 2))
	if err != nil {
		t.Fatal(err)
	}
	mk := func(b *ledger.Batch) *PrePrepare {
		nonce := hashsig.NewNonce()
		prop := Proposal{View: 0, Primary: 0, Header: b.Header, NonceCommit: nonce.Commit()}
		prop.Sig = c.keys[0].MustSign(prop.SigningDigest())
		return &PrePrepare{Prop: prop, Entries: b.Entries}
	}
	ppA, ppB := mk(batchA), mk(batchB)

	outA, err := c.replicas[1].Handle(ppA)
	if err != nil {
		t.Fatalf("replica 1 rejects honest-looking pre-prepare: %v", err)
	}
	if _, err := c.replicas[2].Handle(ppB); err != nil {
		t.Fatalf("replica 2 rejects honest-looking pre-prepare: %v", err)
	}
	// Replica 2 now receives replica 1's prepare, which carries the
	// conflicting primary-signed proposal: blame must appear.
	for _, o := range outA {
		c.replicas[2].Handle(o.Msg)
	}
	ev := c.replicas[2].Evidence()
	if len(ev) != 1 {
		t.Fatalf("replica 2 holds %d blame objects, want 1", len(ev))
	}
	bl := ev[0]
	if bl.Culprit != c.keys[0].Public().ID() {
		t.Fatalf("blame names %s, want the primary's key", bl.Culprit)
	}
	if !bl.Verify(c.keys[0].Public()) {
		t.Fatal("blame evidence does not verify against the culprit key")
	}
	if bl.Verify(c.keys[1].Public()) {
		t.Fatal("blame evidence verifies against an innocent key")
	}
	if bl.View != 0 || bl.Seq != 1 {
		t.Fatalf("blame locates (view %d, seq %d), want (0, 1)", bl.View, bl.Seq)
	}
}

func TestBlameVerifyRejectsForgery(t *testing.T) {
	key := hashsig.GenerateKeyFromSeed("blame-forge")
	other := hashsig.GenerateKeyFromSeed("blame-other")
	mk := func(seq uint64, tag byte) Proposal {
		p := Proposal{
			View:        3,
			Primary:     3,
			Header:      ledger.BatchHeader{Seq: seq, GSize: uint64(tag), Shards: 1},
			NonceCommit: hashsig.Sum([]byte{tag}),
		}
		p.Header.Sig = key.MustSign(p.Header.SigningDigest())
		p.Sig = key.MustSign(p.SigningDigest())
		return p
	}
	a, b := mk(7, 1), mk(7, 2)
	bl := blameFrom(&a, &b, key.Public())
	if bl == nil || !bl.Verify(key.Public()) {
		t.Fatal("genuine conflict did not produce verifiable blame")
	}
	if blameFrom(&a, &a, key.Public()) != nil {
		t.Fatal("identical proposals produced blame")
	}
	cross := mk(8, 3)
	if blameFrom(&a, &cross, key.Public()) != nil {
		t.Fatal("different sequence numbers produced blame")
	}
	if bl.Verify(other.Public()) {
		t.Fatal("blame verified against the wrong key")
	}
	tampered := *bl
	tampered.B.Header.GSize = 99
	if tampered.Verify(key.Public()) {
		t.Fatal("tampered blame verified")
	}
}

func TestViewChangeRecoversLiveness(t *testing.T) {
	c := newCluster(t, 4, 1)
	author := hashsig.Sum([]byte("client"))

	// Commit one batch normally so the view change has committed state to
	// certify.
	c.propose(0, reqs(author, 10, 2))
	c.flood()
	c.assertAgreement(1, 0, 1, 2, 3)

	// The primary stalls: it proposes seq 2 but the pre-prepare reaches
	// only replica 1, then everyone times out.
	pp, _, err := c.replicas[0].Propose(reqs(author, 20, 2))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.replicas[1].Handle(pp); err != nil {
		t.Fatal(err)
	}
	for _, id := range []int{1, 2, 3} {
		c.queue = append(c.queue, outMsgs(c.replicas[id].OnTimeout())...)
	}
	c.flood(0) // old primary stays silent
	for _, id := range []int{1, 2, 3} {
		if got := c.replicas[id].View(); got != 1 {
			t.Fatalf("replica %d in view %d, want 1", id, got)
		}
	}
	// The new primary (replica 1) proposes in view 1 and the quorum
	// {1,2,3} commits without the old primary.
	if !c.replicas[1].IsPrimary() {
		t.Fatal("replica 1 should lead view 1")
	}
	if !c.replicas[1].Idle() {
		t.Fatal("new primary not idle after view change")
	}
	c.propose(1, reqs(author, 30, 2))
	c.flood(0)
	c.assertAgreement(2, 1, 2, 3)
}

func TestPreparedBatchSurvivesViewChange(t *testing.T) {
	c := newCluster(t, 4, 1)
	author := hashsig.Sum([]byte("client"))

	// Seq 1 reaches the prepared stage at replicas 1-3 (pre-prepare and
	// prepares flow) but no commit quorum forms: commits are withheld.
	pp, _, err := c.replicas[0].Propose(reqs(author, 10, 2))
	if err != nil {
		t.Fatal(err)
	}
	var prepares []Message
	for _, id := range []int{1, 2, 3} {
		out, err := c.replicas[id].Handle(pp)
		if err != nil {
			t.Fatal(err)
		}
		prepares = append(prepares, outMsgs(out)...)
	}
	var commits []Message
	for _, m := range prepares {
		for _, id := range []int{1, 2, 3} {
			out, _ := c.replicas[id].Handle(m)
			for _, o := range out {
				if _, ok := o.Msg.(*Commit); ok {
					commits = append(commits, o.Msg)
					continue
				}
			}
		}
	}
	if len(commits) == 0 {
		t.Fatal("no replica reached the prepared stage")
	}
	// View change: the prepared batch must be re-proposed and commit in
	// view 1 with the same header commitments.
	wantDigest := pp.Prop.Header.SigningDigest()
	for _, id := range []int{1, 2, 3} {
		c.queue = append(c.queue, outMsgs(c.replicas[id].OnTimeout())...)
	}
	c.flood(0)
	c.assertAgreement(1, 1, 2, 3)
	for _, id := range []int{1, 2, 3} {
		b := c.replicas[id].Ledger().Batches()
		if len(b) != 1 || b[0].Header.SigningDigest() != wantDigest {
			t.Fatalf("replica %d committed a different batch than the prepared one", id)
		}
	}
}

func TestMessageCodecRoundTrip(t *testing.T) {
	c := newCluster(t, 4, 4)
	author := hashsig.Sum([]byte("client"))
	pp, _, err := c.replicas[0].Propose(reqs(author, 10, 3))
	if err != nil {
		t.Fatal(err)
	}
	out1, err := c.replicas[1].Handle(pp)
	if err != nil {
		t.Fatal(err)
	}
	msgs := []Message{pp}
	msgs = append(msgs, outMsgs(out1)...)
	msgs = append(msgs, &Commit{
		View: 1, Replica: 2, Seq: 9,
		HeaderDigest: hashsig.Sum([]byte("h")),
		Nonce:        hashsig.NonceFromSeed("n"),
	})
	msgs = append(msgs, outMsgs(c.replicas[2].OnTimeout())...)
	for i, m := range msgs {
		enc := EncodeMessage(m)
		dec, err := DecodeMessage(enc)
		if err != nil {
			t.Fatalf("msg %d (%T): decode: %v", i, m, err)
		}
		if dec.Type() != m.Type() {
			t.Fatalf("msg %d: type %d -> %d", i, m.Type(), dec.Type())
		}
		if !bytes.Equal(EncodeMessage(dec), enc) {
			t.Fatalf("msg %d (%T): re-encode differs", i, m)
		}
	}
}

func TestDecodeMessageRejectsMalformed(t *testing.T) {
	c := newCluster(t, 4, 1)
	pp, _, err := c.replicas[0].Propose(reqs(hashsig.Sum([]byte("x")), 1, 1))
	if err != nil {
		t.Fatal(err)
	}
	valid := EncodeMessage(pp)
	cases := [][]byte{
		nil,
		{},
		{0xff},
		{0, 0, 0, 99},             // unknown type
		valid[:len(valid)/2],      // truncated
		append(valid, 0xde, 0xad), // trailing garbage
	}
	for i, b := range cases {
		if _, err := DecodeMessage(b); err == nil {
			t.Fatalf("case %d: malformed message decoded", i)
		}
	}
}

func TestConfigValidation(t *testing.T) {
	keys := make([]*hashsig.PrivateKey, 4)
	peers := make([]*hashsig.PublicKey, 4)
	for i := range keys {
		keys[i] = hashsig.GenerateKeyFromSeed(fmt.Sprintf("cv-%d", i))
		peers[i] = keys[i].Public()
	}
	if _, err := New(Config{ID: 0, Key: keys[0], Peers: peers[:3], App: ledger.KVApp{}}); !errors.Is(err, ErrConfig) {
		t.Fatalf("3 peers accepted: %v", err)
	}
	if _, err := New(Config{ID: 1, Key: keys[0], Peers: peers, App: ledger.KVApp{}}); !errors.Is(err, ErrConfig) {
		t.Fatalf("mismatched key accepted: %v", err)
	}
	if _, err := New(Config{ID: 9, Key: keys[0], Peers: peers, App: ledger.KVApp{}}); !errors.Is(err, ErrConfig) {
		t.Fatalf("out-of-range id accepted: %v", err)
	}
	if _, err := New(Config{ID: 0, Key: keys[0], Peers: peers, App: ledger.KVApp{}, Window: -1}); !errors.Is(err, ErrConfig) {
		t.Fatalf("negative window accepted: %v", err)
	}
	if _, err := New(Config{ID: 0, Key: keys[0], Peers: peers, App: ledger.KVApp{}, Window: maxPreparedClaims + 1}); !errors.Is(err, ErrConfig) {
		t.Fatalf("window beyond the decodable claim bound accepted: %v", err)
	}
	// Window 1 restores the strict serial behaviour: one outstanding
	// proposal at a time.
	r, err := New(Config{ID: 0, Key: keys[0], Peers: peers, App: ledger.KVApp{}, Window: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := r.Propose(nil); err != nil {
		t.Fatalf("primary cannot propose: %v", err)
	}
	if _, _, err := r.Propose(nil); !errors.Is(err, ErrNotPrimary) {
		t.Fatal("window-1 primary proposed a second in-flight batch")
	}
	// The default window pipelines up to DefaultWindow instances and no
	// more.
	r, err = New(Config{ID: 0, Key: keys[0], Peers: peers, App: ledger.KVApp{}})
	if err != nil {
		t.Fatal(err)
	}
	if r.Window() != DefaultWindow {
		t.Fatalf("default window %d, want %d", r.Window(), DefaultWindow)
	}
	for i := 0; i < DefaultWindow; i++ {
		if _, _, err := r.Propose(nil); err != nil {
			t.Fatalf("proposal %d within the window refused: %v", i+1, err)
		}
	}
	if _, _, err := r.Propose(nil); !errors.Is(err, ErrNotPrimary) {
		t.Fatal("primary proposed past a full window")
	}
	if got := r.InFlight(); got != DefaultWindow {
		t.Fatalf("in-flight %d, want %d", got, DefaultWindow)
	}
}

// TestBufferDiscardsPermanentlyStale: a delayed retransmit for a batch the
// replica has checkpointed past can never become processable — buffering it
// would leak it until maxFuture churn. The guard acks-and-discards exactly
// the messages below the retained re-ack window; view-keyed traffic is
// never seq-gated.
func TestBufferDiscardsPermanentlyStale(t *testing.T) {
	c := newCluster(t, 4, 1)
	r := c.replicas[0]
	r.committed = 100 // window is DefaultWindow = 4

	r.buffer(&Commit{Seq: 3})
	if len(r.future) != 0 {
		t.Fatal("commit far below the checkpoint was buffered")
	}
	r.buffer(&Commit{Seq: 96}) // 96 + 4 <= 100: still unreachable
	if len(r.future) != 0 {
		t.Fatal("commit at the discard boundary was buffered")
	}
	r.buffer(&Commit{Seq: 97}) // inside the re-ack window: keep
	if len(r.future) != 1 {
		t.Fatal("in-window commit was discarded")
	}
	r.buffer(&PrePrepare{}) // seq 0 placeholder traffic is never discarded
	if len(r.future) != 2 {
		t.Fatal("zero-seq message was discarded")
	}
	r.buffer(&ViewChange{}) // view-keyed: not subject to the seq gate
	if len(r.future) != 3 {
		t.Fatal("view-change was discarded by the seq gate")
	}
}
