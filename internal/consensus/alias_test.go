package consensus

import (
	"bytes"
	"testing"

	"iaccf/internal/hashsig"
	"iaccf/internal/ledger"
	"iaccf/internal/pool"
)

// TestEncodedFramesSurvivePoolReuse is the aliasing property for the
// message codec: an encoded frame handed to the transport, and the entry
// payloads of a message decoded from such a frame, must not share backing
// memory with any pooled scratch. The test commits one sequence while
// retaining every frame it produced (and a decode of each), then commits
// another sequence — cycling every pooled encode/digest buffer with poison
// mode on — and asserts the retained frames are byte-identical, still
// decode, and that the earlier decodes' payloads are untouched. Run under
// -race in CI, concurrent scratch reuse is caught too.
func TestEncodedFramesSurvivePoolReuse(t *testing.T) {
	defer pool.SetPoison(pool.SetPoison(true))
	c := newCluster(t, 4, 4)
	author := hashsig.Sum([]byte("alias-client"))

	// commit floods one proposal to quiescence through encoded frames
	// (unlike cluster.flood, which passes Message values), returning every
	// frame that crossed the wire.
	commit := func(seq uint64) [][]byte {
		t.Helper()
		pp, _, err := c.replicas[0].Propose(reqs(author, seq*1000, 48))
		if err != nil {
			t.Fatal(err)
		}
		var frames [][]byte
		pending := []Message{pp}
		for len(pending) > 0 {
			var next []Message
			for _, m := range pending {
				f := EncodeMessage(m)
				frames = append(frames, f)
				dm, err := DecodeMessage(f)
				if err != nil {
					t.Fatalf("decode own frame: %v", err)
				}
				for _, r := range c.replicas {
					out, _ := r.Handle(dm)
					for _, o := range out {
						next = append(next, o.Msg)
					}
				}
			}
			pending = next
		}
		for _, r := range c.replicas {
			if r.Committed() != seq {
				t.Fatalf("replica %d at seq %d, want %d", r.ID(), r.Committed(), seq)
			}
		}
		return frames
	}

	first := commit(1)
	copies := make([][]byte, len(first))
	var keptPayloads [][]byte
	var keptEntries []ledger.Entry
	for i, f := range first {
		copies[i] = append([]byte(nil), f...)
		m, err := DecodeMessage(f)
		if err != nil {
			t.Fatal(err)
		}
		if pp, ok := m.(*PrePrepare); ok {
			for ei := range pp.Entries {
				keptEntries = append(keptEntries, pp.Entries[ei])
				keptPayloads = append(keptPayloads, append([]byte(nil), pp.Entries[ei].Payload...))
			}
		}
	}
	if len(keptPayloads) == 0 {
		t.Fatal("no pre-prepare entries captured; harness broken")
	}

	commit(2)

	for i, f := range first {
		if !bytes.Equal(f, copies[i]) {
			t.Fatalf("frame %d mutated after pool reuse", i)
		}
		if _, err := DecodeMessage(f); err != nil {
			t.Fatalf("frame %d no longer decodes: %v", i, err)
		}
	}
	for i := range keptEntries {
		if !bytes.Equal(keptEntries[i].Payload, keptPayloads[i]) {
			t.Fatalf("decoded entry %d payload mutated after pool reuse", i)
		}
	}
}
