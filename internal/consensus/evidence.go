package consensus

import (
	"bytes"
	"fmt"

	"iaccf/internal/hashsig"
)

// Blame is self-contained evidence that one replica equivocated: two
// proposals for the same (view, seq) committing to different batch headers,
// both signed by the culprit's key. Anyone holding the culprit's public key
// can check it offline — this is the artifact individual accountability
// reduces to (paper §5): a universe where misbehaviour either has no effect
// or yields a transferable proof naming the offending key.
type Blame struct {
	// Culprit is the key ID (hashsig.PublicKey.ID) of the equivocating
	// replica.
	Culprit hashsig.Digest
	// View and Seq locate the equivocation. Conflicting headers from
	// different views are NOT blame: a view change legitimately rolls
	// replicas back and re-proposes, so the same replica may sign two
	// different headers for one sequence number across views (Lemma 1).
	View uint64
	Seq  uint64
	// A and B are the conflicting proposals, in canonical order (ascending
	// header signing digest) so the same conflict always produces the same
	// evidence object.
	A, B Proposal
}

// String names the culprit and the slot, for logs and operator reports.
func (bl *Blame) String() string {
	return fmt.Sprintf("equivocation by key %s at view %d seq %d (%s vs %s)",
		bl.Culprit, bl.View, bl.Seq, bl.A.Header.SigningDigest(), bl.B.Header.SigningDigest())
}

// blameFrom builds evidence from two conflicting proposals attributed to
// pub. It returns nil unless the pair genuinely conflicts under pub's
// signatures, so a caller can never fabricate blame from garbage.
func blameFrom(a, b *Proposal, pub *hashsig.PublicKey) *Blame {
	bl := &Blame{
		Culprit: pub.ID(),
		View:    a.View,
		Seq:     a.Seq(),
		A:       *a,
		B:       *b,
	}
	da, db := a.Header.SigningDigest(), b.Header.SigningDigest()
	if bytes.Compare(da[:], db[:]) > 0 {
		bl.A, bl.B = bl.B, bl.A
	}
	if !bl.Verify(pub) {
		return nil
	}
	return bl
}

// Verify checks the evidence against the culprit's public key: both
// proposals must name the same (view, seq) and primary, commit to different
// headers, and carry valid signatures by pub, whose ID must match Culprit.
// A true result is transferable proof of equivocation: honest replicas sign
// at most one proposal per (view, seq), so no honest key can ever be blamed.
func (bl *Blame) Verify(pub *hashsig.PublicKey) bool {
	if pub == nil || pub.ID() != bl.Culprit {
		return false
	}
	if bl.A.View != bl.View || bl.B.View != bl.View {
		return false
	}
	if bl.A.Seq() != bl.Seq || bl.B.Seq() != bl.Seq {
		return false
	}
	if bl.A.Primary != bl.B.Primary {
		return false
	}
	if bl.A.Header.SigningDigest() == bl.B.Header.SigningDigest() {
		return false
	}
	return bl.A.Verify(pub) && bl.B.Verify(pub)
}
