package consensus

import (
	"fmt"
	"testing"

	"iaccf/internal/hashsig"
)

// TestSigMemoBounded fills the memo far past its budget and checks the
// two-generation eviction keeps residency within maxSigCache while the
// hottest (recently re-hit) entries survive rotations.
func TestSigMemoBounded(t *testing.T) {
	m := newSigMemo()
	hot := hashsig.Sum([]byte("hot-entry"))
	m.add(hot)
	for i := 0; i < 4*maxSigCache; i++ {
		if m.len() > maxSigCache {
			t.Fatalf("memo grew to %d entries, budget is %d", m.len(), maxSigCache)
		}
		m.add(hashsig.Sum([]byte(fmt.Sprintf("cold-%d", i))))
		// Refresh the hot entry every few inserts: a prev-generation hit
		// must promote it back into cur so it outlives rotations.
		if i%1024 == 0 && !m.hit(hot) {
			t.Fatalf("hot entry evicted after %d inserts despite refreshes", i)
		}
	}
	if m.len() > maxSigCache {
		t.Fatalf("final residency %d exceeds budget %d", m.len(), maxSigCache)
	}
	if !m.hit(hot) {
		t.Fatal("hot entry evicted at end")
	}
	// An entry inserted long ago and never re-hit must be gone.
	if m.hit(hashsig.Sum([]byte("cold-0"))) {
		t.Fatal("ancient cold entry still resident after many rotations")
	}
}

// TestSigMemoPrevHitPromotes pins the promotion contract directly: rotate
// cur into prev, then a hit must move the key back into cur so the next
// rotation does not drop it.
func TestSigMemoPrevHitPromotes(t *testing.T) {
	m := newSigMemo()
	k := hashsig.Sum([]byte("promote-me"))
	m.add(k)
	m.prev, m.cur = m.cur, make(map[hashsig.Digest]bool) // force a rotation
	if m.cur[k] {
		t.Fatal("setup: key should live in prev only")
	}
	if !m.hit(k) {
		t.Fatal("prev-generation entry not found")
	}
	if !m.cur[k] {
		t.Fatal("prev hit did not promote the entry into cur")
	}
	if m.hit(hashsig.Sum([]byte("never-added"))) {
		t.Fatal("miss reported as hit")
	}
}
