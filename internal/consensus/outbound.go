package consensus

// Outbound is one addressed protocol message: what a replica wants sent and
// to whom. Dest is either a single peer or the Broadcast sentinel. The
// envelope is what makes a real transport honest about traffic: core
// protocol messages (pre-prepares, prepares, commits, view changes) need
// every replica to see them — quorums form from everyone's endorsements —
// but state-transfer offers and chunks are strictly pairwise, and shipping
// a multi-megabyte checkpoint chunk to n-1 replicas because the API could
// not say "just the requester" would multiply sync bandwidth by the cluster
// size.
type Outbound struct {
	// Dest is the receiving replica, or Broadcast for every peer. A replica
	// never addresses itself; transports must not loop messages back.
	Dest ReplicaID
	// Msg is the protocol message to deliver.
	Msg Message
}

// Broadcast is the Dest sentinel addressing every peer (never a valid
// ReplicaID: configurations are bounded by maxPreparedClaims peers, far
// below it).
const Broadcast = ^ReplicaID(0)

// IsBroadcast reports whether the envelope addresses every peer.
func (o Outbound) IsBroadcast() bool { return o.Dest == Broadcast }

// toAll wraps a message for every peer.
func toAll(m Message) Outbound { return Outbound{Dest: Broadcast, Msg: m} }

// toPeer wraps a message for exactly one peer.
func toPeer(dest ReplicaID, m Message) Outbound { return Outbound{Dest: dest, Msg: m} }

// broadcastAll appends every message as a broadcast envelope.
func broadcastAll(out *[]Outbound, msgs []Message) {
	for _, m := range msgs {
		*out = append(*out, toAll(m))
	}
}
