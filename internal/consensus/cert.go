package consensus

import (
	"iaccf/internal/hashsig"
	"iaccf/internal/wire"
)

// NonceOpen is one revealed commit nonce inside a CommitCert.
type NonceOpen struct {
	Replica ReplicaID
	Nonce   hashsig.Nonce
}

// CommitCert proves that a batch committed: the proposal, the signed
// prepares that announced each backup's nonce commitment, and 2f+1 revealed
// nonces opening those commitments (the primary's commitment rides in the
// proposal itself). View-change messages carry the sender's certificate for
// its last committed batch, making the CommittedSeq claim verifiable — a
// Byzantine replica can replay an old certificate but can never exhibit one
// for a sequence number that did not actually commit.
type CommitCert struct {
	Prop     Proposal
	Prepares []Prepare
	Opens    []NonceOpen
}

// Seq returns the committed batch sequence number the certificate proves.
func (c *CommitCert) Seq() uint64 { return c.Prop.Seq() }

// Verify reports whether the certificate proves a commit under the given
// replica keys: the proposal and every counted prepare must be validly
// signed, and at least quorum distinct replicas must have an opened nonce
// matching their announced commitment.
func (c *CommitCert) Verify(peers []*hashsig.PublicKey, quorum int) bool {
	tasks, ok := c.structure(peers, quorum)
	if !ok {
		return false
	}
	for _, t := range tasks {
		if !t.Key.Verify(t.Digest, t.Sig) {
			return false
		}
	}
	return true
}

// structure checks everything about the certificate except signature
// validity — identities, proposal binding, and the opened-nonce quorum —
// and returns the signature checks still owed as verification tasks.
// Replicas batch those through a memoizing pooled verifier; the plain
// Verify above runs them inline.
func (c *CommitCert) structure(peers []*hashsig.PublicKey, quorum int) ([]hashsig.VerifyTask, bool) {
	n := ReplicaID(len(peers))
	if c.Prop.Primary >= n || c.Prop.Primary != ReplicaID(c.Prop.View%uint64(n)) {
		return nil, false
	}
	propDigest := c.Prop.SigningDigest()
	tasks := make([]hashsig.VerifyTask, 0, 1+len(c.Prepares))
	tasks = append(tasks, hashsig.VerifyTask{Key: peers[c.Prop.Primary], Digest: propDigest, Sig: c.Prop.Sig})
	commits := map[ReplicaID]hashsig.Digest{c.Prop.Primary: c.Prop.NonceCommit}
	for i := range c.Prepares {
		p := &c.Prepares[i]
		if p.Replica >= n || p.Replica == c.Prop.Primary {
			return nil, false
		}
		if p.Prop.SigningDigest() != propDigest {
			return nil, false
		}
		tasks = append(tasks, hashsig.VerifyTask{Key: peers[p.Replica], Digest: p.SigningDigest(), Sig: p.Sig})
		commits[p.Replica] = p.NonceCommit
	}
	opened := map[ReplicaID]bool{}
	for _, o := range c.Opens {
		cm, ok := commits[o.Replica]
		if ok && o.Nonce.Opens(cm) {
			opened[o.Replica] = true
		}
	}
	return tasks, len(opened) >= quorum
}

func (c *CommitCert) encodeTo(w *wire.Writer) {
	c.Prop.encodeTo(w)
	w.Uint32(uint32(len(c.Prepares)))
	for i := range c.Prepares {
		c.Prepares[i].encodeBody(w)
	}
	w.Uint32(uint32(len(c.Opens)))
	for _, o := range c.Opens {
		w.Uint32(uint32(o.Replica))
		w.Nonce(o.Nonce)
	}
}

func decodeCommitCert(r *wire.Reader) *CommitCert {
	c := &CommitCert{Prop: decodeProposal(r)}
	np := r.Uint32()
	if r.Err() == nil && np > maxViewChanges {
		r.Fail(errTooMany("prepares", np))
		return c
	}
	c.Prepares = make([]Prepare, 0, min(np, 64))
	for i := uint32(0); i < np && r.Err() == nil; i++ {
		c.Prepares = append(c.Prepares, *decodePrepare(r))
	}
	no := r.Uint32()
	if r.Err() == nil && no > maxViewChanges {
		r.Fail(errTooMany("nonce opens", no))
		return c
	}
	c.Opens = make([]NonceOpen, 0, min(no, 64))
	for i := uint32(0); i < no && r.Err() == nil; i++ {
		c.Opens = append(c.Opens, NonceOpen{Replica: ReplicaID(r.Uint32()), Nonce: r.Nonce()})
	}
	return c
}
