package consensus

import (
	"bytes"
	"fmt"

	"iaccf/internal/hashsig"
	"iaccf/internal/kv"
	"iaccf/internal/ledger"
	"iaccf/internal/merkle"
	"iaccf/internal/wire"
)

// Chunked checkpoint state transfer (paper §3.4, §6). A replica that falls
// behind by more than the proposal window cannot catch up from re-acks and
// retransmissions: its peers have pruned the batches it needs, retaining
// only the suffix above their latest committed checkpoint. The laggard
// instead discovers who holds a checkpoint (SyncRequest/SyncAvail), fetches
// the checkpoint as per-shard state chunks plus the committed batch suffix
// (SyncChunkRequest/SyncChunk), verifies everything against one commit
// certificate, and adopts the result wholesale before resuming as a normal
// replica.
//
// Trust chain — one certificate anchors the whole transfer:
//
//   - The SyncAvail's commit certificate proves its batch header committed;
//     the header signs d_C, so the announced shard digest vector must
//     combine to the header's d_C.
//   - Each state chunk must hash to its slot in that vector (the canonical
//     per-shard serialization is exactly the preimage d_C is built from).
//   - The frontier and the batch suffix are verified transitively: a
//     candidate ledger is restored from the checkpoint and the suffix is
//     re-executed onto it (ledger.ApplyBatch checks results, ¯G, ¯M, d_C
//     per batch); the final batch's header must reproduce the certified
//     header's signing digest. The history roots chain every entry, so a
//     lying frontier or a tampered suffix batch cannot survive the anchor.
//
// Adoption is all-or-nothing: the replica's ledger is only swapped after
// the full chain verifies. A source whose data fails any check is banned
// for the rest of the sync and the transfer restarts from discovery, which
// is what makes lying chunk servers a liveness nuisance, never a safety
// risk. Timeouts are integer ticks (SyncTick) with exponential backoff —
// the replica owns no clock; the harness drives it deterministically.

// syncPhase is the state-transfer protocol state.
type syncPhase uint8

const (
	// syncIdle: in-window operation; watching for credible evidence that
	// the cluster has moved beyond reach of normal catch-up.
	syncIdle syncPhase = iota
	// syncCollecting: broadcasting SyncRequest, waiting for a verifiable
	// SyncAvail.
	syncCollecting
	// syncFetching: requesting chunks of one accepted offer.
	syncFetching
)

const (
	// syncPatience is how many consecutive ticks the replica must observe
	// itself behind (with no commit progress) before starting a transfer:
	// within-window gaps heal via retransmission, and a transfer discards
	// all in-flight participation.
	syncPatience = 3
	// syncBaseBackoff and syncMaxBackoff bound the retry deadline ticks.
	// Ticks are scheduling rounds, and one request/reply round trip spans
	// many rounds under load (deliveries are one per round, drops re-queue),
	// so the clock must be generous: banning an honest server for network
	// slowness costs a full rediscovery.
	syncBaseBackoff = 16
	syncMaxBackoff  = 512
	// syncMaxAttempts is how many fetch rounds one source gets before it is
	// banned and discovery restarts.
	syncMaxAttempts = 6
	// maxSyncSuffix bounds the committed batch suffix accepted above a
	// checkpoint. An honest server's suffix is shorter than its checkpoint
	// interval (it serves its latest committed checkpoint); the bound stops
	// a hostile offer from driving an unbounded fetch plan.
	maxSyncSuffix = 1 << 12
)

// syncOffer is one accepted, certificate-verified SyncAvail.
type syncOffer struct {
	source       ReplicaID
	ckptSeq      uint64
	shardDigests []hashsig.Digest
	frontier     merkle.Frontier
	cert         *CommitCert
}

// syncState is the laggard side of state transfer. Zero value is idle.
type syncState struct {
	phase syncPhase
	tick  uint64

	// ahead is the highest cluster-committed sequence number credibly
	// observed (certified view-change claims, new-view certificates, and
	// far-future proposals); behindFor counts consecutive ticks spent with
	// ahead out of window and no local commit progress.
	ahead         uint64
	behindFor     int
	lastCommitted uint64
	// force requests a transfer regardless of patience: set when a rollback
	// hit the pruned checkpoint boundary, where local history cannot reach
	// the state the protocol needs (satellite: ErrPruned routes here).
	force bool

	deadline uint64
	backoff  uint64
	attempts int

	offer  *syncOffer
	state  [][]byte        // per-shard chunks, nil = missing
	batch  []*ledger.Batch // suffix ckptSeq+1..cert.Seq(), nil = missing
	banned map[ReplicaID]bool
	// adopted counts completed transfers (verified and swapped in).
	adopted int
}

// missing counts chunks not yet received and verified.
func (s *syncState) missing() int {
	n := 0
	for _, c := range s.state {
		if c == nil {
			n++
		}
	}
	for _, b := range s.batch {
		if b == nil {
			n++
		}
	}
	return n
}

// reset drops all transfer progress but keeps the ban list and trigger
// evidence: a failed source should stay banned across the restart.
func (s *syncState) reset() {
	s.phase = syncIdle
	s.deadline = 0
	s.backoff = 0
	s.attempts = 0
	s.offer = nil
	s.state = nil
	s.batch = nil
}

// Syncing reports whether a state transfer is in progress.
func (r *Replica) Syncing() bool { return r.sync.phase != syncIdle }

// noteAhead records credible evidence that the cluster committed through
// seq. Callers pass only validated claims (certified view-changes,
// new-view certificates) or window-implied bounds from signed proposals;
// the evidence only gates when discovery starts — everything fetched is
// verified independently, so an inflated claim cannot corrupt state.
func (r *Replica) noteAhead(seq uint64) {
	if seq > r.sync.ahead {
		r.sync.ahead = seq
	}
}

// SyncTick advances the state-transfer clock one step and returns any
// envelopes to send: discovery requests broadcast (the laggard does not
// know who holds a checkpoint), chunk re-requests unicast to the accepted
// offer's source. The harness or node runtime calls it once per scheduling
// round; all deadlines and backoffs are in these ticks, never wall time.
func (r *Replica) SyncTick() []Outbound {
	s := &r.sync
	s.tick++
	if r.committed != s.lastCommitted {
		s.lastCommitted = r.committed
		s.behindFor = 0
	}
	var out []Outbound
	switch s.phase {
	case syncIdle:
		behind := s.ahead > r.committed+uint64(r.window)
		if behind {
			s.behindFor++
		} else {
			s.behindFor = 0
		}
		if s.force || (behind && s.behindFor >= syncPatience) {
			s.phase = syncCollecting
			s.backoff = syncBaseBackoff
			s.deadline = s.tick + s.backoff
			out = append(out, toAll(&SyncRequest{Replica: r.cfg.ID, HaveSeq: r.committed}))
		}
	case syncCollecting:
		if !s.force && s.ahead <= r.committed+uint64(r.window) {
			// Caught up organically (delayed traffic arrived after all):
			// stop asking.
			s.reset()
			break
		}
		if s.tick >= s.deadline {
			if s.backoff < syncMaxBackoff {
				s.backoff *= 2
			}
			s.deadline = s.tick + s.backoff
			out = append(out, toAll(&SyncRequest{Replica: r.cfg.ID, HaveSeq: r.committed}))
		}
	case syncFetching:
		if r.committed >= s.offer.cert.Seq() {
			// Organic progress overtook the offer while fetching; adopting
			// it now would move the watermark backwards.
			s.reset()
			break
		}
		if s.tick >= s.deadline {
			s.attempts++
			if s.attempts >= syncMaxAttempts {
				// The source keeps failing to deliver verifiable chunks:
				// ban it and rediscover.
				r.banSyncSource(s.offer.source)
				s.phase = syncCollecting
				s.backoff = syncBaseBackoff
				s.deadline = s.tick + s.backoff
				s.offer, s.state, s.batch = nil, nil, nil
				out = append(out, toAll(&SyncRequest{Replica: r.cfg.ID, HaveSeq: r.committed}))
				break
			}
			if s.backoff < syncMaxBackoff {
				s.backoff *= 2
			}
			s.deadline = s.tick + s.backoff
			out = append(out, r.requestMissingChunks()...)
		}
	}
	return out
}

// banSyncSource excludes a source for the remainder of this replica's sync
// effort (lying or persistently unresponsive chunk server).
func (r *Replica) banSyncSource(id ReplicaID) {
	if r.sync.banned == nil {
		r.sync.banned = make(map[ReplicaID]bool)
	}
	r.sync.banned[id] = true
	// Never ban ourselves into a corner: if every peer has now failed a
	// round, the failures were more likely congestion than malice — clear
	// the list and give everyone another chance rather than wait forever.
	if len(r.sync.banned) >= r.n-1 {
		r.sync.banned = nil
	}
}

// requestMissingChunks re-emits chunk requests for everything still owed by
// the current offer, each addressed to the offer's source alone — the only
// replica whose checkpoint the fetch plan was derived from.
func (r *Replica) requestMissingChunks() []Outbound {
	s := &r.sync
	if s.offer == nil {
		return nil
	}
	var out []Outbound
	for i, c := range s.state {
		if c == nil {
			out = append(out, toPeer(s.offer.source, &SyncChunkRequest{
				Replica: r.cfg.ID, Source: s.offer.source,
				CkptSeq: s.offer.ckptSeq, Kind: SyncChunkState, Index: uint64(i),
			}))
		}
	}
	for i, b := range s.batch {
		if b == nil {
			out = append(out, toPeer(s.offer.source, &SyncChunkRequest{
				Replica: r.cfg.ID, Source: s.offer.source,
				CkptSeq: s.offer.ckptSeq, Kind: SyncChunkBatch, Index: uint64(i),
			}))
		}
	}
	return out
}

// handleSyncRequest is the server side of discovery: if this replica holds
// a committed checkpoint past the requester's watermark, it answers — the
// requester alone; an offer means nothing to anyone else — with the
// checkpoint coordinates anchored by its latest commit certificate.
func (r *Replica) handleSyncRequest(m *SyncRequest, out *[]Outbound) error {
	if int(m.Replica) >= r.n || m.Replica == r.cfg.ID {
		return nil
	}
	if r.lastCommit == nil || r.lastCommit.Seq() != r.committed {
		return nil
	}
	ck := r.led.CheckpointAt(r.committed)
	if ck == nil || ck.Seq <= m.HaveSeq {
		// Nothing to offer beyond what normal retransmission covers.
		return nil
	}
	*out = append(*out, toPeer(m.Replica, &SyncAvail{
		Replica:      r.cfg.ID,
		Requester:    m.Replica,
		CkptSeq:      ck.Seq,
		ShardDigests: ck.ShardDigests,
		Frontier:     ck.Frontier.Encode(),
		Cert:         r.lastCommit,
	}))
	return nil
}

// handleSyncAvail is the laggard accepting an offer: the certificate must
// verify, certify a sequence number past our watermark, and sign over a
// d_C that the announced shard digest vector combines to. First verified
// offer wins; the fetch plan is derived entirely from it.
func (r *Replica) handleSyncAvail(m *SyncAvail, out *[]Outbound) error {
	s := &r.sync
	if s.phase != syncCollecting || m.Requester != r.cfg.ID {
		return nil
	}
	if int(m.Replica) >= r.n || m.Replica == r.cfg.ID || s.banned[m.Replica] {
		return nil
	}
	if m.Cert == nil || m.Cert.Seq() <= r.committed {
		return nil
	}
	if m.CkptSeq == 0 || m.CkptSeq > m.Cert.Seq() || m.Cert.Seq()-m.CkptSeq > maxSyncSuffix {
		return fmt.Errorf("%w: sync offer for checkpoint %d under certificate %d", ErrInvalid, m.CkptSeq, m.Cert.Seq())
	}
	if got := uint32(len(m.ShardDigests)); got != r.led.Shards() {
		return fmt.Errorf("%w: sync offer with %d shards, replica runs %d", ErrInvalid, got, r.led.Shards())
	}
	// The certified header pins the digest vector: d_C is the domain-tagged
	// combination of exactly these per-shard digests.
	if kv.CombineShardDigests(m.ShardDigests) != m.Cert.Prop.Header.CkptDigest {
		return fmt.Errorf("%w: sync offer digests do not combine to the certified d_C", ErrInvalid)
	}
	f, err := merkle.DecodeFrontier(m.Frontier)
	if err != nil {
		return fmt.Errorf("%w: sync offer frontier: %v", ErrInvalid, err)
	}
	tasks, ok := m.Cert.structure(r.cfg.Peers, r.quorum)
	if !ok || !r.verifyTasks(tasks) {
		return fmt.Errorf("%w: sync offer certificate from %d does not verify", ErrInvalid, m.Replica)
	}
	s.offer = &syncOffer{
		source:       m.Replica,
		ckptSeq:      m.CkptSeq,
		shardDigests: append([]hashsig.Digest(nil), m.ShardDigests...),
		frontier:     f,
		cert:         m.Cert,
	}
	s.state = make([][]byte, len(m.ShardDigests))
	s.batch = make([]*ledger.Batch, m.Cert.Seq()-m.CkptSeq)
	s.phase = syncFetching
	s.attempts = 0
	s.backoff = syncBaseBackoff
	s.deadline = s.tick + s.backoff
	*out = append(*out, r.requestMissingChunks()...)
	return nil
}

// handleSyncChunkRequest is the server side of the fetch: serve one chunk
// of the checkpoint this replica announced, unicast back to the requester
// (chunks are the bulk of sync traffic; broadcasting them would multiply
// transfer bandwidth by the cluster size), if still retained. Requests
// for checkpoints this replica no longer holds (pruned past, or rolled
// back) are silently ignored; the requester's timeout re-discovers.
func (r *Replica) handleSyncChunkRequest(m *SyncChunkRequest, out *[]Outbound) error {
	if m.Source != r.cfg.ID || int(m.Replica) >= r.n || m.Replica == r.cfg.ID {
		return nil
	}
	ck := r.led.CheckpointAt(r.committed)
	if ck == nil || ck.Seq != m.CkptSeq {
		return nil
	}
	var data []byte
	switch m.Kind {
	case SyncChunkState:
		if m.Index >= uint64(len(ck.ShardDigests)) {
			return nil
		}
		var buf bytes.Buffer
		if err := ck.Store.SerializeShard(int(m.Index), &buf); err != nil {
			return nil
		}
		data = buf.Bytes()
	case SyncChunkBatch:
		seq := m.CkptSeq + 1 + m.Index
		if seq <= m.CkptSeq || seq > r.committed {
			return nil
		}
		b := r.led.BatchAt(seq)
		if b == nil {
			return nil
		}
		data = encodeBatchChunk(b)
	default:
		return nil
	}
	*out = append(*out, toPeer(m.Replica, &SyncChunk{
		Replica: r.cfg.ID, Requester: m.Replica,
		CkptSeq: m.CkptSeq, Kind: m.Kind, Index: m.Index, Data: data,
	}))
	return nil
}

// encodeBatchChunk frames one batch as a chunk payload.
func encodeBatchChunk(b *ledger.Batch) []byte {
	w := wire.NewAppendWriter(make([]byte, 0, 512))
	b.EncodeTo(w)
	if err := w.Flush(); err != nil {
		panic(err) // appending never fails
	}
	return w.AppendedBytes()
}

// handleSyncChunk is the laggard receiving one chunk. State chunks verify
// immediately against the offer's digest vector; batch chunks must decode
// and carry the right sequence number, with full verification deferred to
// adoption. A chunk that fails its check is simply not recorded — the next
// timeout re-requests it, and persistent failure bans the source.
func (r *Replica) handleSyncChunk(m *SyncChunk, out *[]Outbound) error {
	s := &r.sync
	if s.phase != syncFetching || s.offer == nil {
		return nil
	}
	if m.Requester != r.cfg.ID || m.Replica != s.offer.source || m.CkptSeq != s.offer.ckptSeq {
		return nil
	}
	switch m.Kind {
	case SyncChunkState:
		if m.Index >= uint64(len(s.state)) || s.state[m.Index] != nil {
			return nil
		}
		if hashsig.Sum(m.Data) != s.offer.shardDigests[m.Index] {
			return fmt.Errorf("%w: sync state chunk %d does not hash to its certified digest", ErrInvalid, m.Index)
		}
		s.state[m.Index] = m.Data
	case SyncChunkBatch:
		if m.Index >= uint64(len(s.batch)) || s.batch[m.Index] != nil {
			return nil
		}
		rd := wire.NewBytesReader(m.Data)
		b := ledger.DecodeBatch(rd)
		rd.ExpectEOF()
		if err := rd.Err(); err != nil {
			return fmt.Errorf("%w: sync batch chunk %d: %v", ErrInvalid, m.Index, err)
		}
		if want := s.offer.ckptSeq + 1 + m.Index; b.Header.Seq != want {
			return fmt.Errorf("%w: sync batch chunk %d carries seq %d, want %d", ErrInvalid, m.Index, b.Header.Seq, want)
		}
		s.batch[m.Index] = b
	default:
		return nil
	}
	if s.missing() == 0 {
		if r.committed >= s.offer.cert.Seq() {
			// Organic progress overtook the transfer; drop it.
			s.reset()
			return nil
		}
		if err := r.adoptSync(); err != nil {
			// The assembled transfer failed the certificate anchor: the
			// source lied somewhere cheap verification could not catch
			// (frontier, batch contents). Ban it and rediscover.
			r.banSyncSource(s.offer.source)
			s.reset()
			s.phase = syncCollecting
			s.backoff = syncBaseBackoff
			s.deadline = s.tick + s.backoff
			*out = append(*out, toAll(&SyncRequest{Replica: r.cfg.ID, HaveSeq: r.committed}))
			return fmt.Errorf("%w: sync adoption failed: %v", ErrInvalid, err)
		}
	}
	return nil
}

// adoptSync performs all-or-nothing adoption of the assembled transfer: a
// candidate ledger is restored from the chunks and the suffix is replayed
// onto it; only if the final header reproduces the certified signing digest
// does the replica swap ledgers and resume at the certified watermark.
func (r *Replica) adoptSync() error {
	s := &r.sync
	offer := s.offer
	shards := uint32(len(offer.shardDigests))
	store, err := kv.NewShardedFromChunks(shards, s.state)
	if err != nil {
		return err
	}
	ck := &ledger.Checkpoint{
		Seq:          offer.ckptSeq,
		Store:        store,
		ShardDigests: offer.shardDigests,
		Frontier:     offer.frontier,
		Digest:       offer.cert.Prop.Header.CkptDigest,
	}
	cand, err := ledger.NewFromCheckpoint(ledger.Config{
		Key:             r.cfg.Key,
		App:             r.cfg.App,
		CheckpointEvery: r.cfg.CheckpointEvery,
		Shards:          shards,
	}, ck)
	if err != nil {
		return err
	}
	cert := offer.cert
	certHeader := &cert.Prop.Header
	if len(s.batch) == 0 {
		// Empty suffix: the certificate is for the checkpoint batch itself,
		// so the frontier must reproduce the certified history commitment
		// directly (with a suffix, the per-batch ¯M checks anchor it).
		if cand.HistSize() != certHeader.HistSize || cand.HistRoot() != certHeader.MRoot {
			return fmt.Errorf("%w: sync frontier does not reproduce the certified history root", ErrInvalid)
		}
	} else {
		for _, b := range s.batch {
			if _, err := cand.ApplyBatch(b); err != nil {
				return err
			}
		}
		final := cand.BatchAt(cert.Seq())
		if final == nil || final.Header.SigningDigest() != certHeader.SigningDigest() {
			return fmt.Errorf("%w: sync suffix does not reproduce the certified header", ErrInvalid)
		}
	}

	// Verified end to end: swap the ledger and resume as a normal replica
	// at the certified watermark. Every in-flight instance was speculation
	// on the abandoned ledger; the certificate's view is adopted (a replica
	// this far behind trusts certified progress, as with new-view
	// re-proposals).
	r.led = cand
	r.committed = cert.Seq()
	r.lastCommit = cert
	if cert.Prop.View > r.view {
		r.view = cert.Prop.View
	}
	if r.inViewChange && r.vcTarget <= r.view {
		r.inViewChange = false
		r.ownVC = nil
	}
	r.insts = make(map[uint64]*instance)
	r.reacks = make(map[uint64]*instance)
	r.recentOwn = make(map[uint64][]Message)
	r.mustRepropose = make(map[uint64]hashsig.Digest)
	r.pendingRepropose = nil
	if r.committed > r.proposeFloor {
		r.proposeFloor = r.committed
	}
	for k := range r.seen {
		if k.seq <= r.committed {
			delete(r.seen, k)
		}
	}
	// Drop buffered messages the new watermark makes permanently stale
	// (ack-and-discard below the checkpoint, instead of holding them until
	// the bounded buffer churns them out).
	kept := r.future[:0]
	for _, m := range r.future {
		if seq, ok := messageSeq(m); ok && seq+uint64(r.window) <= r.committed {
			continue
		}
		kept = append(kept, m)
	}
	for i := len(kept); i < len(r.future); i++ {
		r.future[i] = nil
	}
	r.future = kept

	s.reset()
	s.force = false
	s.behindFor = 0
	s.lastCommitted = r.committed
	s.adopted++
	r.gen++
	return nil
}

// Syncs returns how many chunked state transfers this replica has adopted.
func (r *Replica) Syncs() int { return r.sync.adopted }

// messageSeq extracts the batch sequence number a message is about, for
// staleness decisions. View-change traffic is view-keyed, not seq-keyed.
func messageSeq(m Message) (uint64, bool) {
	switch msg := m.(type) {
	case *PrePrepare:
		return msg.Prop.Seq(), true
	case *Prepare:
		return msg.Prop.Seq(), true
	case *Commit:
		return msg.Seq, true
	}
	return 0, false
}

// maybePrune drops committed batches below both the latest committed
// checkpoint and the re-ack window, keeping steady-state ledger memory at
// O(window + checkpoint interval): everything a peer might still need —
// re-ack batches inside the window, the chunk-servable checkpoint, and the
// suffix above it — survives; anything older is reachable only through
// state transfer, which is exactly what SyncRequest serves.
func (r *Replica) maybePrune() {
	ck := r.led.CheckpointAt(r.committed)
	if ck == nil {
		return
	}
	w := uint64(r.window)
	if r.committed+1 <= w {
		return // the whole history is still inside the re-ack window
	}
	r.led.Prune(min(ck.Seq+1, r.committed+1-w))
}
