package consensus

import (
	"errors"
	"fmt"
	"sort"

	"iaccf/internal/hashsig"
	"iaccf/internal/ledger"
)

var (
	// ErrConfig reports an invalid replica configuration.
	ErrConfig = errors.New("consensus: config needs >= 4 peers, a matching key, and an app")
	// ErrNotPrimary reports a Propose call on a replica that is not the
	// primary of the current view, or not in a position to propose.
	ErrNotPrimary = errors.New("consensus: replica cannot propose now")
	// ErrInvalid reports a message that failed validation (bad signature,
	// wrong primary, malformed proof). Invalid messages never change state.
	ErrInvalid = errors.New("consensus: invalid message")
)

// Config parameterizes a Replica.
type Config struct {
	// ID is this replica's index; Peers[ID] must be Key's public half.
	ID ReplicaID
	// Key signs batch headers and protocol messages. One key per replica,
	// shared with its ledger, so blame evidence names the same identity the
	// ledger's signed headers do.
	Key *hashsig.PrivateKey
	// Peers holds every replica's public key, indexed by ReplicaID. The
	// configuration tolerates f = (len(Peers)-1)/3 faults.
	Peers []*hashsig.PublicKey
	// App executes transaction payloads (must be deterministic).
	App ledger.App
	// CheckpointEvery and Shards parameterize the underlying ledger.
	CheckpointEvery uint64
	Shards          uint32
}

// slotKey identifies one proposal slot for equivocation detection.
type slotKey struct {
	view uint64
	seq  uint64
}

// instance is the in-flight consensus instance. A replica runs at most one
// at a time (proposal window of 1): either the batch at committed+1, or a
// "re-ack" of the already-committed batch when a new primary re-proposes it
// so laggards can finish (seq == committed).
type instance struct {
	prop         *Proposal
	headerDigest hashsig.Digest // prop.Header.SigningDigest()
	propDigest   hashsig.Digest // prop.SigningDigest()
	entries      []ledger.Entry
	ownHeader    *ledger.BatchHeader
	nonce        hashsig.Nonce // own commit nonce
	// passive marks a catch-up instance replayed from an older view's
	// traffic: the replica executes and collects, but emits nothing, and
	// commits only on a full quorum of openings.
	passive bool
	// reack marks an instance for a seq this replica already committed.
	reack bool
	// prepMsgs holds the valid prepares seen, by backup (never the
	// primary, whose endorsement and nonce commitment ride in prop).
	prepMsgs map[ReplicaID]*Prepare
	// opens holds revealed nonces, validated against commitments lazily.
	opens        map[ReplicaID]hashsig.Nonce
	preparedCert bool
	// own messages, kept for retransmission.
	ownPrePrepare *PrePrepare
	ownPrepare    *Prepare
	ownCommit     *Commit
}

// endorsers counts distinct replicas backing the proposal: the primary via
// its proposal signature plus one per valid prepare.
func (in *instance) endorsers() int { return 1 + len(in.prepMsgs) }

// commitment returns the nonce commitment replica id announced for this
// instance, if known.
func (in *instance) commitment(id ReplicaID) (hashsig.Digest, bool) {
	if id == in.prop.Primary {
		return in.prop.NonceCommit, true
	}
	if p, ok := in.prepMsgs[id]; ok {
		return p.NonceCommit, true
	}
	return hashsig.Digest{}, false
}

// openedQuorum counts distinct replicas whose revealed nonce opens their
// announced commitment.
func (in *instance) openedQuorum() int {
	n := 0
	for id, nonce := range in.opens {
		if c, ok := in.commitment(id); ok && nonce.Opens(c) {
			n++
		}
	}
	return n
}

// Replica is one L-PBFT replica: a ledger plus the protocol state machine.
// It is single-threaded, like the replica loop it models: callers feed it
// one message at a time and broadcast whatever it returns.
type Replica struct {
	cfg    Config
	n      int
	f      int
	quorum int // 2f+1
	led    *ledger.Ledger

	view      uint64
	committed uint64 // highest committed batch seq (0 = none)
	cur       *instance

	// lastCommit retains the proof for the latest committed batch, carried
	// in view-changes to certify CommittedSeq.
	lastCommit *CommitCert

	// view-change state
	inViewChange bool
	vcTarget     uint64
	ownVC        *ViewChange
	vcs          map[uint64]map[ReplicaID]*ViewChange
	lastNewView  *NewView
	// mustRepropose pins the header digest the current view's primary is
	// obliged to re-propose at committed+1 (from the new-view certificate).
	mustRepropose *hashsig.Digest
	// pendingRepropose is set on a new primary that must re-propose a
	// prepared batch but is still catching up to its sequence number.
	pendingRepropose *PrePrepare
	// proposeFloor is the highest certified committed seq seen in a
	// new-view certificate; fresh proposals stay above it.
	proposeFloor uint64

	// seen records the first valid proposal per (view, seq); a second one
	// with a different header digest is equivocation.
	seen     map[slotKey]*Proposal
	evidence []*Blame
	blamed   map[slotKey]bool

	// future buffers messages that cannot be processed yet (later seq,
	// later view, or instance not created). Bounded; oldest dropped first.
	future []Message

	// sigOK memoizes successful signature checks by signing digest, so
	// buffered messages are not re-verified on every drain pass. Only
	// successes are cached: a digest says nothing about a failed signature.
	sigOK map[hashsig.Digest]bool
}

// maxFuture bounds the out-of-order buffer.
const maxFuture = 1 << 14

// New returns a replica with a fresh ledger.
func New(cfg Config) (*Replica, error) {
	n := len(cfg.Peers)
	if n < 4 || cfg.Key == nil || int(cfg.ID) >= n {
		return nil, ErrConfig
	}
	if cfg.Peers[cfg.ID] == nil || !cfg.Peers[cfg.ID].Equal(cfg.Key.Public()) {
		return nil, fmt.Errorf("%w: Peers[%d] is not Key's public half", ErrConfig, cfg.ID)
	}
	led, err := ledger.New(ledger.Config{
		Key:             cfg.Key,
		App:             cfg.App,
		CheckpointEvery: cfg.CheckpointEvery,
		Shards:          cfg.Shards,
	})
	if err != nil {
		return nil, err
	}
	f := (n - 1) / 3
	return &Replica{
		cfg:    cfg,
		n:      n,
		f:      f,
		quorum: 2*f + 1,
		led:    led,
		vcs:    make(map[uint64]map[ReplicaID]*ViewChange),
		seen:   make(map[slotKey]*Proposal),
		blamed: make(map[slotKey]bool),
		sigOK:  make(map[hashsig.Digest]bool),
	}, nil
}

// ID returns this replica's index.
func (r *Replica) ID() ReplicaID { return r.cfg.ID }

// View returns the current view number.
func (r *Replica) View() uint64 { return r.view }

// Committed returns the highest committed batch sequence number (0 before
// the first commit).
func (r *Replica) Committed() uint64 { return r.committed }

// Ledger exposes the replica's ledger (read-only use by callers).
func (r *Replica) Ledger() *ledger.Ledger { return r.led }

// Evidence returns the blame objects collected so far, as a fresh slice.
func (r *Replica) Evidence() []*Blame {
	return append([]*Blame(nil), r.evidence...)
}

// DebugState renders the replica's protocol coordinates for harness
// failure reports.
func (r *Replica) DebugState() string {
	cur := "idle"
	if in := r.cur; in != nil {
		cur = fmt.Sprintf("inst{view %d seq %d passive %v reack %v prepared %v endorsers %d opens %d}",
			in.prop.View, in.prop.Seq(), in.passive, in.reack, in.preparedCert, in.endorsers(), len(in.opens))
	}
	mrp := "-"
	if r.mustRepropose != nil {
		mrp = r.mustRepropose.String()
	}
	return fmt.Sprintf("replica %d: view %d committed %d vc %v(target %d) floor %d mustRepropose %s pending %v future %d %s",
		r.cfg.ID, r.view, r.committed, r.inViewChange, r.vcTarget, r.proposeFloor,
		mrp, r.pendingRepropose != nil, len(r.future), cur)
}

// primaryOf returns the primary of view v.
func (r *Replica) primaryOf(v uint64) ReplicaID { return ReplicaID(v % uint64(r.n)) }

// IsPrimary reports whether this replica leads the current view.
func (r *Replica) IsPrimary() bool { return r.primaryOf(r.view) == r.cfg.ID }

// Idle reports whether the replica could start a new instance: no batch in
// flight, no view change pending, no re-proposal obligation, and caught up
// to every certified commit it knows about.
func (r *Replica) Idle() bool {
	return r.cur == nil && !r.inViewChange && r.mustRepropose == nil &&
		r.pendingRepropose == nil && r.committed >= r.proposeFloor
}

// Propose executes reqs as the next batch and returns the pre-prepare to
// broadcast plus the client receipts. Only the idle primary may propose.
func (r *Replica) Propose(reqs []ledger.Request) (*PrePrepare, []ledger.Receipt, error) {
	if !r.IsPrimary() || !r.Idle() {
		return nil, nil, ErrNotPrimary
	}
	batch, receipts, err := r.led.ExecuteBatch(reqs)
	if err != nil {
		return nil, nil, err
	}
	pp := r.proposeBatch(batch)
	return pp, receipts, nil
}

// proposeBatch wraps an already-executed batch (ExecuteBatch or ApplyBatch
// output adopted into the ledger) into a proposal and opens the instance.
func (r *Replica) proposeBatch(batch *ledger.Batch) *PrePrepare {
	nonce := hashsig.NewNonce()
	prop := &Proposal{
		View:        r.view,
		Primary:     r.cfg.ID,
		Header:      batch.Header,
		NonceCommit: nonce.Commit(),
	}
	prop.Sig = r.cfg.Key.MustSign(prop.SigningDigest())
	pp := &PrePrepare{Prop: *prop, Entries: batch.Entries}
	r.seen[slotKey{prop.View, prop.Seq()}] = prop
	r.cur = &instance{
		prop:          prop,
		headerDigest:  prop.Header.SigningDigest(),
		propDigest:    prop.SigningDigest(),
		entries:       batch.Entries,
		ownHeader:     &batch.Header,
		nonce:         nonce,
		reack:         prop.Seq() <= r.committed,
		prepMsgs:      make(map[ReplicaID]*Prepare),
		opens:         make(map[ReplicaID]hashsig.Nonce),
		ownPrePrepare: pp,
	}
	return pp
}

// Handle processes one message and returns the messages to broadcast in
// response. Invalid messages return ErrInvalid-wrapped errors and change no
// state; stale or not-yet-processable messages return nil.
func (r *Replica) Handle(m Message) ([]Message, error) {
	var out []Message
	before := r.stamp()
	err := r.handle(m, &out)
	if r.stamp() != before {
		// Only a state transition can make buffered messages processable.
		r.drainFuture(&out)
	}
	return out, err
}

// maxSigCache bounds the verified-signature memo; on overflow the whole map
// is dropped and re-verification costs are paid again, which only hurts the
// buffered-message drain, never correctness.
const maxSigCache = 1 << 16

// verifyCached checks sig over d by pub, memoizing successes.
func (r *Replica) verifyCached(d hashsig.Digest, sig hashsig.Signature, pub *hashsig.PublicKey) bool {
	if r.sigOK[d] {
		return true
	}
	if !pub.Verify(d, sig) {
		return false
	}
	if len(r.sigOK) >= maxSigCache {
		r.sigOK = make(map[hashsig.Digest]bool)
	}
	r.sigOK[d] = true
	return true
}

// stateStamp summarizes the coordinates that gate message processability.
type stateStamp struct {
	view      uint64
	committed uint64
	curSet    bool
	inVC      bool
}

func (r *Replica) stamp() stateStamp {
	return stateStamp{r.view, r.committed, r.cur != nil, r.inViewChange}
}

// drainFuture re-feeds buffered messages for as long as doing so advances
// the replica. Messages that are still premature re-buffer themselves.
func (r *Replica) drainFuture(out *[]Message) {
	for {
		if len(r.future) == 0 {
			return
		}
		st := r.stamp()
		pending := r.future
		r.future = nil
		for _, m := range pending {
			// Errors from buffered messages were either already reported at
			// receipt time or are stale-view artifacts; drop them.
			_ = r.handle(m, out)
		}
		if r.stamp() == st {
			return
		}
	}
}

func (r *Replica) buffer(m Message) {
	if len(r.future) >= maxFuture {
		r.future = r.future[1:]
	}
	r.future = append(r.future, m)
}

func (r *Replica) handle(m Message, out *[]Message) error {
	switch msg := m.(type) {
	case *PrePrepare:
		return r.handlePrePrepare(msg, out)
	case *Prepare:
		return r.handlePrepare(msg, out)
	case *Commit:
		return r.handleCommit(msg, out)
	case *ViewChange:
		return r.handleViewChange(msg, out)
	case *NewView:
		return r.handleNewView(msg, out)
	default:
		return fmt.Errorf("%w: unknown message %T", ErrInvalid, m)
	}
}

// checkEquivocation records prop as the canonical proposal for its slot, or
// — if a different proposal already holds the slot — captures blame against
// the primary and reports the conflict.
func (r *Replica) checkEquivocation(prop *Proposal) bool {
	key := slotKey{prop.View, prop.Seq()}
	if key.seq > r.committed+1 {
		// Outside the proposal window: the message gets buffered and
		// re-checked once in range. Recording it now would let a Byzantine
		// peer grow the map without bound by signing far-future slots.
		return false
	}
	prev, ok := r.seen[key]
	if !ok {
		r.seen[key] = prop
		return false
	}
	if prev.Header.SigningDigest() == prop.Header.SigningDigest() {
		return false
	}
	if !r.blamed[key] {
		if bl := blameFrom(prev, prop, r.cfg.Peers[prop.Primary]); bl != nil {
			r.blamed[key] = true
			r.evidence = append(r.evidence, bl)
		}
	}
	return true
}

// validateProposal checks a proposal's provenance: right primary for its
// view, valid proposal signature, valid header signature by the same key.
func (r *Replica) validateProposal(prop *Proposal) error {
	if int(prop.Primary) >= r.n || prop.Primary != r.primaryOf(prop.View) {
		return fmt.Errorf("%w: proposal from %d for view %d", ErrInvalid, prop.Primary, prop.View)
	}
	pub := r.cfg.Peers[prop.Primary]
	if !r.verifyCached(prop.SigningDigest(), prop.Sig, pub) {
		return fmt.Errorf("%w: bad proposal signature", ErrInvalid)
	}
	if !r.verifyCached(prop.Header.SigningDigest(), prop.Header.Sig, pub) {
		return fmt.Errorf("%w: bad header signature", ErrInvalid)
	}
	return nil
}

func (r *Replica) handlePrePrepare(pp *PrePrepare, out *[]Message) error {
	prop := &pp.Prop
	if err := r.validateProposal(prop); err != nil {
		return err
	}
	seq := prop.Seq()
	if seq < r.committed || (seq == r.committed && seq == 0) {
		return nil // stale
	}
	if prop.View > r.view {
		r.buffer(pp)
		return nil
	}
	if r.checkEquivocation(prop) {
		return fmt.Errorf("%w: equivocating proposal at view %d seq %d", ErrInvalid, prop.View, seq)
	}
	if r.inViewChange {
		// Park it: if the view change lands us past this proposal's view,
		// the batch may still commit passively from its quorum's traffic.
		r.buffer(pp)
		return nil
	}

	if prop.View == r.view && seq == r.committed {
		// Re-proposal of a batch we already committed (a new primary helping
		// laggards finish): participate from our stored copy, no re-execution.
		return r.startReack(pp, out)
	}
	if seq != r.committed+1 {
		r.buffer(pp)
		return nil
	}

	passive := prop.View < r.view
	if r.cur != nil {
		if r.cur.prop.View == prop.View && r.cur.headerDigest == prop.Header.SigningDigest() {
			// Duplicate delivery; stragglers pull resends via Retransmit
			// (re-emitting here would echo-amplify every broadcast).
			return nil
		}
		if passive {
			return nil // one catch-up instance at a time; first wins
		}
		if !r.cur.passive && !r.cur.reack && r.cur.prop.View == prop.View {
			return nil // conflicting same-view proposal; blame recorded above
		}
		// A current-view proposal replaces a passive or re-ack instance.
		r.abandonInstance()
	}
	if !passive && r.mustRepropose != nil && prop.Header.SigningDigest() != *r.mustRepropose {
		return fmt.Errorf("%w: view %d primary must re-propose the prepared batch", ErrInvalid, r.view)
	}

	ownHeader, err := r.led.ApplyBatch(pp.Batch())
	if err != nil {
		return fmt.Errorf("%w: %v", ErrInvalid, err)
	}
	nonce := hashsig.NewNonce()
	in := &instance{
		prop:         prop,
		headerDigest: prop.Header.SigningDigest(),
		propDigest:   prop.SigningDigest(),
		entries:      pp.Entries,
		ownHeader:    ownHeader, // our own signature over the same commitments
		nonce:        nonce,
		passive:      passive,
		prepMsgs:     make(map[ReplicaID]*Prepare),
		opens:        make(map[ReplicaID]hashsig.Nonce),
	}
	r.cur = in
	if !passive {
		r.mustRepropose = nil
		prep := &Prepare{Replica: r.cfg.ID, Prop: *prop, NonceCommit: nonce.Commit()}
		prep.Sig = r.cfg.Key.MustSign(prep.SigningDigest())
		in.ownPrepare = prep
		in.prepMsgs[r.cfg.ID] = prep
		*out = append(*out, prep)
	}
	r.checkPrepared(out)
	r.checkCommitted(out)
	return nil
}

// startReack opens a participation-only instance for a batch this replica
// already committed, so replicas that missed the original round can gather
// a quorum in the new view.
func (r *Replica) startReack(pp *PrePrepare, out *[]Message) error {
	digest := pp.Prop.Header.SigningDigest()
	ownBatch := r.committedBatch()
	if ownBatch == nil || ownBatch.Header.SigningDigest() != digest {
		return fmt.Errorf("%w: re-proposal conflicts with committed batch %d", ErrInvalid, pp.Prop.Seq())
	}
	if r.cur != nil {
		if r.cur.prop.View == pp.Prop.View && r.cur.headerDigest == digest {
			return nil // duplicate delivery
		}
		if !r.cur.passive && !r.cur.reack {
			return nil
		}
		r.abandonInstance()
	}
	prop := &pp.Prop
	nonce := hashsig.NewNonce()
	in := &instance{
		prop:         prop,
		headerDigest: digest,
		propDigest:   prop.SigningDigest(),
		entries:      pp.Entries,
		ownHeader:    &ownBatch.Header,
		nonce:        nonce,
		reack:        true,
		prepMsgs:     make(map[ReplicaID]*Prepare),
		opens:        make(map[ReplicaID]hashsig.Nonce),
	}
	r.cur = in
	prep := &Prepare{Replica: r.cfg.ID, Prop: *prop, NonceCommit: nonce.Commit()}
	prep.Sig = r.cfg.Key.MustSign(prep.SigningDigest())
	in.ownPrepare = prep
	in.prepMsgs[r.cfg.ID] = prep
	*out = append(*out, prep)
	r.checkPrepared(out)
	return nil
}

// committedBatch returns this replica's stored batch for the committed seq,
// or nil.
func (r *Replica) committedBatch() *ledger.Batch {
	batches := r.led.Batches()
	for i := len(batches) - 1; i >= 0; i-- {
		if batches[i].Header.Seq == r.committed {
			return batches[i]
		}
	}
	return nil
}

// abandonInstance discards the in-flight instance, rolling back any
// speculative execution it put in the ledger (Lemma 1).
func (r *Replica) abandonInstance() {
	if r.cur == nil {
		return
	}
	if r.led.Seq() > r.committed+1 {
		if err := r.led.RollbackTo(r.committed + 1); err != nil {
			// The mark exists: every executed batch leaves one, and marks at
			// or above the committed boundary are never pruned.
			panic(err)
		}
	}
	r.cur = nil
}

func (r *Replica) handlePrepare(p *Prepare, out *[]Message) error {
	prop := &p.Prop
	if err := r.validateProposal(prop); err != nil {
		return err
	}
	if int(p.Replica) >= r.n || p.Replica == prop.Primary {
		return fmt.Errorf("%w: prepare from %d", ErrInvalid, p.Replica)
	}
	if !r.verifyCached(p.SigningDigest(), p.Sig, r.cfg.Peers[p.Replica]) {
		return fmt.Errorf("%w: bad prepare signature", ErrInvalid)
	}
	seq := prop.Seq()
	if seq < r.committed || (seq == r.committed && r.cur == nil) {
		return nil
	}
	if prop.View > r.view {
		r.buffer(p)
		return nil
	}
	r.checkEquivocation(prop)
	if r.inViewChange {
		r.buffer(p)
		return nil
	}
	if r.cur == nil || r.cur.propDigest != prop.SigningDigest() {
		if seq > r.committed {
			r.buffer(p)
		}
		return nil
	}
	if _, dup := r.cur.prepMsgs[p.Replica]; !dup {
		r.cur.prepMsgs[p.Replica] = p
	}
	r.checkPrepared(out)
	r.checkCommitted(out)
	return nil
}

func (r *Replica) handleCommit(c *Commit, out *[]Message) error {
	if int(c.Replica) >= r.n {
		return fmt.Errorf("%w: commit from %d", ErrInvalid, c.Replica)
	}
	if c.Seq < r.committed || (c.Seq == r.committed && r.cur == nil) {
		return nil
	}
	if c.View > r.view {
		r.buffer(c)
		return nil
	}
	if r.inViewChange {
		r.buffer(c)
		return nil
	}
	if r.cur == nil || r.cur.prop.View != c.View || r.cur.headerDigest != c.HeaderDigest ||
		r.cur.prop.Seq() != c.Seq {
		if c.Seq > r.committed {
			r.buffer(c)
		}
		return nil
	}
	// The nonce authenticates itself: it must open the commitment c.Replica
	// announced. Commits are unsigned, so the Replica field is spoofable —
	// never let a garbage nonce squat on an honest replica's slot: when the
	// commitment is known, only an opening nonce is recorded, and a stored
	// non-opening nonce is replaced by one that opens (genuine commits are
	// retransmitted, so a spoof that raced in first cannot block quorum).
	if cm, known := r.cur.commitment(c.Replica); known {
		if c.Nonce.Opens(cm) {
			r.cur.opens[c.Replica] = c.Nonce
		}
	} else if _, dup := r.cur.opens[c.Replica]; !dup {
		// Commitment not yet seen (prepare still in flight): hold the
		// candidate; openedQuorum validates it once the commitment lands.
		r.cur.opens[c.Replica] = c.Nonce
	}
	r.checkCommitted(out)
	return nil
}

// checkPrepared fires once 2f+1 distinct replicas back the proposal: the
// replica reveals its nonce in an unsigned commit message (Lemma 3).
func (r *Replica) checkPrepared(out *[]Message) {
	in := r.cur
	if in == nil || in.preparedCert || in.passive || in.endorsers() < r.quorum {
		return
	}
	in.preparedCert = true
	cm := &Commit{
		View:         in.prop.View,
		Replica:      r.cfg.ID,
		Seq:          in.prop.Seq(),
		HeaderDigest: in.headerDigest,
		Nonce:        in.nonce,
	}
	in.ownCommit = cm
	in.opens[r.cfg.ID] = in.nonce
	*out = append(*out, cm)
}

// checkCommitted fires once 2f+1 distinct replicas opened their
// commitments: the batch is final.
func (r *Replica) checkCommitted(out *[]Message) {
	in := r.cur
	if in == nil || in.openedQuorum() < r.quorum {
		return
	}
	seq := in.prop.Seq()
	cert := r.buildCommitCert(in)
	if seq > r.committed {
		r.committed = seq
		r.lastCommit = cert
		r.led.PruneMarks(seq)
		// Blame slots at or below the committed boundary stay recorded (the
		// evidence keeps its value), but the seen map is pruned to bound it.
		for k := range r.seen {
			if k.seq < seq {
				delete(r.seen, k)
			}
		}
	}
	r.cur = nil
	if r.pendingRepropose != nil && r.pendingRepropose.Prop.Seq() == r.committed+1 {
		pp := r.pendingRepropose
		r.pendingRepropose = nil
		r.reproposePrepared(pp, out)
	}
}

// buildCommitCert assembles the proof that the instance committed.
func (r *Replica) buildCommitCert(in *instance) *CommitCert {
	cert := &CommitCert{Prop: *in.prop}
	ids := make([]int, 0, len(in.prepMsgs))
	for id := range in.prepMsgs {
		ids = append(ids, int(id))
	}
	sort.Ints(ids)
	for _, id := range ids {
		cert.Prepares = append(cert.Prepares, *in.prepMsgs[ReplicaID(id)])
	}
	ids = ids[:0]
	for id := range in.opens {
		ids = append(ids, int(id))
	}
	sort.Ints(ids)
	for _, id := range ids {
		cert.Opens = append(cert.Opens, NonceOpen{Replica: ReplicaID(id), Nonce: in.opens[ReplicaID(id)]})
	}
	return cert
}

// OnTimeout abandons the current view and broadcasts a view change for the
// next one. Callers invoke it when progress has stalled; repeated calls
// escalate the target view.
func (r *Replica) OnTimeout() []Message {
	target := r.view + 1
	if r.inViewChange && r.vcTarget >= target {
		target = r.vcTarget + 1
	}
	return r.startViewChange(target)
}

// startViewChange emits this replica's view-change for the target view.
func (r *Replica) startViewChange(target uint64) []Message {
	r.inViewChange = true
	r.vcTarget = target
	vc := &ViewChange{
		NewView:      target,
		Replica:      r.cfg.ID,
		CommittedSeq: r.committed,
		CommitProof:  r.lastCommit,
	}
	if in := r.cur; in != nil && in.preparedCert && !in.reack && in.prop.Seq() > r.committed {
		vc.Prepared = &PrePrepare{Prop: *in.prop, Entries: in.entries}
		ids := make([]int, 0, len(in.prepMsgs))
		for id := range in.prepMsgs {
			ids = append(ids, int(id))
		}
		sort.Ints(ids)
		for _, id := range ids {
			vc.PrepareProof = append(vc.PrepareProof, *in.prepMsgs[ReplicaID(id)])
		}
	}
	vc.Sig = r.cfg.Key.MustSign(vc.SigningDigest())
	r.ownVC = vc
	r.recordViewChange(vc)
	out := []Message{vc}
	r.maybeEmitNewView(target, &out)
	return out
}

// validateViewChange checks a view-change's signature and both proofs.
func (r *Replica) validateViewChange(vc *ViewChange) error {
	if int(vc.Replica) >= r.n {
		return fmt.Errorf("%w: view-change from %d", ErrInvalid, vc.Replica)
	}
	if !r.verifyCached(vc.SigningDigest(), vc.Sig, r.cfg.Peers[vc.Replica]) {
		return fmt.Errorf("%w: bad view-change signature", ErrInvalid)
	}
	if vc.CommittedSeq > 0 {
		if vc.CommitProof == nil || vc.CommitProof.Seq() != vc.CommittedSeq ||
			!vc.CommitProof.verify(r.cfg.Peers, r.quorum, r.verifyCached) {
			return fmt.Errorf("%w: uncertified committed seq %d", ErrInvalid, vc.CommittedSeq)
		}
	}
	if vc.Prepared != nil {
		prop := &vc.Prepared.Prop
		if prop.Seq() != vc.CommittedSeq+1 || prop.View >= vc.NewView {
			return fmt.Errorf("%w: prepared batch out of place", ErrInvalid)
		}
		if err := r.validateProposal(prop); err != nil {
			return err
		}
		// The entries ride outside every signature (the view-change binds
		// only the proposal digest), so check they reproduce the signed ¯G:
		// a relayed certificate with tampered entries must not reach the
		// new primary, which would fail to re-execute it and stall the view.
		if err := ledger.CheckBatchShape(vc.Prepared.Batch()); err != nil {
			return fmt.Errorf("%w: prepared batch entries do not match header: %v", ErrInvalid, err)
		}
		endorsers := map[ReplicaID]bool{prop.Primary: true}
		d := prop.SigningDigest()
		for i := range vc.PrepareProof {
			p := &vc.PrepareProof[i]
			if int(p.Replica) >= r.n || p.Replica == prop.Primary {
				continue
			}
			if p.Prop.SigningDigest() != d || !r.verifyCached(p.SigningDigest(), p.Sig, r.cfg.Peers[p.Replica]) {
				return fmt.Errorf("%w: bad prepare proof", ErrInvalid)
			}
			endorsers[p.Replica] = true
		}
		if len(endorsers) < r.quorum {
			return fmt.Errorf("%w: prepared claim backed by %d < %d replicas", ErrInvalid, len(endorsers), r.quorum)
		}
	}
	return nil
}

func (r *Replica) recordViewChange(vc *ViewChange) {
	byID, ok := r.vcs[vc.NewView]
	if !ok {
		byID = make(map[ReplicaID]*ViewChange)
		r.vcs[vc.NewView] = byID
	}
	if _, dup := byID[vc.Replica]; !dup {
		byID[vc.Replica] = vc
	}
}

// maxViewAhead bounds how far above the local view-change target incoming
// view-changes are retained; honest targets escalate one view per timeout,
// so anything far beyond is a Byzantine attempt to grow the vcs map.
const maxViewAhead = 64

func (r *Replica) handleViewChange(vc *ViewChange, out *[]Message) error {
	if vc.NewView <= r.view {
		return nil
	}
	if vc.NewView > max(r.view, r.vcTarget)+maxViewAhead {
		return fmt.Errorf("%w: view-change for view %d is too far ahead", ErrInvalid, vc.NewView)
	}
	if err := r.validateViewChange(vc); err != nil {
		return err
	}
	if vc.Prepared != nil {
		r.checkEquivocation(&vc.Prepared.Prop)
	}
	r.recordViewChange(vc)
	// Join rule: f+1 distinct replicas already gave up on our view — at
	// least one is honest, so follow rather than stay behind.
	if !r.inViewChange || r.vcTarget < vc.NewView {
		if len(r.vcs[vc.NewView]) >= r.f+1 {
			*out = append(*out, r.startViewChange(vc.NewView)...)
			return nil
		}
	}
	r.maybeEmitNewView(vc.NewView, out)
	return nil
}

// maybeEmitNewView builds and broadcasts the new-view certificate once this
// replica is the target view's primary and holds a quorum of view-changes.
func (r *Replica) maybeEmitNewView(v uint64, out *[]Message) {
	if r.primaryOf(v) != r.cfg.ID || v <= r.view {
		return
	}
	byID := r.vcs[v]
	if len(byID) < r.quorum {
		return
	}
	nv := &NewView{View: v, Replica: r.cfg.ID}
	ids := make([]int, 0, len(byID))
	for id := range byID {
		ids = append(ids, int(id))
	}
	sort.Ints(ids)
	for _, id := range ids {
		nv.VCs = append(nv.VCs, *byID[ReplicaID(id)])
	}
	nv.Sig = r.cfg.Key.MustSign(nv.SigningDigest())
	r.lastNewView = nv
	*out = append(*out, nv)
	r.enterView(nv, out)
}

func (r *Replica) handleNewView(nv *NewView, out *[]Message) error {
	if nv.View <= r.view {
		return nil
	}
	if int(nv.Replica) >= r.n || nv.Replica != r.primaryOf(nv.View) {
		return fmt.Errorf("%w: new-view from %d", ErrInvalid, nv.Replica)
	}
	if !r.verifyCached(nv.SigningDigest(), nv.Sig, r.cfg.Peers[nv.Replica]) {
		return fmt.Errorf("%w: bad new-view signature", ErrInvalid)
	}
	seen := map[ReplicaID]bool{}
	for i := range nv.VCs {
		vc := &nv.VCs[i]
		if vc.NewView != nv.View {
			return fmt.Errorf("%w: certificate mixes views", ErrInvalid)
		}
		if err := r.validateViewChange(vc); err != nil {
			return err
		}
		seen[vc.Replica] = true
	}
	if len(seen) < r.quorum {
		return fmt.Errorf("%w: new-view backed by %d < %d replicas", ErrInvalid, len(seen), r.quorum)
	}
	r.enterView(nv, out)
	return nil
}

// enterView moves the replica into nv.View: speculative execution is rolled
// back to the committed boundary (Lemma 1), and the certificate determines
// both the commit high-water mark and the prepared batch the new primary is
// bound to re-propose.
func (r *Replica) enterView(nv *NewView, out *[]Message) {
	v := nv.View
	maxCommitted := uint64(0)
	var chosen *PrePrepare
	for i := range nv.VCs {
		vc := &nv.VCs[i]
		if vc.CommittedSeq > maxCommitted {
			maxCommitted = vc.CommittedSeq
		}
	}
	for i := range nv.VCs {
		pp := nv.VCs[i].Prepared
		if pp == nil || pp.Prop.Seq() != maxCommitted+1 {
			continue
		}
		if chosen == nil || pp.Prop.View < chosen.Prop.View {
			// Prefer the earliest view's certificate deterministically; two
			// genuine prepared certificates for one seq can only disagree
			// across views, and re-execution makes their headers identical,
			// so either choice re-proposes the same commitments.
			chosen = pp
		}
	}

	r.view = v
	r.inViewChange = false
	r.vcTarget = v
	r.ownVC = nil
	for tv := range r.vcs {
		if tv <= v {
			delete(r.vcs, tv)
		}
	}
	if in := r.cur; in != nil {
		if in.prop.Seq() <= r.committed {
			r.cur = nil // a re-ack of the old view; nothing speculative to undo
		} else {
			// Keep the speculation as a passive catch-up instance rather
			// than rolling it back outright: if its batch committed in the
			// old view, the openings already collected (and those still in
			// flight) complete it without any new-view traffic. A
			// conflicting re-proposal in the new view replaces it, rolling
			// the speculation back at that point (Lemma 1).
			in.passive = true
		}
	}
	r.mustRepropose = nil
	r.pendingRepropose = nil
	if maxCommitted > r.proposeFloor {
		r.proposeFloor = maxCommitted
	}

	isPrimary := r.primaryOf(v) == r.cfg.ID
	if chosen != nil {
		d := chosen.Prop.Header.SigningDigest()
		if chosen.Prop.Seq() == r.committed+1 {
			r.mustRepropose = &d
		}
		if isPrimary {
			r.reproposePrepared(chosen, out)
		}
	} else if isPrimary {
		// Leading a view with no surviving prepared batch: a leftover
		// passive instance can never complete (its batch demonstrably has
		// no prepared quorum, or it would be in the certificate), so clear
		// it rather than letting it block proposals.
		r.abandonInstance()
		if r.committed >= maxCommitted && r.committed > 0 {
			// Laggards may still need a quorum for the last committed batch
			// in this view: re-propose it.
			if b := r.committedBatch(); b != nil {
				*out = append(*out, r.proposeBatch(b))
			}
		}
	}
}

// reproposePrepared is the new primary's obligation: re-execute and
// re-propose the prepared batch from the view-change certificate. If the
// primary is still behind that sequence number it parks the batch and
// re-proposes as soon as it catches up.
func (r *Replica) reproposePrepared(pp *PrePrepare, out *[]Message) {
	seq := pp.Prop.Seq()
	switch {
	case seq <= r.committed:
		// Already committed here; re-propose our stored copy so laggards
		// can finish (their mustRepropose digest matches: deterministic
		// re-execution gives byte-identical header commitments).
		r.abandonInstance()
		if b := r.committedBatch(); b != nil && b.Header.Seq == seq {
			*out = append(*out, r.proposeBatch(b))
		}
	case seq == r.committed+1:
		// Any passive leftover occupies the ledger slot the re-proposal
		// needs; the re-proposal supersedes it either way.
		r.abandonInstance()
		batch := pp.Batch()
		ownHeader, err := r.led.ApplyBatch(batch)
		if err != nil {
			// A certified prepared batch re-executes cleanly by
			// construction; if the application is nondeterministic nothing
			// can be proposed safely.
			return
		}
		r.mustRepropose = nil
		*out = append(*out, r.proposeBatch(&ledger.Batch{Header: *ownHeader, Entries: batch.Entries}))
	default:
		r.pendingRepropose = pp
	}
}

// retransmitInstance re-emits this replica's own messages for the in-flight
// instance.
func (r *Replica) retransmitInstance(out *[]Message) {
	in := r.cur
	if in == nil {
		return
	}
	if in.ownPrePrepare != nil {
		*out = append(*out, in.ownPrePrepare)
	}
	if in.ownPrepare != nil {
		*out = append(*out, in.ownPrepare)
	}
	if in.ownCommit != nil {
		*out = append(*out, in.ownCommit)
	}
}

// Retransmit returns this replica's current outbound state — the messages a
// peer would need if earlier deliveries were lost. The simulation harness
// calls it to model timeout-driven resends.
func (r *Replica) Retransmit() []Message {
	var out []Message
	if r.inViewChange {
		if r.ownVC != nil {
			out = append(out, r.ownVC)
		}
		return out
	}
	if r.lastNewView != nil && r.lastNewView.View == r.view {
		out = append(out, r.lastNewView)
	}
	r.retransmitInstance(&out)
	return out
}
