package consensus

import (
	"cmp"
	"errors"
	"fmt"
	"slices"

	"iaccf/internal/hashsig"
	"iaccf/internal/ledger"
)

var (
	// ErrConfig reports an invalid replica configuration.
	ErrConfig = errors.New("consensus: config needs >= 4 peers, a matching key, and an app")
	// ErrNotPrimary reports a Propose call on a replica that is not the
	// primary of the current view, or not in a position to propose.
	ErrNotPrimary = errors.New("consensus: replica cannot propose now")
	// ErrInvalid reports a message that failed validation (bad signature,
	// wrong primary, malformed proof). Invalid messages never change state.
	ErrInvalid = errors.New("consensus: invalid message")
)

// DefaultWindow is the proposal window used when Config.Window is zero:
// the primary may have this many consecutive instances in flight before the
// oldest commits (paper §3, §6: pipelining consensus instances is what
// hides signing and verification latency between batches).
const DefaultWindow = 4

// Config parameterizes a Replica.
type Config struct {
	// ID is this replica's index; Peers[ID] must be Key's public half.
	ID ReplicaID
	// Key signs batch headers and protocol messages. One key per replica,
	// shared with its ledger, so blame evidence names the same identity the
	// ledger's signed headers do.
	Key *hashsig.PrivateKey
	// Peers holds every replica's public key, indexed by ReplicaID. The
	// configuration tolerates f = (len(Peers)-1)/3 faults.
	Peers []*hashsig.PublicKey
	// App executes transaction payloads (must be deterministic).
	App ledger.App
	// CheckpointEvery and Shards parameterize the underlying ledger.
	CheckpointEvery uint64
	Shards          uint32
	// Window is the proposal window W: how many consecutive instances may
	// be in flight at once. 0 means DefaultWindow. All replicas of one
	// configuration must agree on it (it bounds the prepared claims a
	// view-change may carry).
	Window int
	// Pool verifies protocol signatures; nil selects the process-wide
	// hashsig.DefaultPool.
	Pool *hashsig.VerifierPool
}

// slotKey identifies one proposal slot for equivocation detection.
type slotKey struct {
	view uint64
	seq  uint64
}

// instance is one in-flight consensus instance. A replica runs up to
// Window of them concurrently, at consecutive sequence numbers starting
// just above the committed boundary; instances are created in ledger order
// (execution is sequential) but their prepare/commit quorums may complete
// in any order — commits are applied in order by advanceCommits.
type instance struct {
	prop         *Proposal
	headerDigest hashsig.Digest // prop.Header.SigningDigest()
	propDigest   hashsig.Digest // prop.SigningDigest()
	entries      []ledger.Entry
	ownHeader    *ledger.BatchHeader
	nonce        hashsig.Nonce // own commit nonce
	// passive marks a catch-up instance replayed from an older view's
	// traffic: the replica executes and collects, but emits nothing, and
	// commits only on a full quorum of openings.
	passive bool
	// reack marks an instance for a seq this replica already committed.
	reack bool
	// prepMsgs holds the valid prepares seen, by backup (never the
	// primary, whose endorsement and nonce commitment ride in prop).
	prepMsgs map[ReplicaID]*Prepare
	// opens holds revealed nonces, validated against commitments lazily.
	opens        map[ReplicaID]hashsig.Nonce
	preparedCert bool
	// own messages, kept for retransmission.
	ownPrePrepare *PrePrepare
	ownPrepare    *Prepare
	ownCommit     *Commit
}

// endorsers counts distinct replicas backing the proposal: the primary via
// its proposal signature plus one per valid prepare.
func (in *instance) endorsers() int { return 1 + len(in.prepMsgs) }

// commitment returns the nonce commitment replica id announced for this
// instance, if known.
func (in *instance) commitment(id ReplicaID) (hashsig.Digest, bool) {
	if id == in.prop.Primary {
		return in.prop.NonceCommit, true
	}
	if p, ok := in.prepMsgs[id]; ok {
		return p.NonceCommit, true
	}
	return hashsig.Digest{}, false
}

// openedQuorum counts distinct replicas whose revealed nonce opens their
// announced commitment.
func (in *instance) openedQuorum() int {
	n := 0
	for id, nonce := range in.opens {
		if c, ok := in.commitment(id); ok && nonce.Opens(c) {
			n++
		}
	}
	return n
}

// Replica is one L-PBFT replica: a ledger plus the protocol state machine.
// It is single-threaded, like the replica loop it models: callers feed it
// one message (Handle) or one batch of messages (HandleAll) at a time and
// route the addressed envelopes it returns — Broadcast envelopes to every
// peer, unicast envelopes to exactly their Dest.
type Replica struct {
	cfg    Config
	n      int
	f      int
	quorum int // 2f+1
	window int
	led    *ledger.Ledger
	pool   *hashsig.VerifierPool

	view      uint64
	committed uint64 // highest committed batch seq (0 = none)
	// insts holds the in-flight window, keyed by sequence number. Keys are
	// always the contiguous range (committed, Ledger().Seq()): instances
	// are created in execution order and abandoned as a suffix.
	insts map[uint64]*instance
	// reacks holds participation-only instances for already committed
	// batches (a new primary re-proposing them so laggards can finish),
	// keyed by sequence number and bounded to the last Window commits.
	// They never touch the ledger: the replica answers from its stored
	// batch copy, lending its prepare and opening to the new round's
	// quorum. Without them a replica that committed seq could never help
	// re-form a quorum for it, and two laggards stuck below it would wait
	// forever (quorums need 2f+1 participants, committed-or-not).
	reacks map[uint64]*instance

	// lastCommit retains the proof for the latest committed batch, carried
	// in view-changes to certify CommittedSeq.
	lastCommit *CommitCert
	// recentOwn keeps this replica's own protocol messages for the last
	// Window committed instances. Retransmit re-emits them so a replica
	// that missed a whole pipelined window — the original broadcasts are
	// one-shot — can still rebuild passive catch-up instances and gather
	// the openings it needs, without a state-transfer protocol.
	recentOwn map[uint64][]Message

	// view-change state
	inViewChange bool
	vcTarget     uint64
	ownVC        *ViewChange
	vcs          map[uint64]map[ReplicaID]*ViewChange
	lastNewView  *NewView
	// mustRepropose pins, per sequence number, the header digest the
	// current view's primary is obliged to re-propose (from the new-view
	// certificate's contiguous prepared chain).
	mustRepropose map[uint64]hashsig.Digest
	// pendingRepropose is the chain a new primary must re-propose but
	// cannot yet, because it is still catching up to the chain's start.
	pendingRepropose []*PrePrepare
	// proposeFloor is the highest certified committed seq seen in a
	// new-view certificate; fresh proposals stay above it.
	proposeFloor uint64

	// seen records the first valid proposal per (view, seq); a second one
	// with a different header digest is equivocation.
	seen     map[slotKey]*Proposal
	evidence []*Blame
	blamed   map[slotKey]bool

	// future buffers messages that cannot be processed yet (later seq,
	// later view, or instance not created). Bounded; oldest dropped first.
	future []Message

	// sigOK memoizes successful signature checks by memoKey (digest,
	// signature, and key bound together), so buffered messages are not
	// re-verified on every drain pass; bounded by two-generation
	// eviction. peerID holds each peer key's precomputed ID digest for
	// those memo lookups.
	sigOK  *sigMemo
	peerID map[*hashsig.PublicKey]hashsig.Digest

	// sync is the checkpoint state-transfer state machine (sync.go): how
	// this replica recovers once the cluster has pruned the batches it
	// would need for in-window catch-up.
	sync syncState

	// gen counts state transitions that can make buffered messages
	// processable; Handle drains the future buffer when it advances.
	gen uint64
}

// maxFuture bounds the out-of-order buffer.
const maxFuture = 1 << 14

// New returns a replica with a fresh ledger.
func New(cfg Config) (*Replica, error) {
	n := len(cfg.Peers)
	if n < 4 || cfg.Key == nil || int(cfg.ID) >= n {
		return nil, ErrConfig
	}
	if cfg.Peers[cfg.ID] == nil || !cfg.Peers[cfg.ID].Equal(cfg.Key.Public()) {
		return nil, fmt.Errorf("%w: Peers[%d] is not Key's public half", ErrConfig, cfg.ID)
	}
	if cfg.Window < 0 {
		return nil, fmt.Errorf("%w: negative window %d", ErrConfig, cfg.Window)
	}
	if cfg.Window > maxPreparedClaims {
		// A view-change carries one prepared claim per in-window instance;
		// peers' decoders cap the list at maxPreparedClaims, so a larger
		// window could emit view-changes no peer accepts — a liveness loss
		// baked in at configuration time.
		return nil, fmt.Errorf("%w: window %d exceeds the decodable claim bound %d", ErrConfig, cfg.Window, maxPreparedClaims)
	}
	if cfg.Window == 0 {
		cfg.Window = DefaultWindow
	}
	led, err := ledger.New(ledger.Config{
		Key:             cfg.Key,
		App:             cfg.App,
		CheckpointEvery: cfg.CheckpointEvery,
		Shards:          cfg.Shards,
	})
	if err != nil {
		return nil, err
	}
	f := (n - 1) / 3
	pool := cfg.Pool
	if pool == nil {
		pool = hashsig.DefaultPool()
	}
	peerID := make(map[*hashsig.PublicKey]hashsig.Digest, n)
	for _, pub := range cfg.Peers {
		if pub != nil {
			peerID[pub] = pub.ID()
		}
	}
	return &Replica{
		cfg:           cfg,
		n:             n,
		f:             f,
		quorum:        2*f + 1,
		window:        cfg.Window,
		led:           led,
		pool:          pool,
		insts:         make(map[uint64]*instance),
		reacks:        make(map[uint64]*instance),
		recentOwn:     make(map[uint64][]Message),
		vcs:           make(map[uint64]map[ReplicaID]*ViewChange),
		mustRepropose: make(map[uint64]hashsig.Digest),
		seen:          make(map[slotKey]*Proposal),
		blamed:        make(map[slotKey]bool),
		sigOK:         newSigMemo(),
		peerID:        peerID,
	}, nil
}

// ID returns this replica's index.
func (r *Replica) ID() ReplicaID { return r.cfg.ID }

// View returns the current view number.
func (r *Replica) View() uint64 { return r.view }

// Committed returns the highest committed batch sequence number (0 before
// the first commit).
func (r *Replica) Committed() uint64 { return r.committed }

// Window returns the configured proposal window W.
func (r *Replica) Window() int { return r.window }

// InFlight returns the number of speculative instances currently open
// (excluding re-acks of already committed batches).
func (r *Replica) InFlight() int { return len(r.insts) }

// NextProposalSeq returns the sequence number the next Propose call would
// use: the ledger's next batch, one past the speculative chain.
func (r *Replica) NextProposalSeq() uint64 { return r.led.Seq() }

// Ledger exposes the replica's ledger (read-only use by callers).
func (r *Replica) Ledger() *ledger.Ledger { return r.led }

// Evidence returns the blame objects collected so far, as a fresh slice.
func (r *Replica) Evidence() []*Blame {
	return append([]*Blame(nil), r.evidence...)
}

// DebugState renders the replica's protocol coordinates for harness
// failure reports.
func (r *Replica) DebugState() string {
	win := "idle"
	if len(r.insts) > 0 || len(r.reacks) > 0 {
		win = ""
		for _, seq := range sortedKeys(r.insts) {
			in := r.insts[seq]
			win += fmt.Sprintf("inst{view %d seq %d passive %v prepared %v endorsers %d opens %d} ",
				in.prop.View, seq, in.passive, in.preparedCert, in.endorsers(), len(in.opens))
		}
		for _, seq := range sortedKeys(r.reacks) {
			in := r.reacks[seq]
			win += fmt.Sprintf("reack{view %d seq %d endorsers %d opens %d} ", in.prop.View, seq, in.endorsers(), len(in.opens))
		}
	}
	return fmt.Sprintf("replica %d: view %d committed %d window %d vc %v(target %d) floor %d obligations %d pending %d future %d sync %d(ahead %d) retained %d %s",
		r.cfg.ID, r.view, r.committed, r.window, r.inViewChange, r.vcTarget, r.proposeFloor,
		len(r.mustRepropose), len(r.pendingRepropose), len(r.future), r.sync.phase, r.sync.ahead,
		r.led.RetainedBatches(), win)
}

// sortedKeys returns m's keys in ascending order. Every place the replica
// iterates a protocol map — window instances, re-acks, certificate
// assembly — must do so deterministically, or identical replicas would
// emit differently-ordered (and differently-signed-over) messages.
func sortedKeys[K cmp.Ordered, V any](m map[K]V) []K {
	keys := make([]K, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	slices.Sort(keys)
	return keys
}

// primaryOf returns the primary of view v.
func (r *Replica) primaryOf(v uint64) ReplicaID { return ReplicaID(v % uint64(r.n)) }

// IsPrimary reports whether this replica leads the current view.
func (r *Replica) IsPrimary() bool { return r.primaryOf(r.view) == r.cfg.ID }

// CanPropose reports whether the replica could start a new instance now:
// no view change pending, no re-proposal obligation, caught up to every
// certified commit it knows about, and a free slot in the proposal window.
func (r *Replica) CanPropose() bool {
	return !r.inViewChange && len(r.mustRepropose) == 0 &&
		len(r.pendingRepropose) == 0 && r.committed >= r.proposeFloor &&
		len(r.insts) < r.window
}

// Idle reports whether the replica has nothing in flight at all: no open
// instances, no re-acks, and CanPropose holds. With a window above one a
// pipelining primary is rarely Idle — use CanPropose to pace proposals.
func (r *Replica) Idle() bool {
	return len(r.insts) == 0 && len(r.reacks) == 0 && r.CanPropose()
}

// Propose executes reqs as the next batch and returns the pre-prepare to
// broadcast plus the client receipts. Only the primary may propose, and
// only while the proposal window has room (CanPropose).
func (r *Replica) Propose(reqs []ledger.Request) (*PrePrepare, []ledger.Receipt, error) {
	if !r.IsPrimary() || !r.CanPropose() {
		return nil, nil, ErrNotPrimary
	}
	batch, receipts, err := r.led.ExecuteBatch(reqs)
	if err != nil {
		return nil, nil, err
	}
	pp := r.proposeBatch(batch)
	return pp, receipts, nil
}

// proposeBatch wraps an already-executed batch (ExecuteBatch or ApplyBatch
// output adopted into the ledger) into a proposal and opens the instance.
// A batch at or below the committed boundary opens as a re-ack.
func (r *Replica) proposeBatch(batch *ledger.Batch) *PrePrepare {
	nonce := hashsig.NewNonce()
	prop := &Proposal{
		View:        r.view,
		Primary:     r.cfg.ID,
		Header:      batch.Header,
		NonceCommit: nonce.Commit(),
	}
	prop.Sig = r.cfg.Key.MustSign(prop.SigningDigest())
	pp := &PrePrepare{Prop: *prop, Entries: batch.Entries}
	r.seen[slotKey{prop.View, prop.Seq()}] = prop
	in := &instance{
		prop:          prop,
		headerDigest:  prop.Header.SigningDigest(),
		propDigest:    prop.SigningDigest(),
		entries:       batch.Entries,
		ownHeader:     &batch.Header,
		nonce:         nonce,
		reack:         prop.Seq() <= r.committed,
		prepMsgs:      make(map[ReplicaID]*Prepare),
		opens:         make(map[ReplicaID]hashsig.Nonce),
		ownPrePrepare: pp,
	}
	if in.reack {
		r.reacks[prop.Seq()] = in
	} else {
		r.insts[prop.Seq()] = in
	}
	r.gen++
	return pp
}

// Handle processes one message and returns the addressed envelopes to send
// in response. Invalid messages return ErrInvalid-wrapped errors and change
// no state; stale or not-yet-processable messages return nil.
func (r *Replica) Handle(m Message) ([]Outbound, error) {
	var out []Outbound
	before := r.gen
	err := r.handle(m, &out)
	if r.gen != before {
		// Only a state transition can make buffered messages processable.
		r.drainFuture(&out)
	}
	return out, err
}

// drainFuture re-feeds buffered messages for as long as doing so advances
// the replica. Messages that are still premature re-buffer themselves.
func (r *Replica) drainFuture(out *[]Outbound) {
	for {
		if len(r.future) == 0 {
			return
		}
		before := r.gen
		pending := r.future
		r.future = nil
		for _, m := range pending {
			// Errors from buffered messages were either already reported at
			// receipt time or are stale-view artifacts; drop them.
			_ = r.handle(m, out)
		}
		if r.gen == before {
			return
		}
	}
}

func (r *Replica) buffer(m Message) {
	// Ack-and-discard: a delayed retransmit (or a later-view copy) of a
	// message for a batch below the retained re-ack window can never be
	// processed — the replica checkpointed past it and its peers pruned it.
	// Buffering it would leak it until maxFuture churn under long
	// adversarial schedules.
	if seq, ok := messageSeq(m); ok && seq > 0 && seq+uint64(r.window) <= r.committed {
		return
	}
	if len(r.future) >= maxFuture {
		r.future = r.future[1:]
	}
	r.future = append(r.future, m)
}

func (r *Replica) handle(m Message, out *[]Outbound) error {
	switch msg := m.(type) {
	case *PrePrepare:
		return r.handlePrePrepare(msg, out)
	case *Prepare:
		return r.handlePrepare(msg, out)
	case *Commit:
		return r.handleCommit(msg, out)
	case *ViewChange:
		return r.handleViewChange(msg, out)
	case *NewView:
		return r.handleNewView(msg, out)
	case *SyncRequest:
		return r.handleSyncRequest(msg, out)
	case *SyncAvail:
		return r.handleSyncAvail(msg, out)
	case *SyncChunkRequest:
		return r.handleSyncChunkRequest(msg, out)
	case *SyncChunk:
		return r.handleSyncChunk(msg, out)
	default:
		return fmt.Errorf("%w: unknown message %T", ErrInvalid, m)
	}
}

// checkEquivocation records prop as the canonical proposal for its slot, or
// — if a different proposal already holds the slot — captures blame against
// the primary and reports the conflict.
func (r *Replica) checkEquivocation(prop *Proposal) bool {
	key := slotKey{prop.View, prop.Seq()}
	if key.seq > r.committed+uint64(r.window) {
		// Outside the proposal window: the message gets buffered and
		// re-checked once in range. Recording it now would let a Byzantine
		// peer grow the map without bound by signing far-future slots.
		return false
	}
	prev, ok := r.seen[key]
	if !ok {
		r.seen[key] = prop
		return false
	}
	if prev.Header.SigningDigest() == prop.Header.SigningDigest() {
		return false
	}
	if !r.blamed[key] {
		if bl := blameFrom(prev, prop, r.cfg.Peers[prop.Primary]); bl != nil {
			r.blamed[key] = true
			r.evidence = append(r.evidence, bl)
		}
	}
	return true
}

// proposalStructure checks a proposal's identity claims: right primary for
// its view, indices in range.
func (r *Replica) proposalStructure(prop *Proposal) error {
	if int(prop.Primary) >= r.n || prop.Primary != r.primaryOf(prop.View) {
		return fmt.Errorf("%w: proposal from %d for view %d", ErrInvalid, prop.Primary, prop.View)
	}
	return nil
}

// validateProposal checks a proposal's provenance: right primary for its
// view, valid proposal signature, valid header signature by the same key.
func (r *Replica) validateProposal(prop *Proposal) error {
	if err := r.proposalStructure(prop); err != nil {
		return err
	}
	if !r.verifyTasks(r.proposalTasks(prop, nil)) {
		return fmt.Errorf("%w: bad proposal or header signature", ErrInvalid)
	}
	return nil
}

// instanceAt returns the in-flight instance owning seq: a window instance
// above the committed boundary, a re-ack at or below it (the two maps'
// key ranges are disjoint).
func (r *Replica) instanceAt(seq uint64) *instance {
	if in, ok := r.insts[seq]; ok {
		return in
	}
	return r.reacks[seq]
}

func (r *Replica) handlePrePrepare(pp *PrePrepare, out *[]Outbound) error {
	prop := &pp.Prop
	if err := r.validateProposal(prop); err != nil {
		return err
	}
	seq := prop.Seq()
	if seq == 0 || seq+uint64(r.window) <= r.committed {
		return nil // stale: outside the retained re-ack window
	}
	if prop.View > r.view {
		r.buffer(pp)
		return nil
	}
	if r.checkEquivocation(prop) {
		return fmt.Errorf("%w: equivocating proposal at view %d seq %d", ErrInvalid, prop.View, seq)
	}
	if r.inViewChange {
		// Park it: if the view change lands us past this proposal's view,
		// the batch may still commit passively from its quorum's traffic.
		r.buffer(pp)
		return nil
	}

	if seq <= r.committed {
		if prop.View < r.view {
			return nil // an old view's re-proposal; nothing to gain
		}
		// Re-proposal of a batch we already committed (a new primary helping
		// laggards finish): participate from our stored copy, no re-execution.
		return r.startReack(pp, out)
	}
	if seq > r.committed+uint64(r.window) {
		// A validly signed proposal at seq implies its primary committed at
		// least seq-window: evidence this replica may be beyond in-window
		// catch-up (sync.go decides after patience).
		r.noteAhead(seq - uint64(r.window))
		r.buffer(pp)
		return nil
	}

	passive := prop.View < r.view
	if in := r.insts[seq]; in != nil {
		if in.prop.View == prop.View && in.headerDigest == prop.Header.SigningDigest() {
			// Duplicate delivery; stragglers pull resends via Retransmit
			// (re-emitting here would echo-amplify every broadcast).
			return nil
		}
		if passive {
			return nil // one catch-up instance per slot; first wins
		}
		if !in.passive && in.prop.View == prop.View {
			return nil // conflicting same-view proposal; blame recorded above
		}
		// A current-view proposal replaces an older view's passive
		// speculation — which, sitting in the ledger, takes every later
		// speculative batch down with it (Lemma 1, suffix rollback).
		r.abandonFrom(seq)
	}
	if seq != r.led.Seq() {
		// In the window but ahead of the execution chain (an earlier
		// pre-prepare is still missing): wait for the gap to fill.
		r.buffer(pp)
		return nil
	}
	if !passive {
		if want, pinned := r.mustRepropose[seq]; pinned && prop.Header.SigningDigest() != want {
			return fmt.Errorf("%w: view %d primary must re-propose the prepared batch at seq %d", ErrInvalid, r.view, seq)
		}
	}

	ownHeader, err := r.led.ApplyBatch(pp.Batch())
	if err != nil {
		return fmt.Errorf("%w: %v", ErrInvalid, err)
	}
	nonce := hashsig.NewNonce()
	in := &instance{
		prop:         prop,
		headerDigest: prop.Header.SigningDigest(),
		propDigest:   prop.SigningDigest(),
		entries:      pp.Entries,
		ownHeader:    ownHeader, // our own signature over the same commitments
		nonce:        nonce,
		passive:      passive,
		prepMsgs:     make(map[ReplicaID]*Prepare),
		opens:        make(map[ReplicaID]hashsig.Nonce),
	}
	r.insts[seq] = in
	r.gen++
	if !passive {
		delete(r.mustRepropose, seq)
		prep := &Prepare{Replica: r.cfg.ID, Prop: *prop, NonceCommit: nonce.Commit()}
		prep.Sig = r.cfg.Key.MustSign(prep.SigningDigest())
		in.ownPrepare = prep
		in.prepMsgs[r.cfg.ID] = prep
		*out = append(*out, toAll(prep))
	}
	r.checkPrepared(in, out)
	r.advanceCommits(out)
	return nil
}

// startReack opens a participation-only instance for a batch this replica
// already committed, so replicas that missed the original round can gather
// a quorum in the new view.
func (r *Replica) startReack(pp *PrePrepare, out *[]Outbound) error {
	seq := pp.Prop.Seq()
	digest := pp.Prop.Header.SigningDigest()
	ownBatch := r.committedBatch(seq)
	if ownBatch == nil || ownBatch.Header.SigningDigest() != digest {
		return fmt.Errorf("%w: re-proposal conflicts with committed batch %d", ErrInvalid, seq)
	}
	if in := r.reacks[seq]; in != nil && in.prop.View >= pp.Prop.View {
		return nil // duplicate delivery (same-view conflicts blame earlier)
	}
	prop := &pp.Prop
	nonce := hashsig.NewNonce()
	in := &instance{
		prop:         prop,
		headerDigest: digest,
		propDigest:   prop.SigningDigest(),
		entries:      pp.Entries,
		ownHeader:    &ownBatch.Header,
		nonce:        nonce,
		reack:        true,
		prepMsgs:     make(map[ReplicaID]*Prepare),
		opens:        make(map[ReplicaID]hashsig.Nonce),
	}
	r.reacks[seq] = in
	r.gen++
	prep := &Prepare{Replica: r.cfg.ID, Prop: *prop, NonceCommit: nonce.Commit()}
	prep.Sig = r.cfg.Key.MustSign(prep.SigningDigest())
	in.ownPrepare = prep
	in.prepMsgs[r.cfg.ID] = prep
	*out = append(*out, toAll(prep))
	r.checkPrepared(in, out)
	return nil
}

// committedBatch returns this replica's stored batch for a committed seq,
// or nil.
func (r *Replica) committedBatch(seq uint64) *ledger.Batch {
	if seq > r.committed {
		return nil
	}
	return r.led.BatchAt(seq)
}

// abandonFrom discards the in-flight instance at seq and every later one,
// rolling back the speculative execution they put in the ledger (Lemma 1).
func (r *Replica) abandonFrom(seq uint64) {
	dropped := false
	for s := range r.insts {
		if s >= seq {
			delete(r.insts, s)
			dropped = true
		}
	}
	if !dropped {
		return
	}
	if r.led.Seq() > seq {
		if err := r.led.RollbackTo(seq); err != nil {
			if errors.Is(err, ledger.ErrPruned) {
				// The rollback target fell below the pruned checkpoint
				// boundary: local history can no longer reach the state the
				// protocol needs, so route into state transfer instead of
				// crashing — the sync protocol replaces the whole ledger with
				// a verified checkpoint.
				r.sync.force = true
				r.gen++
				return
			}
			// The mark exists: every executed batch leaves one, and marks at
			// or above the committed boundary are never pruned.
			panic(err)
		}
	}
	r.gen++
}

func (r *Replica) handlePrepare(p *Prepare, out *[]Outbound) error {
	prop := &p.Prop
	if err := r.proposalStructure(prop); err != nil {
		return err
	}
	if int(p.Replica) >= r.n || p.Replica == prop.Primary {
		return fmt.Errorf("%w: prepare from %d", ErrInvalid, p.Replica)
	}
	// All three signature checks — the carried proposal's pair and the
	// backup's own — go through the memo and pool in one pass.
	if !r.verifyTasks(r.prepareTasks(p, nil)) {
		return fmt.Errorf("%w: bad signature in prepare from %d", ErrInvalid, p.Replica)
	}
	seq := prop.Seq()
	if seq <= r.committed && r.reacks[seq] == nil {
		return nil
	}
	if prop.View > r.view {
		r.buffer(p)
		return nil
	}
	r.checkEquivocation(prop)
	if r.inViewChange {
		r.buffer(p)
		return nil
	}
	in := r.instanceAt(seq)
	if in == nil || in.propDigest != prop.SigningDigest() {
		if seq > r.committed {
			r.buffer(p)
		}
		return nil
	}
	if _, dup := in.prepMsgs[p.Replica]; !dup {
		in.prepMsgs[p.Replica] = p
	}
	r.checkPrepared(in, out)
	r.advanceCommits(out)
	return nil
}

func (r *Replica) handleCommit(c *Commit, out *[]Outbound) error {
	if int(c.Replica) >= r.n {
		return fmt.Errorf("%w: commit from %d", ErrInvalid, c.Replica)
	}
	if c.Seq <= r.committed && r.reacks[c.Seq] == nil {
		return nil
	}
	if c.View > r.view {
		r.buffer(c)
		return nil
	}
	if r.inViewChange {
		r.buffer(c)
		return nil
	}
	in := r.instanceAt(c.Seq)
	if in == nil || in.prop.View != c.View || in.headerDigest != c.HeaderDigest ||
		in.prop.Seq() != c.Seq {
		if c.Seq > r.committed {
			r.buffer(c)
		}
		return nil
	}
	// The nonce authenticates itself: it must open the commitment c.Replica
	// announced. Commits are unsigned, so the Replica field is spoofable —
	// never let a garbage nonce squat on an honest replica's slot: when the
	// commitment is known, only an opening nonce is recorded, and a stored
	// non-opening nonce is replaced by one that opens (genuine commits are
	// retransmitted, so a spoof that raced in first cannot block quorum).
	if cm, known := in.commitment(c.Replica); known {
		if c.Nonce.Opens(cm) {
			in.opens[c.Replica] = c.Nonce
		}
	} else if _, dup := in.opens[c.Replica]; !dup {
		// Commitment not yet seen (prepare still in flight): hold the
		// candidate; openedQuorum validates it once the commitment lands.
		in.opens[c.Replica] = c.Nonce
	}
	r.advanceCommits(out)
	return nil
}

// checkPrepared fires once 2f+1 distinct replicas back the instance's
// proposal: the replica reveals its nonce in an unsigned commit message
// (Lemma 3).
func (r *Replica) checkPrepared(in *instance, out *[]Outbound) {
	if in == nil || in.preparedCert || in.passive || in.endorsers() < r.quorum {
		return
	}
	in.preparedCert = true
	cm := &Commit{
		View:         in.prop.View,
		Replica:      r.cfg.ID,
		Seq:          in.prop.Seq(),
		HeaderDigest: in.headerDigest,
		Nonce:        in.nonce,
	}
	in.ownCommit = cm
	in.opens[r.cfg.ID] = in.nonce
	*out = append(*out, toAll(cm))
}

// advanceCommits applies every completion the window allows, strictly in
// order: the instance just above the committed boundary commits once 2f+1
// distinct replicas opened their commitments, which may unblock the next.
// Quorums that completed out of order simply wait here, fully buffered,
// until their predecessors commit. A completed re-ack is dropped (its
// batch was already committed).
func (r *Replica) advanceCommits(out *[]Outbound) {
	progressed := false
	for {
		seq := r.committed + 1
		in := r.insts[seq]
		if in == nil || in.openedQuorum() < r.quorum {
			break
		}
		progressed = true
		cert := r.buildCommitCert(in)
		delete(r.insts, seq)
		r.committed = seq
		r.lastCommit = cert
		r.retainOwn(seq, in)
		r.led.PruneMarks(seq)
		delete(r.mustRepropose, seq)
		// Blame slots at or below the committed boundary stay recorded (the
		// evidence keeps its value), but the seen map is pruned to bound it.
		for k := range r.seen {
			if k.seq < seq {
				delete(r.seen, k)
			}
		}
		r.gen++
	}
	if progressed {
		// Commits advanced past a checkpoint boundary eventually: drop
		// batches below both the latest committed checkpoint and the re-ack
		// window, bounding retained ledger memory (sync.go serves anything
		// older via chunked state transfer).
		r.maybePrune()
	}
	// Close out re-acks that served their purpose (full quorum of
	// openings re-formed) or slid out of the retained window.
	for seq, in := range r.reacks {
		if seq+uint64(r.window) <= r.committed || in.openedQuorum() >= r.quorum {
			delete(r.reacks, seq)
			r.gen++
		}
	}
	// A parked re-proposal chain resumes the moment the primary reaches its
	// start.
	for len(r.pendingRepropose) > 0 && r.pendingRepropose[0].Prop.Seq() <= r.committed {
		r.pendingRepropose = r.pendingRepropose[1:]
	}
	if len(r.pendingRepropose) > 0 && r.pendingRepropose[0].Prop.Seq() == r.committed+1 {
		chain := r.pendingRepropose
		r.pendingRepropose = nil
		r.reproposeChain(chain, out)
	}
}

// buildCommitCert assembles the proof that the instance committed.
func (r *Replica) buildCommitCert(in *instance) *CommitCert {
	cert := &CommitCert{Prop: *in.prop}
	for _, id := range sortedKeys(in.prepMsgs) {
		cert.Prepares = append(cert.Prepares, *in.prepMsgs[id])
	}
	for _, id := range sortedKeys(in.opens) {
		cert.Opens = append(cert.Opens, NonceOpen{Replica: id, Nonce: in.opens[id]})
	}
	return cert
}

// retainOwn records the replica's own messages for a just-committed
// instance and prunes retention to the last Window sequence numbers. A
// passive instance contributes nothing (it never emitted).
func (r *Replica) retainOwn(seq uint64, in *instance) {
	var own []Message
	r.retransmitInstance(in, &own)
	if len(own) > 0 {
		r.recentOwn[seq] = own
	}
	for s := range r.recentOwn {
		if s+uint64(r.window) <= seq {
			delete(r.recentOwn, s)
		}
	}
}

// OnTimeout abandons the current view and broadcasts a view change for the
// next one. Callers invoke it when progress has stalled; repeated calls
// escalate the target view.
func (r *Replica) OnTimeout() []Outbound {
	target := r.view + 1
	if r.inViewChange && r.vcTarget >= target {
		target = r.vcTarget + 1
	}
	return r.startViewChange(target)
}

// startViewChange emits this replica's view-change for the target view,
// carrying a prepared claim for every in-window instance that reached its
// prepare quorum (quorums can form out of order, so the claims may be
// non-contiguous).
func (r *Replica) startViewChange(target uint64) []Outbound {
	r.inViewChange = true
	r.vcTarget = target
	r.gen++
	vc := &ViewChange{
		NewView:      target,
		Replica:      r.cfg.ID,
		CommittedSeq: r.committed,
		CommitProof:  r.lastCommit,
	}
	for _, seq := range sortedKeys(r.insts) {
		in := r.insts[seq]
		if !in.preparedCert || seq <= r.committed {
			continue
		}
		claim := PreparedProof{PP: PrePrepare{Prop: *in.prop, Entries: in.entries}}
		for _, id := range sortedKeys(in.prepMsgs) {
			claim.Prepares = append(claim.Prepares, *in.prepMsgs[id])
		}
		vc.Prepared = append(vc.Prepared, claim)
	}
	vc.Sig = r.cfg.Key.MustSign(vc.SigningDigest())
	r.ownVC = vc
	r.recordViewChange(vc)
	out := []Outbound{toAll(vc)}
	r.maybeEmitNewView(target, &out)
	return out
}

// viewChangeStructure checks everything about a view-change except
// signature validity, appending the owed signature checks to tasks.
func (r *Replica) viewChangeStructure(vc *ViewChange, tasks *[]hashsig.VerifyTask) error {
	if int(vc.Replica) >= r.n {
		return fmt.Errorf("%w: view-change from %d", ErrInvalid, vc.Replica)
	}
	*tasks = append(*tasks, hashsig.VerifyTask{
		Key: r.cfg.Peers[vc.Replica], Digest: vc.SigningDigest(), Sig: vc.Sig})
	if vc.CommittedSeq > 0 {
		if vc.CommitProof == nil || vc.CommitProof.Seq() != vc.CommittedSeq {
			return fmt.Errorf("%w: uncertified committed seq %d", ErrInvalid, vc.CommittedSeq)
		}
		ts, ok := vc.CommitProof.structure(r.cfg.Peers, r.quorum)
		if !ok {
			return fmt.Errorf("%w: uncertified committed seq %d", ErrInvalid, vc.CommittedSeq)
		}
		*tasks = append(*tasks, ts...)
	}
	lastSeq := vc.CommittedSeq
	for i := range vc.Prepared {
		claim := &vc.Prepared[i]
		prop := &claim.PP.Prop
		seq := prop.Seq()
		if seq <= lastSeq || seq > vc.CommittedSeq+uint64(r.window) {
			return fmt.Errorf("%w: prepared batch at seq %d out of place", ErrInvalid, seq)
		}
		lastSeq = seq
		if prop.View >= vc.NewView {
			return fmt.Errorf("%w: prepared batch from view %d >= target %d", ErrInvalid, prop.View, vc.NewView)
		}
		if err := r.proposalStructure(prop); err != nil {
			return err
		}
		*tasks = r.proposalTasks(prop, *tasks)
		// The entries ride outside every signature (the view-change binds
		// only the proposal digest), so check they reproduce the signed ¯G:
		// a relayed certificate with tampered entries must not reach the
		// new primary, which would fail to re-execute it and stall the view.
		if err := ledger.CheckBatchShape(claim.PP.Batch()); err != nil {
			return fmt.Errorf("%w: prepared batch entries do not match header: %v", ErrInvalid, err)
		}
		endorsers := map[ReplicaID]bool{prop.Primary: true}
		d := prop.SigningDigest()
		for j := range claim.Prepares {
			p := &claim.Prepares[j]
			if int(p.Replica) >= r.n || p.Replica == prop.Primary {
				continue
			}
			if p.Prop.SigningDigest() != d {
				return fmt.Errorf("%w: bad prepare proof", ErrInvalid)
			}
			*tasks = append(*tasks, hashsig.VerifyTask{
				Key: r.cfg.Peers[p.Replica], Digest: p.SigningDigest(), Sig: p.Sig})
			endorsers[p.Replica] = true
		}
		if len(endorsers) < r.quorum {
			return fmt.Errorf("%w: prepared claim backed by %d < %d replicas", ErrInvalid, len(endorsers), r.quorum)
		}
	}
	return nil
}

// validateViewChange checks a view-change's signature and all its proofs,
// verifying the collected signature set in one pooled pass.
func (r *Replica) validateViewChange(vc *ViewChange) error {
	var tasks []hashsig.VerifyTask
	if err := r.viewChangeStructure(vc, &tasks); err != nil {
		return err
	}
	if !r.verifyTasks(tasks) {
		return fmt.Errorf("%w: bad signature in view-change from %d", ErrInvalid, vc.Replica)
	}
	return nil
}

func (r *Replica) recordViewChange(vc *ViewChange) {
	byID, ok := r.vcs[vc.NewView]
	if !ok {
		byID = make(map[ReplicaID]*ViewChange)
		r.vcs[vc.NewView] = byID
	}
	if _, dup := byID[vc.Replica]; !dup {
		byID[vc.Replica] = vc
	}
}

// maxViewAhead bounds how far above the local view-change target incoming
// view-changes are retained; honest targets escalate one view per timeout,
// so anything far beyond is a Byzantine attempt to grow the vcs map.
const maxViewAhead = 64

func (r *Replica) handleViewChange(vc *ViewChange, out *[]Outbound) error {
	if vc.NewView <= r.view {
		return nil
	}
	if vc.NewView > max(r.view, r.vcTarget)+maxViewAhead {
		return fmt.Errorf("%w: view-change for view %d is too far ahead", ErrInvalid, vc.NewView)
	}
	if err := r.validateViewChange(vc); err != nil {
		return err
	}
	// The committed claim was just certified against its commit proof.
	r.noteAhead(vc.CommittedSeq)
	for i := range vc.Prepared {
		r.checkEquivocation(&vc.Prepared[i].PP.Prop)
	}
	r.recordViewChange(vc)
	// Join rule: f+1 distinct replicas already gave up on our view — at
	// least one is honest, so follow rather than stay behind.
	if !r.inViewChange || r.vcTarget < vc.NewView {
		if len(r.vcs[vc.NewView]) >= r.f+1 {
			*out = append(*out, r.startViewChange(vc.NewView)...)
			return nil
		}
	}
	r.maybeEmitNewView(vc.NewView, out)
	return nil
}

// maybeEmitNewView builds and broadcasts the new-view certificate once this
// replica is the target view's primary and holds a quorum of view-changes.
func (r *Replica) maybeEmitNewView(v uint64, out *[]Outbound) {
	if r.primaryOf(v) != r.cfg.ID || v <= r.view {
		return
	}
	byID := r.vcs[v]
	if len(byID) < r.quorum {
		return
	}
	nv := &NewView{View: v, Replica: r.cfg.ID}
	for _, id := range sortedKeys(byID) {
		nv.VCs = append(nv.VCs, *byID[id])
	}
	nv.Sig = r.cfg.Key.MustSign(nv.SigningDigest())
	r.lastNewView = nv
	*out = append(*out, toAll(nv))
	r.enterView(nv, out)
}

func (r *Replica) handleNewView(nv *NewView, out *[]Outbound) error {
	if nv.View <= r.view {
		return nil
	}
	if int(nv.Replica) >= r.n || nv.Replica != r.primaryOf(nv.View) {
		return fmt.Errorf("%w: new-view from %d", ErrInvalid, nv.Replica)
	}
	tasks := []hashsig.VerifyTask{{
		Key: r.cfg.Peers[nv.Replica], Digest: nv.SigningDigest(), Sig: nv.Sig}}
	seen := map[ReplicaID]bool{}
	for i := range nv.VCs {
		vc := &nv.VCs[i]
		if vc.NewView != nv.View {
			return fmt.Errorf("%w: certificate mixes views", ErrInvalid)
		}
		if err := r.viewChangeStructure(vc, &tasks); err != nil {
			return err
		}
		seen[vc.Replica] = true
	}
	if len(seen) < r.quorum {
		return fmt.Errorf("%w: new-view backed by %d < %d replicas", ErrInvalid, len(seen), r.quorum)
	}
	// One pooled pass over the whole certificate: the new-view signature,
	// every view-change signature, and every proof inside them.
	if !r.verifyTasks(tasks) {
		return fmt.Errorf("%w: bad signature in new-view certificate", ErrInvalid)
	}
	r.enterView(nv, out)
	return nil
}

// enterView moves the replica into nv.View. The certificate determines the
// commit high-water mark and the contiguous chain of prepared batches the
// new primary is bound to re-propose, starting just above that mark: per
// sequence number the claim from the highest view wins (a later view's
// certificate supersedes earlier ones, as in PBFT), and the chain stops at
// the first uncertified gap — commits are in order, so nothing beyond a
// gap can have committed anywhere. Speculative instances are kept as
// passive catch-up instances (their openings may still complete them);
// conflicting re-proposals in the new view replace them, rolling the
// speculation back at that point (Lemma 1).
func (r *Replica) enterView(nv *NewView, out *[]Outbound) {
	v := nv.View
	maxCommitted := uint64(0)
	for i := range nv.VCs {
		if vc := &nv.VCs[i]; vc.CommittedSeq > maxCommitted {
			maxCommitted = vc.CommittedSeq
		}
	}
	r.noteAhead(maxCommitted)
	best := make(map[uint64]*PrePrepare)
	for i := range nv.VCs {
		for j := range nv.VCs[i].Prepared {
			pp := &nv.VCs[i].Prepared[j].PP
			seq := pp.Prop.Seq()
			if seq <= maxCommitted {
				continue
			}
			if cur, ok := best[seq]; !ok || pp.Prop.View > cur.Prop.View {
				best[seq] = pp
			}
		}
	}
	var chain []*PrePrepare
	for seq := maxCommitted + 1; ; seq++ {
		pp, ok := best[seq]
		if !ok {
			break
		}
		chain = append(chain, pp)
	}

	r.view = v
	r.inViewChange = false
	r.vcTarget = v
	r.ownVC = nil
	r.gen++
	for tv := range r.vcs {
		if tv <= v {
			delete(r.vcs, tv)
		}
	}
	for _, in := range r.insts {
		in.passive = true
	}
	r.reacks = make(map[uint64]*instance) // old-view re-acks; nothing speculative to undo
	r.mustRepropose = make(map[uint64]hashsig.Digest)
	r.pendingRepropose = nil
	if maxCommitted > r.proposeFloor {
		r.proposeFloor = maxCommitted
	}

	isPrimary := r.primaryOf(v) == r.cfg.ID
	if len(chain) > 0 {
		for _, pp := range chain {
			if seq := pp.Prop.Seq(); seq > r.committed {
				r.mustRepropose[seq] = pp.Prop.Header.SigningDigest()
			}
		}
		if isPrimary {
			r.reproposeChain(chain, out)
		}
	} else if isPrimary {
		// Leading a view with no surviving prepared chain: passive leftovers
		// above the certificate's commit mark can never complete (their
		// batches demonstrably have no prepared quorum, or they would be in
		// the certificate), so clear them rather than letting them block
		// proposals. Leftovers at or below the mark are catch-up instances
		// for batches that committed elsewhere — keep them, they complete
		// from retransmitted openings (and proposeFloor already blocks
		// fresh proposals until this replica catches up through them).
		r.abandonFrom(max(r.committed, maxCommitted) + 1)
		if r.committed >= maxCommitted {
			// Laggards may still need quorums anywhere inside the last
			// committed window in this view: re-propose the whole retained
			// suffix (a laggard applies these in order as active instances;
			// replicas that already committed them re-ack from storage).
			r.reproposeCommittedWindow(out)
		}
	}
}

// reproposeCommittedWindow re-proposes this replica's stored batches for
// the last Window committed sequence numbers, oldest first. Bounded by the
// window, it is the new primary's catch-up offer to laggards that fell
// behind by more than one batch — the boundary batch alone would buffer
// unusably on any replica whose ledger is further back.
func (r *Replica) reproposeCommittedWindow(out *[]Outbound) {
	if r.committed == 0 {
		return
	}
	lo := uint64(1)
	if r.committed > uint64(r.window) {
		lo = r.committed - uint64(r.window) + 1
	}
	for seq := lo; seq <= r.committed; seq++ {
		if b := r.led.BatchAt(seq); b != nil {
			*out = append(*out, toAll(r.proposeBatch(b)))
		}
	}
}

// reproposeChain is the new primary's obligation: re-execute and re-propose
// the certificate's prepared chain, in order, byte-identically
// (deterministic re-execution reproduces every header commitment). If the
// primary is still behind the chain's start it parks the chain and resumes
// as soon as it catches up.
func (r *Replica) reproposeChain(chain []*PrePrepare, out *[]Outbound) {
	for len(chain) > 0 && chain[0].Prop.Seq() <= r.committed {
		chain = chain[1:] // already committed here
	}
	if len(chain) == 0 {
		// The whole chain is committed locally; re-propose our retained
		// committed window so laggards can finish.
		r.reproposeCommittedWindow(out)
		return
	}
	if first := chain[0].Prop.Seq(); first > r.committed+1 {
		r.pendingRepropose = chain
		return
	}
	// Any passive leftovers occupy the ledger slots the chain needs; the
	// re-proposals supersede them either way.
	r.abandonFrom(r.committed + 1)
	for _, pp := range chain {
		batch := pp.Batch()
		ownHeader, err := r.led.ApplyBatch(batch)
		if err != nil {
			// A certified prepared batch re-executes cleanly by
			// construction; if the application is nondeterministic nothing
			// further can be proposed safely.
			return
		}
		delete(r.mustRepropose, pp.Prop.Seq())
		*out = append(*out, toAll(r.proposeBatch(&ledger.Batch{Header: *ownHeader, Entries: batch.Entries})))
	}
}

// Retransmit returns this replica's current outbound state — the messages a
// peer would need if earlier deliveries were lost. Harness and transport
// call it to model timeout-driven resends. Everything here is broadcast:
// own protocol messages and re-ack resupply feed every peer's quorum
// formation (a committed replica's prepares count toward others' endorser
// tallies), unlike the pairwise sync chunk traffic.
func (r *Replica) Retransmit() []Outbound {
	var msgs []Message
	if r.inViewChange {
		if r.ownVC != nil {
			msgs = append(msgs, r.ownVC)
		}
		var out []Outbound
		broadcastAll(&out, msgs)
		return out
	}
	if r.lastNewView != nil && r.lastNewView.View == r.view {
		msgs = append(msgs, r.lastNewView)
	}
	for _, seq := range sortedKeys(r.insts) {
		r.retransmitInstance(r.insts[seq], &msgs)
	}
	for _, seq := range sortedKeys(r.reacks) {
		r.retransmitInstance(r.reacks[seq], &msgs)
	}
	// Re-emit the window's worth of committed-instance messages: between
	// them, 2f+1 replicas resupply the pre-prepares, commitments, and
	// openings a laggard needs to passively re-commit the batches it
	// missed, however deep inside the last window it fell behind.
	for _, seq := range sortedKeys(r.recentOwn) {
		msgs = append(msgs, r.recentOwn[seq]...)
	}
	var out []Outbound
	broadcastAll(&out, msgs)
	return out
}

// retransmitInstance re-emits this replica's own messages for one in-flight
// instance.
func (r *Replica) retransmitInstance(in *instance, out *[]Message) {
	if in == nil {
		return
	}
	if in.ownPrePrepare != nil {
		*out = append(*out, in.ownPrePrepare)
	}
	if in.ownPrepare != nil {
		*out = append(*out, in.ownPrepare)
	}
	if in.ownCommit != nil {
		*out = append(*out, in.ownCommit)
	}
}
