package consensus

import (
	"fmt"
	"testing"

	"iaccf/internal/hashsig"
	"iaccf/internal/ledger"
)

// BenchmarkConsensusCommit measures full L-PBFT commit rounds — propose,
// pre-prepare, prepares, nonce-revealing commits, all message codec work
// included — across 3f+1 = 4 replicas with f = 1, per batch size and
// proposal window. One iteration commits `window` consecutive batches: the
// primary fills its window before any traffic is delivered, so with W > 1
// every replica receives several instances' messages per round and the
// pooled signature prewarm (HandleAll) gets real batches to spread across
// workers. window=1 is the serial baseline the pipelined runs must beat.
// The metric that matters is entries/sec: how much ledger throughput the
// consensus pipeline sustains.
func BenchmarkConsensusCommit(b *testing.B) {
	for _, batchSize := range []int{128, 1024} {
		for _, window := range []int{1, DefaultWindow} {
			b.Run(fmt.Sprintf("entries=%d/window=%d", batchSize, window), func(b *testing.B) {
				benchCommit(b, batchSize, window)
			})
		}
	}
}

func benchCommit(b *testing.B, batchSize, window int) {
	const n = 4
	keys := make([]*hashsig.PrivateKey, n)
	peers := make([]*hashsig.PublicKey, n)
	for i := range keys {
		keys[i] = hashsig.GenerateKeyFromSeed(fmt.Sprintf("bench-%d", i))
		peers[i] = keys[i].Public()
	}
	replicas := make([]*Replica, n)
	for i := range replicas {
		r, err := New(Config{
			ID:              ReplicaID(i),
			Key:             keys[i],
			Peers:           peers,
			App:             ledger.KVApp{},
			CheckpointEvery: 4,
			Shards:          4,
			Window:          window,
		})
		if err != nil {
			b.Fatal(err)
		}
		replicas[i] = r
	}
	author := hashsig.Sum([]byte("bench-client"))
	reqsFor := func(seq uint64) []ledger.Request {
		reqs := make([]ledger.Request, batchSize)
		for i := range reqs {
			reqs[i] = ledger.Request{
				Author: author,
				ReqNo:  seq*100000 + uint64(i),
				Body: ledger.EncodeOps([]ledger.Op{{
					Key: fmt.Sprintf("key-%d", i%512),
					Val: []byte(fmt.Sprintf("val-%d-%d", seq, i)),
				}}),
			}
		}
		return reqs
	}

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Fill the window: W proposals before any delivery happens.
		base := uint64(i * window)
		frames := make([][]byte, 0, window)
		for w := 0; w < window; w++ {
			pp, _, err := replicas[0].Propose(reqsFor(base + uint64(w) + 1))
			if err != nil {
				b.Fatal(err)
			}
			frames = append(frames, EncodeMessage(pp))
		}
		// Flood-deliver encoded frames until quiescent, like the harness
		// but with no loss: each round every replica gets the whole batch
		// of in-flight frames at once (HandleAll), the steady-state fast
		// path a pipelining transport produces.
		for len(frames) > 0 {
			msgs := make([]Message, len(frames))
			for j, frame := range frames {
				m, err := DecodeMessage(frame)
				if err != nil {
					b.Fatal(err)
				}
				msgs[j] = m
			}
			frames = frames[:0]
			for _, r := range replicas {
				for _, o := range r.HandleAll(msgs) {
					frames = append(frames, EncodeMessage(o))
				}
			}
		}
		want := base + uint64(window)
		for _, r := range replicas {
			if r.Committed() != want {
				b.Fatalf("replica %d at seq %d, want %d", r.ID(), r.Committed(), want)
			}
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(batchSize)*float64(window)*float64(b.N)/b.Elapsed().Seconds(), "entries/sec")
}
