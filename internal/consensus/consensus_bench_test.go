package consensus

import (
	"fmt"
	"testing"

	"iaccf/internal/hashsig"
	"iaccf/internal/ledger"
)

// BenchmarkConsensusCommit measures full L-PBFT commit rounds — propose,
// pre-prepare, prepares, nonce-revealing commits, all message codec work
// included — across 3f+1 = 4 replicas with f = 1, per batch size and
// proposal window. One iteration commits `window` consecutive batches: the
// primary fills its window before any traffic is delivered, so with W > 1
// every replica receives several instances' messages per round and the
// pooled signature prewarm (HandleAll) gets real batches to spread across
// workers. window=1 is the serial baseline the pipelined runs must beat.
// The metric that matters is entries/sec: how much ledger throughput the
// consensus pipeline sustains.
func BenchmarkConsensusCommit(b *testing.B) {
	for _, batchSize := range []int{128, 1024} {
		for _, window := range []int{1, DefaultWindow} {
			b.Run(fmt.Sprintf("entries=%d/window=%d", batchSize, window), func(b *testing.B) {
				benchCommit(b, batchSize, window)
			})
		}
	}
}

// BenchmarkConsensusCommitCrossShard is the multi-core workload: 16 shards,
// requests authored by many distinct clients (entries spread across the
// per-shard batch trees G_s, which route by author), each request touching
// several keys drawn from a wide pool so footprints are mostly disjoint.
// With more than one CPU the ledger's conflict-aware executor runs each
// batch's transactions in parallel waves; run with -cpu 1,4 to see the
// scaling (benchcmp's -scale gate asserts 4-core ≥ 2× 1-core on CI).
func BenchmarkConsensusCommitCrossShard(b *testing.B) {
	benchCommitKeyed(b, 1024, DefaultWindow, 16, func(seq uint64, i int) ledger.Request {
		ops := make([]ledger.Op, 3)
		for o := range ops {
			ops[o] = ledger.Op{
				Key: fmt.Sprintf("key-%d", (i*3+o)%8192),
				Val: []byte(fmt.Sprintf("val-%d-%d-%d", seq, i, o)),
			}
		}
		return ledger.Request{
			Author: hashsig.Sum([]byte(fmt.Sprintf("client-%d", i%64))),
			ReqNo:  seq*100000 + uint64(i),
			Body:   ledger.EncodeOps(ops),
		}
	})
}

// BenchmarkConsensusCommitSkewed is the load-imbalance twin of CrossShard:
// same 16-shard configuration and key pool, but ~90% of requests are
// authored by one hot client, so nine tenths of every batch lands in a
// single per-shard batch tree G_s (entries route to shards by author).
// Building the hot shard's tree is inherently serial, but entry hashing,
// conflict-free execution waves, signature work, and the remaining shards
// still spread across cores — CI asserts 4-core ≥ 1.5× 1-core here, a
// softer bar than the uniform workload's 2×. Footprints stay mostly
// disjoint (keys vary per request) so the skew stresses shard grouping and
// proof building, not lock conflicts.
func BenchmarkConsensusCommitSkewed(b *testing.B) {
	hot := hashsig.Sum([]byte("hot-client"))
	benchCommitKeyed(b, 1024, DefaultWindow, 16, func(seq uint64, i int) ledger.Request {
		ops := make([]ledger.Op, 3)
		for o := range ops {
			ops[o] = ledger.Op{
				Key: fmt.Sprintf("key-%d", (i*3+o)%8192),
				Val: []byte(fmt.Sprintf("val-%d-%d-%d", seq, i, o)),
			}
		}
		author := hot
		if i%10 == 0 {
			author = hashsig.Sum([]byte(fmt.Sprintf("client-%d", i%64)))
		}
		return ledger.Request{
			Author: author,
			ReqNo:  seq*100000 + uint64(i),
			Body:   ledger.EncodeOps(ops),
		}
	})
}

func benchCommit(b *testing.B, batchSize, window int) {
	author := hashsig.Sum([]byte("bench-client"))
	benchCommitKeyed(b, batchSize, window, 4, func(seq uint64, i int) ledger.Request {
		return ledger.Request{
			Author: author,
			ReqNo:  seq*100000 + uint64(i),
			Body: ledger.EncodeOps([]ledger.Op{{
				Key: fmt.Sprintf("key-%d", i%512),
				Val: []byte(fmt.Sprintf("val-%d-%d", seq, i)),
			}}),
		}
	})
}

func benchCommitKeyed(b *testing.B, batchSize, window int, shards uint32, mkReq func(seq uint64, i int) ledger.Request) {
	const n = 4
	keys := make([]*hashsig.PrivateKey, n)
	peers := make([]*hashsig.PublicKey, n)
	for i := range keys {
		keys[i] = hashsig.GenerateKeyFromSeed(fmt.Sprintf("bench-%d", i))
		peers[i] = keys[i].Public()
	}
	replicas := make([]*Replica, n)
	for i := range replicas {
		r, err := New(Config{
			ID:              ReplicaID(i),
			Key:             keys[i],
			Peers:           peers,
			App:             ledger.KVApp{},
			CheckpointEvery: 4,
			Shards:          shards,
			Window:          window,
		})
		if err != nil {
			b.Fatal(err)
		}
		replicas[i] = r
	}
	reqsFor := func(seq uint64) []ledger.Request {
		reqs := make([]ledger.Request, batchSize)
		for i := range reqs {
			reqs[i] = mkReq(seq, i)
		}
		return reqs
	}

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Fill the window: W proposals before any delivery happens.
		base := uint64(i * window)
		frames := make([][]byte, 0, window)
		for w := 0; w < window; w++ {
			pp, _, err := replicas[0].Propose(reqsFor(base + uint64(w) + 1))
			if err != nil {
				b.Fatal(err)
			}
			frames = append(frames, EncodeMessage(pp))
		}
		// Flood-deliver encoded frames until quiescent, like the harness
		// but with no loss: each round every replica gets the whole batch
		// of in-flight frames at once (HandleAll), the steady-state fast
		// path a pipelining transport produces.
		for len(frames) > 0 {
			msgs := make([]Message, len(frames))
			for j, frame := range frames {
				m, err := DecodeMessage(frame)
				if err != nil {
					b.Fatal(err)
				}
				msgs[j] = m
			}
			frames = frames[:0]
			for _, r := range replicas {
				for _, o := range r.HandleAll(msgs) {
					frames = append(frames, EncodeMessage(o.Msg))
				}
			}
		}
		want := base + uint64(window)
		for _, r := range replicas {
			if r.Committed() != want {
				b.Fatalf("replica %d at seq %d, want %d", r.ID(), r.Committed(), want)
			}
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(batchSize)*float64(window)*float64(b.N)/b.Elapsed().Seconds(), "entries/sec")
}

// BenchmarkConsensusBoundedMemory is the bounded-memory gate's workload: a
// long committed history (b.N scales it) with checkpointing and pruning
// active. What it reports is not throughput but residency — the maximum
// batches and encoded batch bytes any replica retained at any point. With
// the commit-path prune the bound is window + checkpoint interval,
// independent of how many batches the run commits; benchcmp's
// `-max ...:retained-bytes:...` cap turns an O(history) leak into a CI
// failure instead of an OOM on a long-lived cluster.
func BenchmarkConsensusBoundedMemory(b *testing.B) {
	const n = 4
	keys := make([]*hashsig.PrivateKey, n)
	peers := make([]*hashsig.PublicKey, n)
	for i := range keys {
		keys[i] = hashsig.GenerateKeyFromSeed(fmt.Sprintf("bench-%d", i))
		peers[i] = keys[i].Public()
	}
	replicas := make([]*Replica, n)
	for i := range replicas {
		r, err := New(Config{
			ID:              ReplicaID(i),
			Key:             keys[i],
			Peers:           peers,
			App:             ledger.KVApp{},
			CheckpointEvery: 4,
		})
		if err != nil {
			b.Fatal(err)
		}
		replicas[i] = r
	}
	author := hashsig.Sum([]byte("bench-client"))
	reqsFor := func(seq uint64) []ledger.Request {
		reqs := make([]ledger.Request, 32)
		for i := range reqs {
			reqs[i] = ledger.Request{
				Author: author,
				ReqNo:  seq*100000 + uint64(i),
				Body: ledger.EncodeOps([]ledger.Op{{
					Key: fmt.Sprintf("key-%d", i%512),
					Val: []byte(fmt.Sprintf("val-%d-%d", seq, i)),
				}}),
			}
		}
		return reqs
	}
	retained := func() (batches int, bytes int) {
		for _, r := range replicas {
			got := r.Ledger().RetainedBatches()
			if got > batches {
				batches = got
			}
			total := 0
			for _, batch := range r.Ledger().Batches() {
				total += len(encodeBatchChunk(batch))
			}
			if total > bytes {
				bytes = total
			}
		}
		return
	}

	maxBatches, maxBytes := 0, 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		seq := uint64(i) + 1
		pp, _, err := replicas[0].Propose(reqsFor(seq))
		if err != nil {
			b.Fatal(err)
		}
		frames := [][]byte{EncodeMessage(pp)}
		for len(frames) > 0 {
			msgs := make([]Message, len(frames))
			for j, frame := range frames {
				m, err := DecodeMessage(frame)
				if err != nil {
					b.Fatal(err)
				}
				msgs[j] = m
			}
			frames = frames[:0]
			for _, r := range replicas {
				for _, o := range r.HandleAll(msgs) {
					frames = append(frames, EncodeMessage(o.Msg))
				}
			}
		}
		if replicas[0].Committed() != seq {
			b.Fatalf("stuck at %d, want %d", replicas[0].Committed(), seq)
		}
		if batches, bytes := retained(); true {
			if batches > maxBatches {
				maxBatches = batches
			}
			if bytes > maxBytes {
				maxBytes = bytes
			}
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(maxBatches), "retained-batches")
	b.ReportMetric(float64(maxBytes), "retained-bytes")
}
