package consensus

import (
	"fmt"
	"testing"

	"iaccf/internal/hashsig"
	"iaccf/internal/ledger"
)

// BenchmarkConsensusCommit measures one full L-PBFT commit round — propose,
// pre-prepare, prepares, nonce-revealing commits, all message codec work
// included — across 3f+1 = 4 replicas with f = 1, per batch size. The
// metric that matters is entries/sec: how much ledger throughput one
// consensus round sustains.
func BenchmarkConsensusCommit(b *testing.B) {
	for _, batchSize := range []int{128, 1024} {
		b.Run(fmt.Sprintf("entries=%d", batchSize), func(b *testing.B) {
			const n = 4
			keys := make([]*hashsig.PrivateKey, n)
			peers := make([]*hashsig.PublicKey, n)
			for i := range keys {
				keys[i] = hashsig.GenerateKeyFromSeed(fmt.Sprintf("bench-%d", i))
				peers[i] = keys[i].Public()
			}
			replicas := make([]*Replica, n)
			for i := range replicas {
				r, err := New(Config{
					ID:              ReplicaID(i),
					Key:             keys[i],
					Peers:           peers,
					App:             ledger.KVApp{},
					CheckpointEvery: 4,
					Shards:          4,
				})
				if err != nil {
					b.Fatal(err)
				}
				replicas[i] = r
			}
			author := hashsig.Sum([]byte("bench-client"))
			reqsFor := func(seq uint64) []ledger.Request {
				reqs := make([]ledger.Request, batchSize)
				for i := range reqs {
					reqs[i] = ledger.Request{
						Author: author,
						ReqNo:  seq*100000 + uint64(i),
						Body: ledger.EncodeOps([]ledger.Op{{
							Key: fmt.Sprintf("key-%d", i%512),
							Val: []byte(fmt.Sprintf("val-%d-%d", seq, i)),
						}}),
					}
				}
				return reqs
			}

			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				seq := uint64(i + 1)
				pp, _, err := replicas[0].Propose(reqsFor(seq))
				if err != nil {
					b.Fatal(err)
				}
				// Flood-deliver encoded frames until quiescent, like the
				// harness but with no loss: the steady-state fast path.
				queue := [][]byte{EncodeMessage(pp)}
				for len(queue) > 0 {
					frame := queue[0]
					queue = queue[1:]
					m, err := DecodeMessage(frame)
					if err != nil {
						b.Fatal(err)
					}
					for _, r := range replicas {
						out, _ := r.Handle(m)
						for _, o := range out {
							queue = append(queue, EncodeMessage(o))
						}
					}
				}
				for _, r := range replicas {
					if r.Committed() != seq {
						b.Fatalf("replica %d at seq %d, want %d", r.ID(), r.Committed(), seq)
					}
				}
			}
			b.StopTimer()
			b.ReportMetric(float64(batchSize)*float64(b.N)/b.Elapsed().Seconds(), "entries/sec")
		})
	}
}
