// Package sim is a deterministic, seed-driven simulation harness for the
// L-PBFT consensus core: an in-memory network that reorders, delays, and
// partitions encoded protocol messages under a single math/rand seed, with
// scripted Byzantine behaviours (equivocating or silent primaries) and
// safety/liveness invariants asserted after every delivery. A failing run
// reports its seed, and re-running the same configuration with that seed
// replays the identical schedule.
//
// The network model: replicas emit addressed consensus.Outbound envelopes;
// a Broadcast envelope becomes one wire envelope per recipient, a unicast
// envelope is delivered to exactly its Dest, and each carries the
// wire-encoded frame (so every delivery exercises the codec). The harness
// asserts, per emission, that state-transfer offer/chunk traffic
// (SyncAvail, SyncChunkRequest, SyncChunk) is never broadcast — the
// pairwise protocol must not lean on cluster-wide delivery the real
// transport would have to pay for.
// A "dropped" delivery is re-queued at a random later position — the
// protocol has no timers of its own, so loss is modelled as the arbitrary
// delay a retransmitting sender produces, which preserves the eventual
// delivery that L-PBFT (like PBFT) needs for liveness. Partitions hold
// cross-group envelopes until the partition heals. Timeouts fire on every
// honest replica once no commit has happened for StallTimeout deliveries,
// modelling synchronized timer expiry.
package sim

import (
	"fmt"
	"math/rand"
	"sort"

	"iaccf/internal/consensus"
	"iaccf/internal/hashsig"
	"iaccf/internal/ledger"
)

// Behaviour names a scripted fault for one replica.
type Behaviour string

const (
	// BehaviourHonest runs the real protocol.
	BehaviourHonest Behaviour = ""
	// BehaviourSilent never sends or processes anything (crash fault).
	BehaviourSilent Behaviour = "silent"
	// BehaviourEquivocate participates honestly until its first turn as
	// primary, then signs two conflicting batches for the same sequence
	// number, sends one to each half of the other replicas, and goes
	// silent. The honest replicas must both capture blame evidence naming
	// its key and recover liveness through a view change.
	BehaviourEquivocate Behaviour = "equivocate"
	// BehaviourLyingSync participates honestly in consensus but corrupts
	// every state-transfer chunk it serves. Laggards must detect the
	// corruption (digest mismatch, failed decode, or a failed adoption
	// anchor), ban the source, and complete the transfer from an honest
	// peer — the liar costs latency, never safety.
	BehaviourLyingSync Behaviour = "lying-sync"
)

// Partition isolates replica groups during a step window.
type Partition struct {
	From, Until int // active while From <= step < Until
	// UntilCommit, when nonzero, keeps the partition active from From until
	// some honest replica's committed sequence number reaches it (Until is
	// ignored). It requires Loss: there is no predictable release step for
	// held traffic. Commit-gated healing is how the churn scenarios
	// guarantee the isolated replica misses more than a checkpoint interval
	// regardless of how fast the majority happens to commit.
	UntilCommit uint64
	// Loss drops cross-group envelopes outright instead of holding them for
	// release at heal time — the overflowed-buffer model. A replica cut off
	// by a loss partition can only recover through checkpoint state
	// transfer once its peers prune the batches it missed.
	Loss bool
	// Group maps replica -> group index; unlisted replicas are group 0.
	Group map[consensus.ReplicaID]int
}

// Config parameterizes one simulation run.
type Config struct {
	Seed            int64
	N               int     // replica count (3f+1); default 4
	Shards          uint32  // ledger shard count; default 1
	CheckpointEvery uint64  // default 2
	Batches         int     // batches the workload commits; default 4
	BatchSize       int     // requests per batch; default 3
	Window          int     // proposal window W; default consensus.DefaultWindow
	DropRate        float64 // per-delivery probability of deferral
	ReorderRate     float64 // probability of picking a random queued envelope
	Partitions      []Partition
	Byzantine       map[consensus.ReplicaID]Behaviour
	MaxSteps        int // safety valve; default 500_000
	StallTimeout    int // deliveries without progress before timeouts; default 400
}

func (c *Config) fill() {
	if c.N == 0 {
		c.N = 4
	}
	if c.Shards == 0 {
		c.Shards = 1
	}
	if c.CheckpointEvery == 0 {
		c.CheckpointEvery = 2
	}
	if c.Batches == 0 {
		c.Batches = 4
	}
	if c.BatchSize == 0 {
		c.BatchSize = 3
	}
	if c.MaxSteps == 0 {
		c.MaxSteps = 500_000
	}
	if c.StallTimeout == 0 {
		c.StallTimeout = 400
	}
}

// Result summarizes a completed run.
type Result struct {
	Steps     int
	Delivered int
	Deferred  int
	Lost      int // envelopes destroyed by loss partitions
	// Committed is the final committed sequence number (identical on every
	// honest replica; the run fails otherwise).
	Committed uint64
	// FinalView is the highest view an honest replica ended in.
	FinalView uint64
	// Blames is the union of blame evidence across honest replicas.
	Blames []*consensus.Blame
	// Replicas exposes the honest replicas for post-run assertions.
	Replicas map[consensus.ReplicaID]*consensus.Replica
}

type envelope struct {
	from, to consensus.ReplicaID
	frame    []byte
}

// Sim is one run's state.
type Sim struct {
	cfg    Config
	rng    *rand.Rand
	keys   []*hashsig.PrivateKey
	peers  []*hashsig.PublicKey
	honest map[consensus.ReplicaID]*consensus.Replica
	byz    map[consensus.ReplicaID]*byzNode

	queue []envelope
	held  []heldEnvelope // partitioned traffic awaiting heal

	step       int
	delivered  int
	deferred   int
	lost       int
	lastCommit uint64 // sum of honest committed seqs at last progress
	stall      int

	// canon pins the first-committed header digest per seq; any honest
	// replica committing a different header for the same seq is a safety
	// violation.
	canon map[uint64]hashsig.Digest
	// checked tracks how far each honest replica's committed prefix has
	// been compared against canon.
	checked map[consensus.ReplicaID]uint64
	// envelopeErr records the first addressed-envelope invariant violation
	// (sync offer/chunk traffic broadcast, or a nonsense Dest); surfaced by
	// the per-step invariant check.
	envelopeErr error
}

type heldEnvelope struct {
	env     envelope
	release int
}

// byzNode is a scripted faulty replica. The equivocator drives a real
// replica (it must track state to forge valid batches) until it strikes.
type byzNode struct {
	behaviour Behaviour
	rep       *consensus.Replica // nil for silent
	struck    bool
}

// New builds a simulation from the config. Keys are derived from the seed
// so distinct seeds exercise distinct key sets.
func New(cfg Config) (*Sim, error) {
	cfg.fill()
	s := &Sim{
		cfg:     cfg,
		rng:     rand.New(rand.NewSource(cfg.Seed)),
		honest:  make(map[consensus.ReplicaID]*consensus.Replica),
		byz:     make(map[consensus.ReplicaID]*byzNode),
		canon:   make(map[uint64]hashsig.Digest),
		checked: make(map[consensus.ReplicaID]uint64),
	}
	for i := 0; i < cfg.N; i++ {
		k := hashsig.GenerateKeyFromSeed(fmt.Sprintf("sim-%d-replica-%d", cfg.Seed, i))
		s.keys = append(s.keys, k)
		s.peers = append(s.peers, k.Public())
	}
	for i := 0; i < cfg.N; i++ {
		id := consensus.ReplicaID(i)
		behaviour := cfg.Byzantine[id]
		if behaviour == BehaviourSilent {
			s.byz[id] = &byzNode{behaviour: behaviour}
			continue
		}
		rep, err := consensus.New(consensus.Config{
			ID:              id,
			Key:             s.keys[i],
			Peers:           s.peers,
			App:             ledger.KVApp{},
			CheckpointEvery: cfg.CheckpointEvery,
			Shards:          cfg.Shards,
			Window:          cfg.Window,
		})
		if err != nil {
			return nil, err
		}
		if behaviour == BehaviourHonest {
			s.honest[id] = rep
			s.checked[id] = 0
		} else {
			s.byz[id] = &byzNode{behaviour: behaviour, rep: rep}
		}
	}
	if len(s.honest) < 3 {
		return nil, fmt.Errorf("sim: %d honest replicas cannot form a quorum", len(s.honest))
	}
	for i := range cfg.Partitions {
		if p := &cfg.Partitions[i]; p.UntilCommit > 0 && !p.Loss {
			return nil, fmt.Errorf("sim: commit-gated partition %d requires Loss (held traffic has no release step)", i)
		}
	}
	return s, nil
}

// honestIDs returns the honest replica IDs in ascending order, for
// deterministic iteration.
func (s *Sim) honestIDs() []consensus.ReplicaID {
	ids := make([]consensus.ReplicaID, 0, len(s.honest))
	for id := range s.honest {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// requestsFor derives the deterministic workload for one batch: identical
// on every proposal attempt for a sequence number, so a view change that
// forces a re-proposal rebuilds byte-identical commitments.
func (s *Sim) requestsFor(seq uint64) []ledger.Request {
	return s.buildRequests(seq, "")
}

// requestsEvil is the equivocator's second variant for the same seq.
func (s *Sim) requestsEvil(seq uint64) []ledger.Request {
	return s.buildRequests(seq, "-evil")
}

func (s *Sim) buildRequests(seq uint64, tag string) []ledger.Request {
	out := make([]ledger.Request, s.cfg.BatchSize)
	for i := range out {
		out[i] = ledger.Request{
			Author: hashsig.Sum([]byte(fmt.Sprintf("client-%d", i%5))),
			ReqNo:  seq*1000 + uint64(i),
			Body: ledger.EncodeOps([]ledger.Op{{
				Key: fmt.Sprintf("key-%d-%d%s", seq, i, tag),
				Val: []byte(fmt.Sprintf("val-%d-%d%s", seq, i, tag)),
			}}),
		}
	}
	return out
}

// pairwiseSync reports whether m belongs to the state-transfer offer/chunk
// traffic that must always be unicast (discovery SyncRequests legitimately
// broadcast: the laggard does not know who holds a checkpoint).
func pairwiseSync(m consensus.Message) bool {
	switch m.(type) {
	case *consensus.SyncAvail, *consensus.SyncChunkRequest, *consensus.SyncChunk:
		return true
	}
	return false
}

// route enqueues a replica's addressed envelopes: a Broadcast envelope
// becomes one wire envelope per peer (excluding the sender), a unicast
// envelope goes to exactly its Dest. Violations of the envelope invariant —
// pairwise sync traffic broadcast, a self- or out-of-range Dest — are
// recorded and fail the run at the next invariant check.
func (s *Sim) route(from consensus.ReplicaID, outs []consensus.Outbound) {
	for _, o := range outs {
		if o.IsBroadcast() {
			if pairwiseSync(o.Msg) && s.envelopeErr == nil {
				s.envelopeErr = fmt.Errorf("envelope: replica %d broadcast %T; sync offer/chunk traffic must be unicast", from, o.Msg)
			}
			frame := consensus.EncodeMessage(o.Msg)
			for i := 0; i < s.cfg.N; i++ {
				to := consensus.ReplicaID(i)
				if to == from {
					continue
				}
				s.queue = append(s.queue, envelope{from: from, to: to, frame: frame})
			}
			continue
		}
		if o.Dest == from || int(o.Dest) >= s.cfg.N {
			if s.envelopeErr == nil {
				s.envelopeErr = fmt.Errorf("envelope: replica %d addressed %T to invalid dest %d", from, o.Msg, o.Dest)
			}
			continue
		}
		s.queue = append(s.queue, envelope{from: from, to: o.Dest, frame: consensus.EncodeMessage(o.Msg)})
	}
}

// broadcastMsg enqueues one unaddressed message (proposals and other
// harness-originated traffic) to every peer.
func (s *Sim) broadcastMsg(from consensus.ReplicaID, m consensus.Message) {
	s.route(from, []consensus.Outbound{{Dest: consensus.Broadcast, Msg: m}})
}

// sendTo enqueues one targeted envelope (Byzantine senders only; honest
// L-PBFT replicas always broadcast).
func (s *Sim) sendTo(from, to consensus.ReplicaID, m consensus.Message) {
	s.queue = append(s.queue, envelope{from: from, to: to, frame: consensus.EncodeMessage(m)})
}

// partitionActive reports whether partition p is in force at the current
// step: a fixed step window, or — commit-gated — until some honest replica
// commits UntilCommit.
func (s *Sim) partitionActive(p *Partition) bool {
	if s.step < p.From {
		return false
	}
	if p.UntilCommit > 0 {
		return s.maxHonestCommitted() < p.UntilCommit
	}
	return s.step < p.Until
}

func (s *Sim) maxHonestCommitted() uint64 {
	var m uint64
	for _, rep := range s.honest {
		if c := rep.Committed(); c > m {
			m = c
		}
	}
	return m
}

// partitioned reports whether an envelope crosses a partition active at the
// current step, and whether any such partition destroys traffic outright.
func (s *Sim) partitioned(e envelope) (held, lost bool) {
	for i := range s.cfg.Partitions {
		p := &s.cfg.Partitions[i]
		if s.partitionActive(p) && p.Group[e.from] != p.Group[e.to] {
			if p.Loss {
				return false, true // loss dominates: the envelope is gone
			}
			held = true
		}
	}
	return held, false
}

// partitionHealsAt returns the earliest step at which the envelope stops
// crossing any active partition.
func (s *Sim) partitionHealsAt(e envelope) int {
	release := s.step + 1
	for i := range s.cfg.Partitions {
		p := &s.cfg.Partitions[i]
		if s.partitionActive(p) && p.Group[e.from] != p.Group[e.to] && p.Until > release {
			release = p.Until
		}
	}
	return release
}

// deliver hands the envelope to its recipient and broadcasts the responses.
func (s *Sim) deliver(e envelope) error {
	msg, err := consensus.DecodeMessage(e.frame)
	if err != nil {
		return fmt.Errorf("corrupt frame on the wire: %v", err)
	}
	if rep, ok := s.honest[e.to]; ok {
		out, _ := rep.Handle(msg) // invalid messages are the sender's fault
		s.route(e.to, out)
		return nil
	}
	if node, ok := s.byz[e.to]; ok && node.rep != nil && !node.struck {
		out, _ := node.rep.Handle(msg)
		if node.behaviour == BehaviourLyingSync {
			corruptSyncChunks(out)
		}
		s.route(e.to, out)
	}
	return nil
}

// corruptSyncChunks flips a byte in every outbound state-transfer chunk,
// modelling a chunk server that serves garbage while participating honestly
// in consensus. The payloads are freshly built per response, so mutating
// them in place corrupts only what goes on the wire.
func corruptSyncChunks(outs []consensus.Outbound) {
	for _, o := range outs {
		if sc, ok := o.Msg.(*consensus.SyncChunk); ok && len(sc.Data) > 0 {
			sc.Data[len(sc.Data)/2] ^= 0xff
		}
	}
}

// tick lets primaries fill their proposal windows and scripted nodes
// strike. With a window above one the primary pipelines: it keeps
// proposing consecutive batches until the window is full, so several
// instances' traffic interleaves on the wire.
func (s *Sim) tick() {
	target := uint64(s.cfg.Batches)
	for _, id := range s.honestIDs() {
		rep := s.honest[id]
		for rep.IsPrimary() && rep.CanPropose() && rep.NextProposalSeq() <= target {
			pp, _, err := rep.Propose(s.requestsFor(rep.NextProposalSeq()))
			if err != nil {
				break
			}
			s.broadcastMsg(id, pp)
		}
	}
	// Drive the deterministic state-transfer clock: one tick per step, so
	// sync patience, retry deadlines, and backoff are all measured in
	// schedule steps.
	for _, id := range s.honestIDs() {
		s.route(id, s.honest[id].SyncTick())
	}
	for i := 0; i < s.cfg.N; i++ {
		id := consensus.ReplicaID(i)
		node, ok := s.byz[id]
		if !ok || node.struck || node.behaviour != BehaviourEquivocate || node.rep == nil {
			continue
		}
		rep := node.rep
		if !rep.IsPrimary() || !rep.Idle() || rep.Committed() >= target {
			continue
		}
		node.struck = true
		s.equivocate(id, rep)
	}
}

// equivocate signs two conflicting batches for the next seq and sends one
// variant to each half of the other replicas.
func (s *Sim) equivocate(id consensus.ReplicaID, rep *consensus.Replica) {
	led := rep.Ledger()
	seq := rep.Committed() + 1
	mk := func(reqs []ledger.Request) *consensus.PrePrepare {
		batch, _, err := led.ExecuteBatch(reqs)
		if err != nil {
			panic(err) // the deterministic workload always executes
		}
		nonce := hashsig.NewNonce()
		prop := consensus.Proposal{
			View:        rep.View(),
			Primary:     id,
			Header:      batch.Header,
			NonceCommit: nonce.Commit(),
		}
		prop.Sig = s.keys[id].MustSign(prop.SigningDigest())
		pp := &consensus.PrePrepare{Prop: prop, Entries: batch.Entries}
		// Lemma 1 is the equivocator's accomplice: roll back and the ledger
		// will happily sign a different batch for the same seq.
		if err := led.RollbackTo(seq); err != nil {
			panic(err)
		}
		return pp
	}
	ppA := mk(s.requestsFor(seq))
	ppB := mk(s.requestsEvil(seq))
	others := make([]consensus.ReplicaID, 0, s.cfg.N-1)
	for i := 0; i < s.cfg.N; i++ {
		if to := consensus.ReplicaID(i); to != id {
			others = append(others, to)
		}
	}
	for i, to := range others {
		if i < len(others)/2 {
			s.sendTo(id, to, ppA)
		} else {
			s.sendTo(id, to, ppB)
		}
	}
}

// checkInvariants verifies safety after every delivery: committed prefixes
// never diverge across honest replicas, and blame only ever names scripted
// Byzantine keys.
func (s *Sim) checkInvariants() error {
	if s.envelopeErr != nil {
		return s.envelopeErr
	}
	for _, id := range s.honestIDs() {
		rep := s.honest[id]
		// Bounded memory: the commit path prunes below the latest committed
		// checkpoint and the re-ack window, so a replica never retains more
		// than max(window, interval-1) committed batches plus window
		// speculative ones — window + max(window, interval) is a safe cap
		// that must hold at every step of every schedule.
		limit := rep.Window() + max(rep.Window(), int(s.cfg.CheckpointEvery))
		if got := rep.Ledger().RetainedBatches(); got > limit {
			return fmt.Errorf("memory: replica %d retains %d batches, bound %d (%s)",
				id, got, limit, rep.DebugState())
		}
		committed := rep.Committed()
		if committed <= s.checked[id] {
			continue
		}
		for _, b := range rep.Ledger().Batches() {
			seq := b.Header.Seq
			if seq <= s.checked[id] || seq > committed {
				continue
			}
			d := b.Header.SigningDigest()
			if prev, ok := s.canon[seq]; ok {
				if prev != d {
					return fmt.Errorf("safety: replica %d committed a different header at seq %d", id, seq)
				}
			} else {
				s.canon[seq] = d
			}
		}
		s.checked[id] = committed
	}
	for _, id := range s.honestIDs() {
		for _, bl := range s.honest[id].Evidence() {
			var culpritID consensus.ReplicaID
			found := false
			for i, pub := range s.peers {
				if pub.ID() == bl.Culprit {
					culpritID = consensus.ReplicaID(i)
					found = true
					break
				}
			}
			if !found {
				return fmt.Errorf("blame names an unknown key %s", bl.Culprit)
			}
			if _, isByz := s.byz[culpritID]; !isByz {
				return fmt.Errorf("blame wrongly names honest replica %d", culpritID)
			}
			if !bl.Verify(s.peers[culpritID]) {
				return fmt.Errorf("blame against replica %d does not verify", culpritID)
			}
		}
	}
	return nil
}

// done reports whether every honest replica committed the full workload.
func (s *Sim) done() bool {
	for _, rep := range s.honest {
		if rep.Committed() < uint64(s.cfg.Batches) {
			return false
		}
	}
	return true
}

func (s *Sim) progressSum() uint64 {
	var sum uint64
	for _, rep := range s.honest {
		sum += rep.Committed()
	}
	return sum
}

// Run executes the schedule until the workload commits everywhere or a
// limit trips. Every error message includes the seed, so a failing matrix
// run is reproducible verbatim.
func (s *Sim) Run() (*Result, error) {
	fail := func(format string, args ...any) (*Result, error) {
		return nil, fmt.Errorf("sim seed %d: step %d: %s", s.cfg.Seed, s.step, fmt.Sprintf(format, args...))
	}
	for ; !s.done(); s.step++ {
		if s.step >= s.cfg.MaxSteps {
			return fail("no convergence after %d steps (committed %v)", s.step, s.committedVector())
		}
		// Release healed partition traffic.
		kept := s.held[:0]
		for _, h := range s.held {
			if h.release <= s.step {
				s.queue = append(s.queue, h.env)
			} else {
				kept = append(kept, h)
			}
		}
		s.held = kept

		s.tick()

		if len(s.queue) == 0 {
			// Nothing in flight: model sender timeouts. Retransmits first;
			// if retransmission alone cannot help, the stall counter below
			// escalates to view changes.
			for _, id := range s.honestIDs() {
				s.route(id, s.honest[id].Retransmit())
			}
		}
		if len(s.queue) > 0 {
			idx := 0
			if s.cfg.ReorderRate > 0 && s.rng.Float64() < s.cfg.ReorderRate {
				idx = s.rng.Intn(len(s.queue))
			}
			e := s.queue[idx]
			s.queue = append(s.queue[:idx], s.queue[idx+1:]...)
			held, lost := s.partitioned(e)
			switch {
			case lost:
				s.lost++
			case held:
				s.held = append(s.held, heldEnvelope{env: e, release: s.partitionHealsAt(e)})
			case s.cfg.DropRate > 0 && s.rng.Float64() < s.cfg.DropRate:
				// Dropped: the sender's retransmission surfaces later at a
				// random queue position.
				s.deferred++
				pos := s.rng.Intn(len(s.queue) + 1)
				s.queue = append(s.queue[:pos], append([]envelope{e}, s.queue[pos:]...)...)
			default:
				s.delivered++
				if err := s.deliver(e); err != nil {
					return fail("%v", err)
				}
			}
		}

		if err := s.checkInvariants(); err != nil {
			return fail("%v", err)
		}
		if sum := s.progressSum(); sum != s.lastCommit {
			s.lastCommit = sum
			s.stall = 0
		} else if s.stall++; s.stall >= s.cfg.StallTimeout {
			s.stall = 0
			for _, id := range s.honestIDs() {
				s.route(id, s.honest[id].OnTimeout())
			}
		}
	}

	res := &Result{
		Steps:     s.step,
		Delivered: s.delivered,
		Deferred:  s.deferred,
		Lost:      s.lost,
		Replicas:  s.honest,
	}
	ids := s.honestIDs()
	ref := s.honest[ids[0]]
	res.Committed = ref.Committed()
	for _, id := range ids {
		rep := s.honest[id]
		if rep.Committed() != res.Committed {
			return fail("liveness: replica %d finished at seq %d, replica %d at %d",
				id, rep.Committed(), ids[0], res.Committed)
		}
		if rep.Ledger().HistRoot() != ref.Ledger().HistRoot() {
			return fail("final history roots diverge between replicas %d and %d", ids[0], id)
		}
		if rep.Ledger().StateDigest() != ref.Ledger().StateDigest() {
			return fail("final state digests diverge between replicas %d and %d", ids[0], id)
		}
		if rep.View() > res.FinalView {
			res.FinalView = rep.View()
		}
		res.Blames = append(res.Blames, rep.Evidence()...)
	}
	return res, nil
}

func (s *Sim) committedVector() []uint64 {
	out := make([]uint64, 0, len(s.honest))
	for _, id := range s.honestIDs() {
		out = append(out, s.honest[id].Committed())
	}
	return out
}

// Run is the one-call entry point: build and run a configuration.
func Run(cfg Config) (*Result, error) {
	s, err := New(cfg)
	if err != nil {
		return nil, err
	}
	return s.Run()
}
