package sim

import (
	"fmt"
	"os"
	"strconv"
	"strings"
	"testing"

	"iaccf/internal/consensus"
	"iaccf/internal/hashsig"
	"iaccf/internal/ledger"
)

// seedMatrix returns the seeds a matrix test runs. CI pins an explicit
// matrix through SIM_SEEDS ("1,2,3" or "1-100"); the default covers 1..100
// (acceptance: a 100-seed run with drops and reordering converges).
func seedMatrix(t *testing.T) []int64 {
	t.Helper()
	spec := os.Getenv("SIM_SEEDS")
	if spec == "" {
		spec = "1-100"
	}
	var seeds []int64
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if lo, hi, ok := strings.Cut(part, "-"); ok {
			a, err1 := strconv.ParseInt(lo, 10, 64)
			b, err2 := strconv.ParseInt(hi, 10, 64)
			if err1 != nil || err2 != nil || b < a {
				t.Fatalf("bad SIM_SEEDS range %q", part)
			}
			for s := a; s <= b; s++ {
				seeds = append(seeds, s)
			}
			continue
		}
		v, err := strconv.ParseInt(part, 10, 64)
		if err != nil {
			t.Fatalf("bad SIM_SEEDS entry %q", part)
		}
		seeds = append(seeds, v)
	}
	if testing.Short() && len(seeds) > 10 {
		seeds = seeds[:10]
	}
	return seeds
}

// TestSimSeedMatrix is the headline run: honest replicas under heavy drops
// and reordering, across the full seed matrix. Every honest replica must
// finish at identical (seq, ¯M, d_C) — Run asserts divergence itself, and
// any failure message carries the seed for replay.
func TestSimSeedMatrix(t *testing.T) {
	for _, seed := range seedMatrix(t) {
		res, err := Run(Config{
			Seed:        seed,
			Batches:     4,
			DropRate:    0.25,
			ReorderRate: 0.5,
		})
		if err != nil {
			t.Fatal(err)
		}
		if res.Committed != 4 {
			t.Fatalf("seed %d: committed %d batches, want 4", seed, res.Committed)
		}
		if len(res.Blames) != 0 {
			t.Fatalf("seed %d: honest run produced blame: %v", seed, res.Blames[0])
		}
	}
}

// TestSimDeterministicReplay re-runs one seed and demands the identical
// schedule: same step count, same delivery/deferral counters, same final
// state.
func TestSimDeterministicReplay(t *testing.T) {
	run := func() *Result {
		res, err := Run(Config{Seed: 42, Batches: 5, DropRate: 0.3, ReorderRate: 0.6})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a.Steps != b.Steps || a.Delivered != b.Delivered || a.Deferred != b.Deferred {
		t.Fatalf("schedules diverged: (%d,%d,%d) vs (%d,%d,%d)",
			a.Steps, a.Delivered, a.Deferred, b.Steps, b.Delivered, b.Deferred)
	}
	ra, rb := a.Replicas[0].Ledger(), b.Replicas[0].Ledger()
	if ra.HistRoot() != rb.HistRoot() || ra.StateDigest() != rb.StateDigest() {
		t.Fatal("replayed run reached a different final state")
	}
}

// TestSimEquivocatingPrimary is the acceptance scenario: a scripted
// equivocating primary must yield verifiable blame naming its key on every
// honest replica that saw the conflict, and the honest quorum must recover
// liveness through a view change and commit the full workload.
func TestSimEquivocatingPrimary(t *testing.T) {
	culprit := consensus.ReplicaID(0)
	for seed := int64(1); seed <= 10; seed++ {
		res, err := Run(Config{
			Seed:        seed,
			Batches:     3,
			DropRate:    0.1,
			ReorderRate: 0.3,
			Byzantine:   map[consensus.ReplicaID]Behaviour{culprit: BehaviourEquivocate},
		})
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Blames) == 0 {
			t.Fatalf("seed %d: equivocation produced no blame evidence", seed)
		}
		culpritKey := hashsig.GenerateKeyFromSeed(fmt.Sprintf("sim-%d-replica-%d", seed, culprit)).Public()
		for _, bl := range res.Blames {
			if bl.Culprit != culpritKey.ID() {
				t.Fatalf("seed %d: blame names %s, want the equivocator's key %s", seed, bl.Culprit, culpritKey.ID())
			}
			if !bl.Verify(culpritKey) {
				t.Fatalf("seed %d: blame evidence fails offline verification", seed)
			}
		}
		if res.Committed != 3 {
			t.Fatalf("seed %d: liveness not recovered, committed %d", seed, res.Committed)
		}
		if res.FinalView == 0 {
			t.Fatalf("seed %d: no view change despite a faulty primary", seed)
		}
	}
}

// TestSimSilentPrimary: the initial primary crashes from the start; the
// rest must view-change past it and commit everything.
func TestSimSilentPrimary(t *testing.T) {
	for seed := int64(1); seed <= 10; seed++ {
		res, err := Run(Config{
			Seed:        seed,
			Batches:     3,
			DropRate:    0.15,
			ReorderRate: 0.4,
			Byzantine:   map[consensus.ReplicaID]Behaviour{0: BehaviourSilent},
		})
		if err != nil {
			t.Fatal(err)
		}
		if res.Committed != 3 || res.FinalView == 0 {
			t.Fatalf("seed %d: committed %d in final view %d", seed, res.Committed, res.FinalView)
		}
	}
}

// TestSimPartition splits the network mid-run; the majority side may make
// progress alone, and after healing every honest replica converges.
func TestSimPartition(t *testing.T) {
	for seed := int64(1); seed <= 10; seed++ {
		res, err := Run(Config{
			Seed:        seed,
			Batches:     4,
			DropRate:    0.1,
			ReorderRate: 0.3,
			Partitions: []Partition{{
				From:  50,
				Until: 900,
				Group: map[consensus.ReplicaID]int{3: 1}, // isolate replica 3
			}},
		})
		if err != nil {
			t.Fatal(err)
		}
		if res.Committed != 4 {
			t.Fatalf("seed %d: committed %d after heal", seed, res.Committed)
		}
	}
}

// TestSimReplayMatchesLiveState is the auditing property (paper §5) over a
// consensus-committed stream: replaying any honest replica's batch stream
// must reproduce every other honest replica's live state — store digest and
// ¯M — across seeds and shard counts 1/4/16.
func TestSimReplayMatchesLiveState(t *testing.T) {
	pool := hashsig.NewVerifierPool(0)
	defer pool.Close()
	for _, shards := range []uint32{1, 4, 16} {
		for seed := int64(1); seed <= 5; seed++ {
			res, err := Run(Config{
				Seed:        seed,
				Shards:      shards,
				Batches:     4,
				BatchSize:   4,
				DropRate:    0.2,
				ReorderRate: 0.4,
			})
			if err != nil {
				t.Fatal(err)
			}
			for id, rep := range res.Replicas {
				batches := rep.Ledger().Batches()
				got, err := ledger.Replay(batches, keyFor(seed, id), ledger.KVApp{}, pool)
				if err != nil {
					t.Fatalf("shards %d seed %d: replay of replica %d: %v", shards, seed, id, err)
				}
				if got.Shards != shards {
					t.Fatalf("shards %d seed %d: replay saw %d shards", shards, seed, got.Shards)
				}
				for oid, other := range res.Replicas {
					if got.HistRoot != other.Ledger().HistRoot() {
						t.Fatalf("shards %d seed %d: replay of %d != live ¯M of %d", shards, seed, id, oid)
					}
					if got.StateDigest != other.Ledger().StateDigest() {
						t.Fatalf("shards %d seed %d: replay of %d != live state of %d", shards, seed, id, oid)
					}
				}
			}
		}
	}
}

func keyFor(seed int64, id consensus.ReplicaID) *hashsig.PublicKey {
	return hashsig.GenerateKeyFromSeed(fmt.Sprintf("sim-%d-replica-%d", seed, id)).Public()
}

// TestSimWindowedSchedules attacks the window boundary across window
// sizes: heavy reordering interleaves the W concurrent instances' traffic
// so prepare/commit quorums complete out of sequence order, and the
// workload spans two windows' worth of batches so the boundary slides
// mid-schedule. The per-step canon invariant asserts committed prefixes
// never diverge under W > 1; convergence and a clean blame ledger are
// asserted here.
func TestSimWindowedSchedules(t *testing.T) {
	for _, window := range []int{1, 2, consensus.DefaultWindow} {
		for seed := int64(1); seed <= 5; seed++ {
			res, err := Run(Config{
				Seed:        seed,
				Batches:     2 * consensus.DefaultWindow,
				BatchSize:   2,
				Window:      window,
				DropRate:    0.3,
				ReorderRate: 0.6,
			})
			if err != nil {
				t.Fatalf("window %d: %v", window, err)
			}
			if res.Committed != uint64(2*consensus.DefaultWindow) {
				t.Fatalf("window %d seed %d: committed %d", window, seed, res.Committed)
			}
			if len(res.Blames) != 0 {
				t.Fatalf("window %d seed %d: honest run produced blame", window, seed)
			}
		}
	}
}

// TestSimStateTransferChurn is the bounded-memory acceptance scenario:
// replica 3 sits behind a loss partition until the majority has committed
// more than two checkpoint intervals, so by heal time its peers have pruned
// the batches it missed and the only road back is chunked state transfer.
// The per-step invariant in checkInvariants bounds every replica's retained
// batches at window + max(window, checkpoint interval) throughout; here we
// assert the laggard actually adopted a checkpoint and that the cluster
// still committed the full workload with the laggard participating again.
func TestSimStateTransferChurn(t *testing.T) {
	for _, seed := range seedMatrix(t) {
		res, err := Run(Config{
			Seed:            seed,
			CheckpointEvery: 4,
			Batches:         12,
			DropRate:        0.15,
			ReorderRate:     0.3,
			Partitions: []Partition{{
				From:        0,
				UntilCommit: 9, // > 2x checkpoint interval before heal
				Loss:        true,
				Group:       map[consensus.ReplicaID]int{3: 1},
			}},
		})
		if err != nil {
			t.Fatal(err)
		}
		if res.Committed != 12 {
			t.Fatalf("seed %d: committed %d batches, want 12", seed, res.Committed)
		}
		if len(res.Blames) != 0 {
			t.Fatalf("seed %d: honest churn run produced blame: %v", seed, res.Blames[0])
		}
		if got := res.Replicas[3].Syncs(); got < 1 {
			t.Fatalf("seed %d: laggard rejoined without state transfer (%s)",
				seed, res.Replicas[3].DebugState())
		}
		if res.Lost == 0 {
			t.Fatalf("seed %d: loss partition destroyed no envelopes", seed)
		}
	}
}

// TestSimStateTransferLyingServer adds an adversarial chunk server to the
// churn scenario: replica 1 takes part in consensus honestly but corrupts
// every sync chunk it serves. The laggard must detect the corruption against
// the signed checkpoint digests, ban the liar, and complete the transfer
// from an honest peer.
func TestSimStateTransferLyingServer(t *testing.T) {
	for seed := int64(1); seed <= 10; seed++ {
		res, err := Run(Config{
			Seed:            seed,
			CheckpointEvery: 4,
			Batches:         12,
			DropRate:        0.1,
			ReorderRate:     0.3,
			Byzantine:       map[consensus.ReplicaID]Behaviour{1: BehaviourLyingSync},
			Partitions: []Partition{{
				From:        0,
				UntilCommit: 9,
				Loss:        true,
				Group:       map[consensus.ReplicaID]int{3: 1},
			}},
		})
		if err != nil {
			t.Fatal(err)
		}
		if res.Committed != 12 {
			t.Fatalf("seed %d: committed %d batches, want 12", seed, res.Committed)
		}
		if got := res.Replicas[3].Syncs(); got < 1 {
			t.Fatalf("seed %d: laggard rejoined without state transfer (%s)",
				seed, res.Replicas[3].DebugState())
		}
	}
}
