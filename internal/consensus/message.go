// Package consensus implements the L-PBFT core of IA-CCF (paper §3): the
// pre-prepare / prepare / commit / view-change message flow over signed
// ledger.BatchHeader commitments, with nonce-commitment openings replacing
// commit-phase signatures (Appx. A Lemma 3) and view changes that roll
// replicas back to the last committed batch boundary (Lemma 1).
//
// Every signed message binds the signer's ReplicaID and the view, so a
// replica that signs two conflicting proposals for the same (view, seq) has
// produced self-contained blame evidence (see Blame) naming its key — the
// individual accountability the paper is built around.
package consensus

import (
	"errors"
	"fmt"

	"iaccf/internal/hashsig"
	"iaccf/internal/ledger"
	"iaccf/internal/wire"
)

// ReplicaID indexes a replica within the current configuration. The primary
// of view v is replica v mod n.
type ReplicaID uint32

// MsgType tags the consensus message frames on the wire.
type MsgType uint8

const (
	// MsgPrePrepare carries the primary's proposal plus the batch entries.
	MsgPrePrepare MsgType = 1
	// MsgPrepare is a backup's signed agreement to a proposal, carrying the
	// proposal itself so conflicting primary signatures cross-pollinate into
	// blame evidence.
	MsgPrepare MsgType = 2
	// MsgCommit reveals the sender's nonce preimage; opening the commitment
	// announced in its pre-prepare/prepare authenticates the message without
	// a second signature (Lemma 3), so commits are unsigned.
	MsgCommit MsgType = 3
	// MsgViewChange asks to move to a new view, carrying the sender's
	// committed sequence number and its prepared-but-uncommitted proposal.
	MsgViewChange MsgType = 4
	// MsgNewView is the new primary's 2f+1 view-change certificate.
	MsgNewView MsgType = 5
	// MsgSyncRequest is a laggard's ask for checkpoint availability: who
	// holds a checkpoint past its committed watermark.
	MsgSyncRequest MsgType = 6
	// MsgSyncAvail answers a sync request: the responder's latest committed
	// checkpoint coordinates, anchored by the commit certificate for its
	// latest committed batch.
	MsgSyncAvail MsgType = 7
	// MsgSyncChunkRequest asks one peer for one state or batch chunk of an
	// announced checkpoint.
	MsgSyncChunkRequest MsgType = 8
	// MsgSyncChunk carries one requested chunk: a shard's canonical
	// serialization, or one committed batch of the suffix above the
	// checkpoint.
	MsgSyncChunk MsgType = 9
)

// ErrBadMessage reports a malformed consensus message on decode.
var ErrBadMessage = errors.New("consensus: malformed message")

// maxViewChanges bounds the view-change certificate size accepted on
// decode; any real certificate holds at most n entries.
const maxViewChanges = 1 << 10

// Message is one L-PBFT protocol message.
type Message interface {
	Type() MsgType
	encodeBody(w *wire.Writer)
}

// Domain separators for every consensus signature, so no message can be
// replayed as another kind.
var (
	proposalDomain   = []byte("iaccf-preprepare:")
	prepareDomain    = []byte("iaccf-prepare:")
	viewChangeDomain = []byte("iaccf-viewchange:")
	newViewDomain    = []byte("iaccf-newview:")
)

// Proposal is the signed core of a pre-prepare, detached from the batch
// entries: the view, the proposing primary, the primary-signed batch header
// it commits to, and the primary's nonce commitment H(n). Prepares carry
// the proposal they answer and blame evidence stores conflicting pairs.
type Proposal struct {
	View        uint64
	Primary     ReplicaID
	Header      ledger.BatchHeader
	NonceCommit hashsig.Digest
	Sig         hashsig.Signature
}

// Seq returns the batch sequence number the proposal is for.
func (p *Proposal) Seq() uint64 { return p.Header.Seq }

// SigningDigest returns the digest the primary signs: the view, its own
// identity, the header's signing digest (not its malleable signature
// bytes), and the nonce commitment, domain separated. Signing preimages
// here and below are assembled in pooled scratch: these run for every
// message sent and verified, and must not allocate per call.
func (p *Proposal) SigningDigest() hashsig.Digest {
	b := wire.GetScratch(128)
	b = append(b, proposalDomain...)
	b = wire.AppendUint64(b, p.View)
	b = wire.AppendUint32(b, uint32(p.Primary))
	b = wire.AppendDigest(b, p.Header.SigningDigest())
	b = wire.AppendDigest(b, p.NonceCommit)
	d := hashsig.Sum(b)
	wire.PutScratch(b)
	return d
}

// Verify reports whether the proposal carries a valid signature by pub.
func (p *Proposal) Verify(pub *hashsig.PublicKey) bool {
	return pub.Verify(p.SigningDigest(), p.Sig)
}

func (p *Proposal) encodeTo(w *wire.Writer) {
	w.Uint64(p.View)
	w.Uint32(uint32(p.Primary))
	p.Header.EncodeTo(w)
	w.Digest(p.NonceCommit)
	w.Bytes(p.Sig)
}

func decodeProposal(r *wire.Reader) Proposal {
	var p Proposal
	p.View = r.Uint64()
	p.Primary = ReplicaID(r.Uint32())
	p.Header = ledger.DecodeHeader(r)
	p.NonceCommit = r.Digest()
	p.Sig = r.Bytes(ledger.MaxSigLen)
	return p
}

// PrePrepare is the primary's proposal plus the batch entries backups
// re-execute (ledger.ApplyBatch). Prop.Header is the header of the carried
// batch.
type PrePrepare struct {
	Prop    Proposal
	Entries []ledger.Entry
}

// Type implements Message.
func (m *PrePrepare) Type() MsgType { return MsgPrePrepare }

// Batch reassembles the proposed batch from the header and entries.
func (m *PrePrepare) Batch() *ledger.Batch {
	return &ledger.Batch{Header: m.Prop.Header, Entries: m.Entries}
}

func (m *PrePrepare) encodeBody(w *wire.Writer) {
	m.Prop.encodeTo(w)
	w.Uint32(uint32(len(m.Entries)))
	// One pooled scratch buffer serves every entry: w.Bytes copies the
	// encoding into the frame, so the scratch never escapes.
	b := wire.GetScratch(256)
	for i := range m.Entries {
		b = m.Entries[i].Encode(b[:0])
		w.Bytes(b)
	}
	wire.PutScratch(b)
}

func decodePrePrepare(r *wire.Reader) *PrePrepare {
	m := &PrePrepare{Prop: decodeProposal(r)}
	ne := r.Uint32()
	if r.Err() == nil && ne > ledger.MaxBatchEntries {
		r.Fail(fmt.Errorf("%w: %d entries", ErrBadMessage, ne))
		return m
	}
	m.Entries = make([]ledger.Entry, 0, min(ne, 1024))
	for i := uint32(0); i < ne && r.Err() == nil; i++ {
		// View, not copy: DecodeEntry itself copies everything an Entry
		// retains (Payload), so the frame slice is only read within the loop
		// body and one copy per entry is saved in bytes mode.
		b := r.BytesView(wire.MaxValueLen)
		if r.Err() != nil {
			break
		}
		e, err := ledger.DecodeEntry(b)
		if err != nil {
			r.Fail(err)
			break
		}
		m.Entries = append(m.Entries, e)
	}
	return m
}

// Prepare is a backup's signed agreement to a proposal. It carries the full
// proposal (primary signature included) rather than a bare digest: a
// replica that received a different proposal for the same (view, seq)
// thereby obtains both conflicting primary signatures and can construct
// Blame evidence without any extra round.
type Prepare struct {
	Replica     ReplicaID
	Prop        Proposal
	NonceCommit hashsig.Digest // H(n) of the backup's own commit nonce
	Sig         hashsig.Signature
}

// Type implements Message.
func (m *Prepare) Type() MsgType { return MsgPrepare }

// SigningDigest covers the backup's identity, the proposal it answers, and
// the backup's nonce commitment.
func (m *Prepare) SigningDigest() hashsig.Digest {
	b := wire.GetScratch(128)
	b = append(b, prepareDomain...)
	b = wire.AppendUint32(b, uint32(m.Replica))
	b = wire.AppendDigest(b, m.Prop.SigningDigest())
	b = wire.AppendDigest(b, m.NonceCommit)
	d := hashsig.Sum(b)
	wire.PutScratch(b)
	return d
}

// Verify reports whether the prepare carries a valid signature by pub.
func (m *Prepare) Verify(pub *hashsig.PublicKey) bool {
	return pub.Verify(m.SigningDigest(), m.Sig)
}

func (m *Prepare) encodeBody(w *wire.Writer) {
	w.Uint32(uint32(m.Replica))
	m.Prop.encodeTo(w)
	w.Digest(m.NonceCommit)
	w.Bytes(m.Sig)
}

func decodePrepare(r *wire.Reader) *Prepare {
	m := &Prepare{Replica: ReplicaID(r.Uint32())}
	m.Prop = decodeProposal(r)
	m.NonceCommit = r.Digest()
	m.Sig = r.Bytes(ledger.MaxSigLen)
	return m
}

// Commit reveals the sender's nonce preimage for one instance. It carries
// no signature: only the replica that committed to H(n) in its
// pre-prepare or prepare can produce n, so the opening itself authenticates
// the message (Lemma 3). HeaderDigest pins which proposal the nonce was
// committed for.
type Commit struct {
	View         uint64
	Replica      ReplicaID
	Seq          uint64
	HeaderDigest hashsig.Digest // BatchHeader.SigningDigest of the proposal
	Nonce        hashsig.Nonce
}

// Type implements Message.
func (m *Commit) Type() MsgType { return MsgCommit }

func (m *Commit) encodeBody(w *wire.Writer) {
	w.Uint64(m.View)
	w.Uint32(uint32(m.Replica))
	w.Uint64(m.Seq)
	w.Digest(m.HeaderDigest)
	w.Nonce(m.Nonce)
}

func decodeCommit(r *wire.Reader) *Commit {
	return &Commit{
		View:         r.Uint64(),
		Replica:      ReplicaID(r.Uint32()),
		Seq:          r.Uint64(),
		HeaderDigest: r.Digest(),
		Nonce:        r.Nonce(),
	}
}

// PreparedProof is one prepared-but-uncommitted instance carried inside a
// view-change: the batch's pre-prepare plus the prepares backing it —
// together with the proposal's own primary signature they must cover 2f+1
// replicas.
type PreparedProof struct {
	PP       PrePrepare
	Prepares []Prepare
}

// maxPreparedClaims bounds the prepared-instance list accepted on decode;
// any real list holds at most the proposal window's worth of claims.
const maxPreparedClaims = 1 << 8

// ViewChange asks to move to view NewView. It carries the sender's highest
// committed sequence number with the commit certificate proving it, and one
// PreparedProof per prepared-but-uncommitted instance in the sender's
// proposal window, in ascending sequence order — the new primary must
// re-propose every certified batch of the contiguous uncommitted prefix,
// which is what preserves safety across the change (a batch that committed
// anywhere was prepared by at least f+1 honest replicas, so every 2f+1
// view-change quorum contains one of them; a batch beyond the first
// uncertified gap cannot have committed anywhere, because commits are in
// order). All proofs are made of signed or nonce-opened messages, so no
// claim can be fabricated.
type ViewChange struct {
	NewView      uint64
	Replica      ReplicaID
	CommittedSeq uint64
	// CommitProof certifies CommittedSeq (nil only when CommittedSeq is 0).
	CommitProof *CommitCert
	// Prepared holds the prepared uncommitted instances, ascending by
	// sequence number (gaps allowed: quorums can form out of order).
	Prepared []PreparedProof
	Sig      hashsig.Signature
}

// Type implements Message.
func (m *ViewChange) Type() MsgType { return MsgViewChange }

// SigningDigest covers the target view, the sender, its committed sequence
// number, and the identity of every prepared proposal in order; the
// prepared entries are bound transitively through each header's ¯G.
func (m *ViewChange) SigningDigest() hashsig.Digest {
	b := wire.GetScratch(64 + 32*len(m.Prepared))
	b = append(b, viewChangeDomain...)
	b = wire.AppendUint64(b, m.NewView)
	b = wire.AppendUint32(b, uint32(m.Replica))
	b = wire.AppendUint64(b, m.CommittedSeq)
	b = wire.AppendUint32(b, uint32(len(m.Prepared)))
	for i := range m.Prepared {
		b = wire.AppendDigest(b, m.Prepared[i].PP.Prop.SigningDigest())
	}
	d := hashsig.Sum(b)
	wire.PutScratch(b)
	return d
}

// Verify reports whether the view-change carries a valid signature by pub.
func (m *ViewChange) Verify(pub *hashsig.PublicKey) bool {
	return pub.Verify(m.SigningDigest(), m.Sig)
}

func (m *ViewChange) encodeBody(w *wire.Writer) {
	w.Uint64(m.NewView)
	w.Uint32(uint32(m.Replica))
	w.Uint64(m.CommittedSeq)
	if m.CommitProof != nil {
		w.Uint32(1)
		m.CommitProof.encodeTo(w)
	} else {
		w.Uint32(0)
	}
	w.Uint32(uint32(len(m.Prepared)))
	for i := range m.Prepared {
		m.Prepared[i].PP.encodeBody(w)
		w.Uint32(uint32(len(m.Prepared[i].Prepares)))
		for j := range m.Prepared[i].Prepares {
			m.Prepared[i].Prepares[j].encodeBody(w)
		}
	}
	w.Bytes(m.Sig)
}

func decodeFlag(r *wire.Reader, what string) bool {
	switch flag := r.Uint32(); {
	case r.Err() != nil:
	case flag == 1:
		return true
	case flag != 0:
		r.Fail(fmt.Errorf("%w: %s flag %d", ErrBadMessage, what, flag))
	}
	return false
}

func errTooMany(what string, n uint32) error {
	return fmt.Errorf("%w: %d %s", ErrBadMessage, n, what)
}

func decodeViewChange(r *wire.Reader) *ViewChange {
	m := &ViewChange{
		NewView:      r.Uint64(),
		Replica:      ReplicaID(r.Uint32()),
		CommittedSeq: r.Uint64(),
	}
	if decodeFlag(r, "commit proof") {
		m.CommitProof = decodeCommitCert(r)
	}
	nc := r.Uint32()
	if r.Err() == nil && nc > maxPreparedClaims {
		r.Fail(errTooMany("prepared claims", nc))
		return m
	}
	m.Prepared = make([]PreparedProof, 0, min(nc, 16))
	for i := uint32(0); i < nc && r.Err() == nil; i++ {
		claim := PreparedProof{PP: *decodePrePrepare(r)}
		np := r.Uint32()
		if r.Err() == nil && np > maxViewChanges {
			r.Fail(errTooMany("prepare proofs", np))
			return m
		}
		claim.Prepares = make([]Prepare, 0, min(np, 64))
		for j := uint32(0); j < np && r.Err() == nil; j++ {
			claim.Prepares = append(claim.Prepares, *decodePrepare(r))
		}
		m.Prepared = append(m.Prepared, claim)
	}
	m.Sig = r.Bytes(ledger.MaxSigLen)
	return m
}

// NewView is the new primary's certificate for entering its view: 2f+1
// signed view-changes. Receivers recompute the committed high-water mark
// and the prepared batch to re-propose from the certificate itself, so a
// lying new primary cannot smuggle in a different starting state.
type NewView struct {
	View    uint64
	Replica ReplicaID
	VCs     []ViewChange
	Sig     hashsig.Signature
}

// Type implements Message.
func (m *NewView) Type() MsgType { return MsgNewView }

// SigningDigest covers the view, the sender, and every carried view-change
// (its signing digest and signature bytes, so the certificate cannot be
// reshuffled under the same signature).
func (m *NewView) SigningDigest() hashsig.Digest {
	h := hashsig.BorrowHasher()
	h.Write(newViewDomain)
	var u [8]byte
	h.Write(wire.AppendUint64(u[:0], m.View))
	h.Write(wire.AppendUint32(u[:0], uint32(m.Replica)))
	for i := range m.VCs {
		d := m.VCs[i].SigningDigest()
		h.Write(d[:])
		// Same bytes as wire.AppendBytes: uint32 length prefix, then the
		// signature, streamed without assembling an intermediate slice.
		h.Write(wire.AppendUint32(u[:0], uint32(len(m.VCs[i].Sig))))
		h.Write(m.VCs[i].Sig)
	}
	var d hashsig.Digest
	h.Sum(d[:0])
	hashsig.ReturnHasher(h)
	return d
}

// Verify reports whether the new-view carries a valid signature by pub.
func (m *NewView) Verify(pub *hashsig.PublicKey) bool {
	return pub.Verify(m.SigningDigest(), m.Sig)
}

func (m *NewView) encodeBody(w *wire.Writer) {
	w.Uint64(m.View)
	w.Uint32(uint32(m.Replica))
	w.Uint32(uint32(len(m.VCs)))
	for i := range m.VCs {
		m.VCs[i].encodeBody(w)
	}
	w.Bytes(m.Sig)
}

func decodeNewView(r *wire.Reader) *NewView {
	m := &NewView{
		View:    r.Uint64(),
		Replica: ReplicaID(r.Uint32()),
	}
	n := r.Uint32()
	if r.Err() == nil && n > maxViewChanges {
		r.Fail(fmt.Errorf("%w: %d view-changes", ErrBadMessage, n))
		return m
	}
	m.VCs = make([]ViewChange, 0, min(n, 64))
	for i := uint32(0); i < n && r.Err() == nil; i++ {
		m.VCs = append(m.VCs, *decodeViewChange(r))
	}
	m.Sig = r.Bytes(ledger.MaxSigLen)
	return m
}

// SyncRequest is a laggard's broadcast ask for state transfer: any replica
// holding a committed checkpoint past HaveSeq answers with a SyncAvail.
// Sync messages are unsigned — nothing in them is trusted. The availability
// answer carries a commit certificate, and every chunk is verified against
// the digests that certificate signs over before adoption, so a forged or
// spoofed sync message can waste a round trip but never corrupt state.
type SyncRequest struct {
	Replica ReplicaID // requester
	HaveSeq uint64    // requester's committed watermark
}

// Type implements Message.
func (m *SyncRequest) Type() MsgType { return MsgSyncRequest }

func (m *SyncRequest) encodeBody(w *wire.Writer) {
	w.Uint32(uint32(m.Replica))
	w.Uint64(m.HaveSeq)
}

func decodeSyncRequest(r *wire.Reader) *SyncRequest {
	return &SyncRequest{
		Replica: ReplicaID(r.Uint32()),
		HaveSeq: r.Uint64(),
	}
}

// maxFrontierBytes bounds the encoded history-tree frontier accepted on
// decode: 12 header bytes plus at most 64 peak digests.
const maxFrontierBytes = 1 << 12

// SyncAvail announces what the responder can serve: its latest committed
// checkpoint (sequence number, per-shard digest vector, history-tree
// frontier) plus the commit certificate for its latest committed batch.
// The certificate is the sole trust anchor of the transfer: its signed
// header's d_C must equal the combined shard digest vector, each state
// chunk must hash to its slot in that vector, and the batch suffix up to
// the certified sequence number must replay to the certified header.
type SyncAvail struct {
	Replica      ReplicaID // responder
	Requester    ReplicaID
	CkptSeq      uint64
	ShardDigests []hashsig.Digest
	Frontier     []byte // merkle.Frontier.Encode() at CkptSeq
	Cert         *CommitCert
}

// Type implements Message.
func (m *SyncAvail) Type() MsgType { return MsgSyncAvail }

func (m *SyncAvail) encodeBody(w *wire.Writer) {
	w.Uint32(uint32(m.Replica))
	w.Uint32(uint32(m.Requester))
	w.Uint64(m.CkptSeq)
	w.Uint32(uint32(len(m.ShardDigests)))
	for _, d := range m.ShardDigests {
		w.Digest(d)
	}
	w.Bytes(m.Frontier)
	if m.Cert != nil {
		w.Uint32(1)
		m.Cert.encodeTo(w)
	} else {
		w.Uint32(0)
	}
}

func decodeSyncAvail(r *wire.Reader) *SyncAvail {
	m := &SyncAvail{
		Replica:   ReplicaID(r.Uint32()),
		Requester: ReplicaID(r.Uint32()),
		CkptSeq:   r.Uint64(),
	}
	nd := r.Uint32()
	if r.Err() == nil && nd > wire.MaxStreamShards {
		r.Fail(errTooMany("shard digests", nd))
		return m
	}
	m.ShardDigests = make([]hashsig.Digest, 0, min(nd, 64))
	for i := uint32(0); i < nd && r.Err() == nil; i++ {
		m.ShardDigests = append(m.ShardDigests, r.Digest())
	}
	m.Frontier = r.Bytes(maxFrontierBytes)
	if decodeFlag(r, "sync certificate") {
		m.Cert = decodeCommitCert(r)
	}
	return m
}

// Chunk kinds carried by SyncChunkRequest/SyncChunk.
const (
	// SyncChunkState is one shard's canonical serialization; Index is the
	// shard number. It verifies by hashing to ShardDigests[Index].
	SyncChunkState uint32 = 0
	// SyncChunkBatch is one committed batch above the checkpoint; Index is
	// the offset, so the batch's sequence number is CkptSeq+1+Index. It
	// verifies transitively by replaying onto the checkpoint up to the
	// certified header.
	SyncChunkBatch uint32 = 1
)

// SyncChunkRequest asks Source for one chunk of the checkpoint at CkptSeq.
type SyncChunkRequest struct {
	Replica ReplicaID // requester
	Source  ReplicaID
	CkptSeq uint64
	Kind    uint32
	Index   uint64
}

// Type implements Message.
func (m *SyncChunkRequest) Type() MsgType { return MsgSyncChunkRequest }

func (m *SyncChunkRequest) encodeBody(w *wire.Writer) {
	w.Uint32(uint32(m.Replica))
	w.Uint32(uint32(m.Source))
	w.Uint64(m.CkptSeq)
	w.Uint32(m.Kind)
	w.Uint64(m.Index)
}

func decodeSyncChunkRequest(r *wire.Reader) *SyncChunkRequest {
	return &SyncChunkRequest{
		Replica: ReplicaID(r.Uint32()),
		Source:  ReplicaID(r.Uint32()),
		CkptSeq: r.Uint64(),
		Kind:    r.Uint32(),
		Index:   r.Uint64(),
	}
}

// SyncChunk carries one chunk back to the requester.
type SyncChunk struct {
	Replica   ReplicaID // source
	Requester ReplicaID
	CkptSeq   uint64
	Kind      uint32
	Index     uint64
	Data      []byte
}

// Type implements Message.
func (m *SyncChunk) Type() MsgType { return MsgSyncChunk }

func (m *SyncChunk) encodeBody(w *wire.Writer) {
	w.Uint32(uint32(m.Replica))
	w.Uint32(uint32(m.Requester))
	w.Uint64(m.CkptSeq)
	w.Uint32(m.Kind)
	w.Uint64(m.Index)
	w.Bytes(m.Data)
}

func decodeSyncChunk(r *wire.Reader) *SyncChunk {
	m := &SyncChunk{
		Replica:   ReplicaID(r.Uint32()),
		Requester: ReplicaID(r.Uint32()),
		CkptSeq:   r.Uint64(),
		Kind:      r.Uint32(),
		Index:     r.Uint64(),
	}
	m.Data = r.Bytes(wire.MaxChunkLen)
	return m
}

// EncodeMessage serializes a message as one self-describing frame: the type
// tag byte, then the body in the deterministic wire codec. The frame is
// built with the append-mode writer — one allocation for the frame itself,
// no bufio buffer, no bytes.Buffer growth chain. The returned slice is
// freshly allocated and owned by the caller: frames outlive the call (they
// sit in transport queues), so they are never pooled.
func EncodeMessage(m Message) []byte {
	w := wire.NewAppendWriter(make([]byte, 0, 256))
	w.Uint32(uint32(m.Type()))
	m.encodeBody(w)
	if err := w.Flush(); err != nil {
		// Appending never fails.
		panic(err)
	}
	return w.AppendedBytes()
}

// DecodeMessage parses a frame produced by EncodeMessage. Malformed and
// hostile inputs — unknown tags, truncation, oversized counts, trailing
// garbage — return an error, never panic.
func DecodeMessage(b []byte) (Message, error) {
	r := wire.NewBytesReader(b)
	var m Message
	tag := r.Uint32()
	if r.Err() == nil && tag > uint32(MsgSyncChunk) {
		// Reject out-of-range tags on the full 32 bits: a silent truncation
		// to MsgType's underlying byte would let distinct frames decode to
		// the same message, breaking canonical encoding.
		return nil, fmt.Errorf("%w: unknown type %d", ErrBadMessage, tag)
	}
	switch t := MsgType(tag); t {
	case MsgPrePrepare:
		m = decodePrePrepare(r)
	case MsgPrepare:
		m = decodePrepare(r)
	case MsgCommit:
		m = decodeCommit(r)
	case MsgViewChange:
		m = decodeViewChange(r)
	case MsgNewView:
		m = decodeNewView(r)
	case MsgSyncRequest:
		m = decodeSyncRequest(r)
	case MsgSyncAvail:
		m = decodeSyncAvail(r)
	case MsgSyncChunkRequest:
		m = decodeSyncChunkRequest(r)
	case MsgSyncChunk:
		m = decodeSyncChunk(r)
	default:
		if r.Err() == nil {
			return nil, fmt.Errorf("%w: unknown type %d", ErrBadMessage, t)
		}
	}
	r.ExpectEOF()
	if err := r.Err(); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadMessage, err)
	}
	return m, nil
}
