package consensus

import (
	"fmt"
	"testing"

	"iaccf/internal/hashsig"
	"iaccf/internal/kv"
	"iaccf/internal/ledger"
)

type probeApp struct{}

func (probeApp) Execute(tx *kv.Tx, payload []byte) error { return nil }

func TestHeaderSigCacheCrossKeyProbe(t *testing.T) {
	n := 4
	keys := make([]*hashsig.PrivateKey, n)
	pubs := make([]*hashsig.PublicKey, n)
	for i := range keys {
		keys[i] = hashsig.GenerateKeyFromSeed(fmt.Sprintf("cache-probe-%d", i))
		pubs[i] = keys[i].Public()
	}
	mk := func(id ReplicaID) *Replica {
		r, err := New(Config{ID: id, Key: keys[id], Peers: pubs, App: probeApp{}, CheckpointEvery: 4, Shards: 1})
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	primary := mk(0) // primary of view 0
	backup := mk(1)
	pp, _, err := primary.Propose([]ledger.Request{})
	if err != nil {
		t.Fatal(err)
	}
	// First delivery: valid, caches the header digest.
	if _, err := backup.Handle(pp); err != nil {
		t.Fatalf("valid pre-prepare rejected: %v", err)
	}
	// Tamper the embedded header signature: Proposal.Sig does not cover
	// Header.Sig bytes, so the proposal signature still verifies.
	evil := *pp
	evil.Prop.Header.Sig = []byte("garbage")
	if err := backup.validateProposal(&evil.Prop); err == nil {
		t.Errorf("BUG CONFIRMED: proposal with garbage header signature passes validateProposal (cache hit)")
	}
	// Fresh backup with cold cache rejects it, showing divergent validation.
	cold := mk(2)
	if err := cold.validateProposal(&evil.Prop); err == nil {
		t.Errorf("cold replica also accepts garbage header sig?!")
	}
}
