package consensus

import (
	"bytes"

	"testing"

	"iaccf/internal/hashsig"
	"iaccf/internal/ledger"
)

// messageCorpus builds one valid frame of every message type plus mutated
// variants. The seeds run under plain `go test` too, making this a
// decoder regression table even when fuzzing is off.
func messageCorpus() [][]byte {
	key := hashsig.GenerateKeyFromSeed("fuzz-corpus")
	led, err := ledger.New(ledger.Config{Key: key, App: ledger.KVApp{}})
	if err != nil {
		panic(err)
	}
	batch, _, err := led.ExecuteBatch([]ledger.Request{{
		Author: hashsig.Sum([]byte("client")),
		ReqNo:  1,
		Body:   ledger.EncodeOps([]ledger.Op{{Key: "k", Val: []byte("v")}}),
	}})
	if err != nil {
		panic(err)
	}
	nonce := hashsig.NonceFromSeed("fuzz-nonce")
	prop := Proposal{View: 1, Primary: 1, Header: batch.Header, NonceCommit: nonce.Commit()}
	prop.Sig = key.MustSign(prop.SigningDigest())
	pp := &PrePrepare{Prop: prop, Entries: batch.Entries}
	prep := &Prepare{Replica: 2, Prop: prop, NonceCommit: nonce.Commit()}
	prep.Sig = key.MustSign(prep.SigningDigest())
	cm := &Commit{View: 1, Replica: 2, Seq: 1, HeaderDigest: batch.Header.SigningDigest(), Nonce: nonce}
	vc := &ViewChange{
		NewView: 2, Replica: 3, CommittedSeq: 1,
		CommitProof: &CommitCert{Prop: prop, Prepares: []Prepare{*prep}, Opens: []NonceOpen{{Replica: 2, Nonce: nonce}}},
		Prepared:    []PreparedProof{{PP: *pp, Prepares: []Prepare{*prep}}},
	}
	vc.Sig = key.MustSign(vc.SigningDigest())
	nv := &NewView{View: 2, Replica: 2, VCs: []ViewChange{*vc}}
	nv.Sig = key.MustSign(nv.SigningDigest())

	var out [][]byte
	for _, m := range []Message{pp, prep, cm, vc, nv} {
		frame := EncodeMessage(m)
		out = append(out, frame)
		out = append(out, frame[:len(frame)/2])
		mutated := append([]byte(nil), frame...)
		mutated[4] ^= 0xff
		out = append(out, mutated)
	}
	out = append(out, nil, []byte{0, 0, 0, 0}, []byte{0, 0, 0, 9, 1, 2, 3})
	return out
}

// FuzzDecodeMessage: no input may panic the consensus decoders, and
// anything that decodes must re-encode canonically to the identical frame.
func FuzzDecodeMessage(f *testing.F) {
	for _, seed := range messageCorpus() {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := DecodeMessage(data)
		if err != nil {
			if m != nil {
				t.Fatal("decode returned both a message and an error")
			}
			return
		}
		re := EncodeMessage(m)
		if !bytes.Equal(re, data) {
			t.Fatalf("decode/encode not canonical:\n in  %x\n out %x", data, re)
		}
		if _, err := DecodeMessage(re); err != nil {
			t.Fatalf("re-encoded frame does not decode: %v", err)
		}
	})
}

// TestMessageCorpusDecodes pins the corpus expectations explicitly: intact
// frames decode, truncations error, and nothing panics.
func TestMessageCorpusDecodes(t *testing.T) {
	corpus := messageCorpus()
	for i, frame := range corpus {
		m, err := DecodeMessage(frame)
		if i%3 == 0 && i < 15 { // the intact frames
			if err != nil {
				t.Fatalf("frame %d: valid message rejected: %v", i, err)
			}
			if !bytes.Equal(EncodeMessage(m), frame) {
				t.Fatalf("frame %d: not canonical", i)
			}
			continue
		}
		// Mutants may or may not decode; the requirement is no panic and
		// canonical round-trip when they do.
		if err == nil && !bytes.Equal(EncodeMessage(m), frame) {
			t.Fatalf("frame %d (%T): mutant decoded non-canonically", i, m)
		}
	}
}

func TestFuzzCorpusCoversAllTypes(t *testing.T) {
	seen := map[MsgType]bool{}
	for _, frame := range messageCorpus() {
		if m, err := DecodeMessage(frame); err == nil {
			seen[m.Type()] = true
		}
	}
	for _, want := range []MsgType{MsgPrePrepare, MsgPrepare, MsgCommit, MsgViewChange, MsgNewView} {
		if !seen[want] {
			t.Fatalf("corpus has no valid frame of type %d", want)
		}
	}
}
