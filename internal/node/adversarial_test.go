package node

import (
	"fmt"
	"testing"

	"iaccf/internal/consensus"
	"iaccf/internal/hashsig"
	"iaccf/internal/ledger"
	"iaccf/internal/transport"
)

// TestAdversarialTransportSchedules is the transport-double counterpart
// of the consensus sim matrix: honest replicas talk ONLY through the
// Transport interface (the tampering loopback hub), the network drops,
// duplicates, and reorders frames under a seeded schedule, and after
// every delivery step the sim's safety invariant is re-checked — any two
// replicas that committed a sequence committed byte-identical headers,
// and no honest replica is ever blamed. Every seed must also make
// progress: retransmission over a lossy network is exactly what the
// protocol's Retransmit/SyncTick machinery exists for.
func TestAdversarialTransportSchedules(t *testing.T) {
	for seed := int64(1); seed <= 12; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			runAdversarialSchedule(t, seed)
		})
	}
}

func runAdversarialSchedule(t *testing.T, seed int64) {
	const (
		n           = 4
		targetSeq   = 8
		maxSteps    = 60000
		tickEvery   = 23
		retransmit  = 41
		proposeStep = 50
	)
	keys, pubs := clusterKeys(fmt.Sprintf("adv-%d", seed), n)
	reps := make([]*consensus.Replica, n)
	for i := 0; i < n; i++ {
		r, err := consensus.New(consensus.Config{
			ID:              consensus.ReplicaID(i),
			Key:             keys[i],
			Peers:           pubs,
			App:             ledger.KVApp{},
			CheckpointEvery: 4,
			Shards:          1,
		})
		if err != nil {
			t.Fatal(err)
		}
		reps[i] = r
	}

	hub := transport.NewHub(seed, transport.TamperPolicy{
		DropRate:      0.05,
		DupRate:       0.05,
		ReorderWindow: 8,
	})
	eps := make([]transport.Transport, n)
	route := func(i int, outs []consensus.Outbound) {
		for _, o := range outs {
			f := consensus.EncodeMessage(o.Msg)
			if o.IsBroadcast() {
				eps[i].Broadcast(f)
			} else {
				eps[i].Send(transport.NodeID(o.Dest), f)
			}
		}
	}
	for i := 0; i < n; i++ {
		i := i
		eps[i] = hub.Endpoint(transport.NodeID(i), func(from transport.NodeID, frame []byte) {
			m, err := consensus.DecodeMessage(frame)
			if err != nil {
				t.Fatalf("replica %d: malformed frame from %d: %v", i, from, err)
			}
			outs, _ := reps[i].Handle(m)
			route(i, outs)
		})
	}

	// The sim's safety invariant: one canonical header per committed seq.
	canon := make(map[uint64]hashsig.Digest)
	checked := make([]uint64, n)
	checkInvariants := func(step int) {
		for i, r := range reps {
			committed := r.Committed()
			if committed < checked[i] {
				t.Fatalf("step %d: replica %d committed watermark regressed %d -> %d",
					step, i, checked[i], committed)
			}
			if committed == checked[i] {
				continue
			}
			for _, b := range r.Ledger().Batches() {
				seq := b.Header.Seq
				if seq <= checked[i] || seq > committed {
					continue
				}
				d := b.Header.SigningDigest()
				if prev, ok := canon[seq]; ok {
					if prev != d {
						t.Fatalf("step %d: safety violation: replica %d committed a different header at seq %d",
							step, i, seq)
					}
				} else {
					canon[seq] = d
				}
			}
			checked[i] = committed
		}
		for i, r := range reps {
			if len(r.Evidence()) != 0 {
				t.Fatalf("step %d: honest replica %d produced blame evidence", step, i)
			}
		}
	}

	author := hashsig.Sum([]byte("adv-client"))
	nextReq := uint64(1)
	primary := 0 // view 0
	done := func() bool {
		for _, r := range reps {
			if r.Committed() < targetSeq {
				return false
			}
		}
		return true
	}
	for step := 0; step < maxSteps; step++ {
		if done() {
			break
		}
		if step%proposeStep == 0 && reps[primary].IsPrimary() && reps[primary].CanPropose() {
			var batch []ledger.Request
			for k := 0; k < 3; k++ {
				batch = append(batch, ledger.Request{
					Author: author,
					ReqNo:  nextReq,
					Body:   ledger.EncodeOps([]ledger.Op{{Key: fmt.Sprintf("k%d", nextReq), Val: []byte("v")}}),
				})
				nextReq++
			}
			pp, _, err := reps[primary].Propose(batch)
			if err != nil {
				t.Fatal(err)
			}
			route(primary, []consensus.Outbound{{Dest: consensus.Broadcast, Msg: pp}})
		}
		if step%tickEvery == 0 {
			for i := range reps {
				route(i, reps[i].SyncTick())
			}
		}
		if step%retransmit == 0 {
			for i := range reps {
				route(i, reps[i].Retransmit())
			}
		}
		// Drain faster than the cadences (and handler responses) enqueue:
		// a single delivery per step lets the queue grow without bound,
		// and with a bounded reorder window a deep backlog starves every
		// recently-sent frame — that is a harness artifact, not a network
		// behavior the protocol must survive. A bounded drain keeps the
		// backlog finite while still interleaving deliveries with the
		// propose/tick/retransmit schedule.
		for k := 0; k < 16; k++ {
			if !hub.Step() {
				break
			}
		}
		checkInvariants(step)
	}
	if !done() {
		var state []string
		for i, r := range reps {
			state = append(state, fmt.Sprintf("replica %d committed %d [%s]", i, r.Committed(), r.DebugState()))
		}
		t.Fatalf("seed %d stalled before seq %d after %d steps (lost %d frames): %v",
			seed, targetSeq, maxSteps, hub.Lost(), state)
	}
}
