package node

import "time"

// Clock is the tick seam between wall time and consensus logic. The
// consensus package counts ticks, never reads a clock (its determinism is
// analyzer-enforced; see internal/analysis); the node runtime consumes
// whatever Clock it was configured with and converts tick arrivals into
// SyncTick / Retransmit / OnTimeout calls. Production nodes use a
// WallClock; tests hand-drive a ManualClock, which makes every timing
// scenario — stalls, retransmit cadence, sync backoff — reproducible
// without sleeping.
type Clock interface {
	// C delivers tick events. The tick value is opaque to the runtime;
	// only arrivals matter.
	C() <-chan time.Time
	// Stop releases the clock's resources. No more ticks are delivered.
	Stop()
}

// WallClock ticks at a fixed wall-time interval.
type WallClock struct {
	t *time.Ticker
}

// NewWallClock builds a ticking wall clock.
func NewWallClock(interval time.Duration) *WallClock {
	return &WallClock{t: time.NewTicker(interval)}
}

func (w *WallClock) C() <-chan time.Time { return w.t.C }
func (w *WallClock) Stop()               { w.t.Stop() }

// ManualClock delivers a tick per Advance call, synchronously: Advance
// returns only after the runtime has accepted the tick, so a test that
// calls Advance then inspects state observes the tick's effects.
type ManualClock struct {
	ch   chan time.Time
	done chan struct{}
}

// NewManualClock builds a hand-driven clock.
func NewManualClock() *ManualClock {
	return &ManualClock{ch: make(chan time.Time), done: make(chan struct{})}
}

func (m *ManualClock) C() <-chan time.Time { return m.ch }

func (m *ManualClock) Stop() {
	select {
	case <-m.done:
	default:
		close(m.done)
	}
}

// Advance delivers n ticks, blocking until each is accepted. Returns
// early if the clock is stopped.
func (m *ManualClock) Advance(n int) {
	for i := 0; i < n; i++ {
		select {
		case m.ch <- time.Time{}:
		case <-m.done:
			return
		}
	}
}
