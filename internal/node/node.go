// Package node is the runtime that turns a deterministic consensus
// replica into a networked cluster member. It owns everything the
// consensus package deliberately does not: the wall clock (through the
// Clock seam), the transport, the transaction pool feeding the primary,
// and the client submission path with receipt delivery.
//
// One goroutine — the run loop — owns the consensus.Replica. Transport
// handlers and RPC submissions communicate with it only through channels,
// so replica state remains a pure function of the sequence of messages
// and ticks the loop consumed, exactly the property the sim harness and
// the detsource analyzer enforce on the layers below.
package node

import (
	"fmt"
	"sync/atomic"

	"iaccf/internal/consensus"
	"iaccf/internal/hashsig"
	"iaccf/internal/ledger"
	"iaccf/internal/transport"
	"iaccf/internal/txpool"
)

// Status is the submission RPC verdict.
type Status uint8

const (
	// StatusCommitted: the request executed and committed; the result
	// carries its receipt.
	StatusCommitted Status = 1
	// StatusNotPrimary: this node is a backup; the result names the
	// current leader for the client to resubmit to.
	StatusNotPrimary Status = 2
	// StatusBusy: the transaction pool is full — backpressure, retry
	// with backoff.
	StatusBusy Status = 3
	// StatusTooLarge: the request body exceeds ledger.MaxRequestLen.
	StatusTooLarge Status = 4
	// StatusDuplicate: the exact request was already committed or is no
	// longer pending; the client has (or had) its receipt.
	StatusDuplicate Status = 5
	// StatusTimeout: the request did not commit within the node's
	// patience; the client should retry (possibly against a new leader).
	StatusTimeout Status = 6
	// StatusShutdown: the node stopped before the request resolved.
	StatusShutdown Status = 7
)

func (s Status) String() string {
	switch s {
	case StatusCommitted:
		return "committed"
	case StatusNotPrimary:
		return "not-primary"
	case StatusBusy:
		return "busy"
	case StatusTooLarge:
		return "too-large"
	case StatusDuplicate:
		return "duplicate"
	case StatusTimeout:
		return "timeout"
	case StatusShutdown:
		return "shutdown"
	default:
		return fmt.Sprintf("status(%d)", uint8(s))
	}
}

// SubmitResult is one submission's outcome.
type SubmitResult struct {
	Status  Status
	Leader  transport.NodeID // set for StatusNotPrimary
	Receipt *ledger.Receipt  // set for StatusCommitted
}

// Config parameterizes a Node.
type Config struct {
	// Consensus configures the replica this node runs. Required.
	Consensus consensus.Config
	// Transport moves frames between cluster nodes. Required. The node
	// registers no handler itself — wire InboundHandler() as the
	// transport's Handler.
	Transport transport.Transport
	// Clock drives ticks. Required.
	Clock Clock
	// Pool is the transaction pool. Nil means a default-capacity pool.
	Pool *txpool.Pool
	// BatchMax bounds requests per proposed batch. 0 means 64.
	BatchMax int
	// RetransmitEvery is the tick cadence of Retransmit. 0 means 8.
	RetransmitEvery int
	// StallTicks is how many ticks without commit progress (with work in
	// flight) the node tolerates before voting for a view change.
	// 0 means 32.
	StallTicks int
	// SubmitPatienceTicks bounds how long a pending submission waits for
	// its commit before StatusTimeout. 0 means 128.
	SubmitPatienceTicks int
}

type inFrame struct {
	from  transport.NodeID
	frame []byte
}

type submission struct {
	rq   ledger.Request
	resp chan SubmitResult
}

type waiter struct {
	resp     chan SubmitResult
	deadline uint64 // tick number
}

// pendingSub links one proposed request to its receipt slot: rcIdx indexes
// the batch's receipts for transactions, -1 for governance actions (which
// get no receipt — the ledger records them without execution).
type pendingSub struct {
	hash  hashsig.Digest
	rcIdx int
}

// pendingBatch parks a speculative proposal's delivery material until its
// sequence commits. The header digest is the speculative header's signing
// digest: delivery compares it against the batch that actually committed
// at that sequence, so a view change that replaced the batch can never
// hand a client a receipt for content that did not commit.
type pendingBatch struct {
	view         uint64
	headerDigest hashsig.Digest
	rcs          []ledger.Receipt
	subs         []pendingSub
}

// Node runs one cluster member: replica, pool, and delivery bookkeeping.
type Node struct {
	cfg  Config
	rep  *consensus.Replica
	pool *txpool.Pool

	frames  chan inFrame
	submits chan submission
	stop    chan struct{}
	stopped chan struct{}

	// Run-loop-owned state (no locks: single consumer).
	ticks            uint64
	lastCommitted    uint64
	lastProgressTick uint64
	pending          map[uint64]pendingBatch
	waiters          map[hashsig.Digest][]waiter

	committedSeqs    atomic.Uint64
	committedEntries atomic.Uint64
}

// New builds a node (replica included) but does not start it.
func New(cfg Config) (*Node, error) {
	if cfg.Transport == nil {
		return nil, fmt.Errorf("node: nil transport")
	}
	if cfg.Clock == nil {
		return nil, fmt.Errorf("node: nil clock")
	}
	if cfg.BatchMax <= 0 {
		cfg.BatchMax = 64
	}
	if cfg.RetransmitEvery <= 0 {
		cfg.RetransmitEvery = 8
	}
	if cfg.StallTicks <= 0 {
		cfg.StallTicks = 32
	}
	if cfg.SubmitPatienceTicks <= 0 {
		cfg.SubmitPatienceTicks = 128
	}
	rep, err := consensus.New(cfg.Consensus)
	if err != nil {
		return nil, err
	}
	pool := cfg.Pool
	if pool == nil {
		pool = txpool.New(txpool.Config{})
	}
	return &Node{
		cfg:     cfg,
		rep:     rep,
		pool:    pool,
		frames:  make(chan inFrame, 1024),
		submits: make(chan submission, 256),
		stop:    make(chan struct{}),
		stopped: make(chan struct{}),
		pending: make(map[uint64]pendingBatch),
		waiters: make(map[hashsig.Digest][]waiter),
	}, nil
}

// InboundHandler returns the transport.Handler feeding this node. The
// frame is copied (the transport reuses its buffer); a full inbound queue
// drops the frame, which retransmission covers.
func (n *Node) InboundHandler() transport.Handler {
	return func(from transport.NodeID, frame []byte) {
		f := inFrame{from: from, frame: append([]byte(nil), frame...)}
		select {
		case n.frames <- f:
		case <-n.stop:
		default:
		}
	}
}

// Start launches the run loop.
func (n *Node) Start() { go n.run() }

// Stop halts the run loop and fails pending submissions with
// StatusShutdown. It does not close the transport or the clock — the
// caller owns both.
func (n *Node) Stop() {
	select {
	case <-n.stop:
	default:
		close(n.stop)
	}
	<-n.stopped
}

// CommittedSeqs reports the committed sequence watermark.
func (n *Node) CommittedSeqs() uint64 { return n.committedSeqs.Load() }

// CommittedEntries reports committed ledger entries across all batches —
// the throughput numerator for entries/sec.
func (n *Node) CommittedEntries() uint64 { return n.committedEntries.Load() }

// Submit hands one client request to the node and blocks until it
// commits (receipt attached), fails fast (not primary / busy / too
// large / duplicate), times out, or the node stops.
func (n *Node) Submit(rq ledger.Request) SubmitResult {
	s := submission{rq: rq, resp: make(chan SubmitResult, 1)}
	select {
	case n.submits <- s:
	case <-n.stop:
		return SubmitResult{Status: StatusShutdown}
	}
	select {
	case r := <-s.resp:
		return r
	case <-n.stopped:
		return SubmitResult{Status: StatusShutdown}
	}
}

func (n *Node) run() {
	defer close(n.stopped)
	for {
		select {
		case <-n.stop:
			for h, ws := range n.waiters {
				for _, w := range ws {
					w.resp <- SubmitResult{Status: StatusShutdown}
				}
				delete(n.waiters, h)
			}
			return
		case f := <-n.frames:
			n.onFrame(f)
		case <-n.cfg.Clock.C():
			n.onTick()
		case s := <-n.submits:
			n.onSubmit(s)
		}
	}
}

// route encodes and ships consensus envelopes: broadcast sentinel to all
// peers, addressed envelopes to exactly their destination. This is where
// the Outbound API pays off — sync offer and chunk traffic leaves on one
// lane instead of n-1.
func (n *Node) route(outs []consensus.Outbound) {
	for _, o := range outs {
		frame := consensus.EncodeMessage(o.Msg)
		if o.IsBroadcast() {
			n.cfg.Transport.Broadcast(frame)
		} else {
			n.cfg.Transport.Send(transport.NodeID(o.Dest), frame)
		}
	}
}

func (n *Node) onFrame(f inFrame) {
	m, err := consensus.DecodeMessage(f.frame)
	if err != nil {
		return // malformed frame: the sender's problem
	}
	outs, _ := n.rep.Handle(m)
	n.route(outs)
	n.afterProgress()
}

func (n *Node) onTick() {
	n.ticks++
	n.route(n.rep.SyncTick())
	n.proposeFromPool()
	if n.ticks%uint64(n.cfg.RetransmitEvery) == 0 {
		n.route(n.rep.Retransmit())
	}
	if n.rep.InFlight() > 0 && n.ticks-n.lastProgressTick >= uint64(n.cfg.StallTicks) {
		n.route(n.rep.OnTimeout())
		n.lastProgressTick = n.ticks // re-arm rather than fire every tick
	}
	n.expireWaiters()
	n.afterProgress()
}

// proposeFromPool drains the pool into proposals while the window has
// room. Receipts from Propose are speculative until the sequence commits;
// they are parked per seq and delivered by afterProgress.
func (n *Node) proposeFromPool() {
	for n.rep.IsPrimary() && n.rep.CanPropose() {
		batch := n.pool.NextBatch(n.cfg.BatchMax)
		if len(batch) == 0 {
			return
		}
		pp, rcs, err := n.rep.Propose(batch)
		if err != nil {
			// The batch is lost from the pool; clients retry via timeout.
			return
		}
		pb := pendingBatch{
			view:         n.rep.View(),
			headerDigest: pp.Prop.Header.SigningDigest(),
			rcs:          rcs,
		}
		ti := 0
		for i := range batch {
			idx := -1
			if !batch[i].Governance {
				idx = ti
				ti++
			}
			pb.subs = append(pb.subs, pendingSub{hash: txpool.Hash(&batch[i]), rcIdx: idx})
		}
		n.pending[pp.Prop.Header.Seq] = pb
		n.route([]consensus.Outbound{{Dest: consensus.Broadcast, Msg: pp}})
	}
}

// afterProgress reconciles the committed watermark: counts throughput,
// delivers parked receipts to their waiters, and feeds committed request
// hashes back to the pool's duplicate filter.
func (n *Node) afterProgress() {
	c := n.rep.Committed()
	if c <= n.lastCommitted {
		return
	}
	for seq := n.lastCommitted + 1; seq <= c; seq++ {
		n.deliverSeq(seq)
	}
	// The committed entry count comes from the watermark batch's signed
	// header: HistSize is cumulative, so the counter stays exact even when
	// a checkpoint install (sync) or an aggressive prune removed the
	// individual batches a commit jump covered.
	if b := n.rep.Ledger().BatchAt(c); b != nil {
		n.committedEntries.Store(b.Header.HistSize)
	}
	n.lastCommitted = c
	n.lastProgressTick = n.ticks
	n.committedSeqs.Store(c)
}

func (n *Node) deliverSeq(seq uint64) {
	b := n.rep.Ledger().BatchAt(seq)
	if b != nil {
		// Suppress client retries of transactions this batch committed —
		// including batches proposed by another primary. (Governance
		// entries drop the request number on the ledger, so their
		// duplicate suppression rests on the pool's drain memo alone.)
		for i := range b.Entries {
			e := &b.Entries[i]
			if e.Kind != ledger.KindTransaction {
				continue
			}
			rq := ledger.Request{Author: e.Author, ReqNo: e.ReqNo, Body: e.Payload}
			n.pool.Observe(txpool.Hash(&rq))
		}
	}
	pb, ok := n.pending[seq]
	if !ok {
		return
	}
	delete(n.pending, seq)
	// A view change may have replaced the speculative batch this material
	// was minted for. When the committed batch is retained, compare headers
	// directly. When a commit jump already pruned it, fall back to the view:
	// within one view the primary signs exactly one pre-prepare per
	// sequence, so if the view never changed since Propose, the batch that
	// committed at seq can only be the one these receipts embed.
	if b != nil {
		if b.Header.SigningDigest() != pb.headerDigest {
			return
		}
	} else if n.rep.View() != pb.view {
		return
	}
	for _, sub := range pb.subs {
		ws := n.waiters[sub.hash]
		if len(ws) == 0 {
			continue
		}
		delete(n.waiters, sub.hash)
		var rc *ledger.Receipt
		if sub.rcIdx >= 0 && sub.rcIdx < len(pb.rcs) {
			rc = &pb.rcs[sub.rcIdx]
		}
		for _, w := range ws {
			w.resp <- SubmitResult{Status: StatusCommitted, Receipt: rc}
		}
	}
}

func (n *Node) expireWaiters() {
	for h, ws := range n.waiters {
		keep := ws[:0]
		for _, w := range ws {
			if n.ticks >= w.deadline {
				w.resp <- SubmitResult{Status: StatusTimeout}
			} else {
				keep = append(keep, w)
			}
		}
		if len(keep) == 0 {
			delete(n.waiters, h)
		} else {
			n.waiters[h] = keep
		}
	}
}

func (n *Node) onSubmit(s submission) {
	if !n.rep.IsPrimary() {
		nPeers := uint64(len(n.cfg.Consensus.Peers))
		s.resp <- SubmitResult{
			Status: StatusNotPrimary,
			Leader: transport.NodeID(n.rep.View() % nPeers),
		}
		return
	}
	h := txpool.Hash(&s.rq)
	err := n.pool.Add(s.rq)
	switch {
	case err == nil:
		// Pooled: wait for commit.
	case err == txpool.ErrTooLarge:
		s.resp <- SubmitResult{Status: StatusTooLarge}
		return
	case err == txpool.ErrFull:
		s.resp <- SubmitResult{Status: StatusBusy}
		return
	case err == txpool.ErrDuplicate:
		if len(n.waiters[h]) == 0 {
			// Already drained with no one waiting: the commit (if any)
			// has passed; tell the client it is a duplicate.
			s.resp <- SubmitResult{Status: StatusDuplicate}
			return
		}
		// In flight: join the existing waiters.
	default:
		s.resp <- SubmitResult{Status: StatusBusy}
		return
	}
	n.waiters[h] = append(n.waiters[h], waiter{
		resp:     s.resp,
		deadline: n.ticks + uint64(n.cfg.SubmitPatienceTicks),
	})
}
