package node

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"iaccf/internal/ledger"
	"iaccf/internal/transport"
)

// Client submission RPC wire format. A connection carries a sequence of
// request/response exchanges, length-framed like the replica transport
// but with its own magic (clients are not cluster members and never enter
// the replica handshake):
//
//	hello:    magic (4, big-endian, ClientMagic) | version (4, VCurrent)
//	request:  length (4) | ledger.EncodeRequest body
//	response: length (4) | status (1) | payload
//
// Response payloads by status: StatusCommitted carries the encoded
// receipt; StatusNotPrimary carries the leader's node ID (4, big-endian);
// everything else is empty. Request bodies are capped just above
// ledger.MaxRequestLen — the ingress cap is enforced again by decode and
// by the pool, but the frame bound stops an oversized body before it is
// even read.
const (
	// ClientMagic opens every client RPC connection ("iacC").
	ClientMagic = 0x69616343
	// maxRPCFrame bounds client request frames: the body cap plus the
	// request envelope (flag, author, reqno, length prefixes).
	maxRPCFrame = ledger.MaxRequestLen + 128
)

// RPCServer serves the client submission RPC for one node.
type RPCServer struct {
	node *Node
	ln   net.Listener

	mu     sync.Mutex
	closed bool
	conns  map[net.Conn]struct{}
	wg     sync.WaitGroup
}

// ServeRPC starts a submission RPC listener on addr for the node.
func ServeRPC(n *Node, addr string) (*RPCServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("node: rpc listen %s: %w", addr, err)
	}
	s := &RPCServer{node: n, ln: ln, conns: make(map[net.Conn]struct{})}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the bound RPC address.
func (s *RPCServer) Addr() net.Addr { return s.ln.Addr() }

// Close stops the listener and all client connections.
func (s *RPCServer) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	s.ln.Close()
	s.wg.Wait()
	return nil
}

func (s *RPCServer) acceptLoop() {
	defer s.wg.Done()
	for {
		c, err := s.ln.Accept()
		if err != nil {
			return
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			c.Close()
			return
		}
		s.conns[c] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go s.serveConn(c)
	}
}

func (s *RPCServer) serveConn(c net.Conn) {
	defer s.wg.Done()
	defer func() {
		s.mu.Lock()
		delete(s.conns, c)
		s.mu.Unlock()
		c.Close()
	}()
	br := bufio.NewReaderSize(c, 1<<16)
	var hello [8]byte
	if _, err := io.ReadFull(br, hello[:]); err != nil {
		return
	}
	if binary.BigEndian.Uint32(hello[0:4]) != ClientMagic ||
		binary.BigEndian.Uint32(hello[4:8]) != transport.VCurrent {
		return
	}
	bw := bufio.NewWriterSize(c, 1<<16)
	var lenBuf [4]byte
	for {
		if _, err := io.ReadFull(br, lenBuf[:]); err != nil {
			return
		}
		nb := binary.BigEndian.Uint32(lenBuf[:])
		if nb > maxRPCFrame {
			// Don't even read the body; answer and hang up.
			writeRPCResponse(bw, SubmitResult{Status: StatusTooLarge})
			bw.Flush()
			return
		}
		body := make([]byte, nb)
		if _, err := io.ReadFull(br, body); err != nil {
			return
		}
		res := s.submit(body)
		if err := writeRPCResponse(bw, res); err != nil {
			return
		}
		if err := bw.Flush(); err != nil {
			return
		}
	}
}

func (s *RPCServer) submit(body []byte) SubmitResult {
	rq, err := ledger.DecodeRequest(body)
	if err != nil {
		// Malformed or over-cap request body.
		return SubmitResult{Status: StatusTooLarge}
	}
	return s.node.Submit(rq)
}

func writeRPCResponse(w *bufio.Writer, res SubmitResult) error {
	payload := []byte{byte(res.Status)}
	switch res.Status {
	case StatusCommitted:
		if res.Receipt != nil {
			payload = ledger.EncodeReceipt(payload, res.Receipt)
		}
	case StatusNotPrimary:
		var leader [4]byte
		binary.BigEndian.PutUint32(leader[:], uint32(res.Leader))
		payload = append(payload, leader[:]...)
	}
	var lenBuf [4]byte
	binary.BigEndian.PutUint32(lenBuf[:], uint32(len(payload)))
	if _, err := w.Write(lenBuf[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// RPCClient is a client-side connection to one node's submission RPC.
type RPCClient struct {
	mu sync.Mutex
	c  net.Conn
	br *bufio.Reader
	bw *bufio.Writer
}

// DialRPC connects to a node's submission RPC.
func DialRPC(addr string, timeout time.Duration) (*RPCClient, error) {
	c, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, err
	}
	var hello [8]byte
	binary.BigEndian.PutUint32(hello[0:4], ClientMagic)
	binary.BigEndian.PutUint32(hello[4:8], transport.VCurrent)
	if _, err := c.Write(hello[:]); err != nil {
		c.Close()
		return nil, err
	}
	return &RPCClient{
		c:  c,
		br: bufio.NewReaderSize(c, 1<<16),
		bw: bufio.NewWriterSize(c, 1<<16),
	}, nil
}

// Close shuts the connection.
func (cl *RPCClient) Close() error { return cl.c.Close() }

// Submit sends one request and blocks for its verdict. One in-flight
// exchange per client; use several clients for pipelining. A zero
// timeout means no deadline.
func (cl *RPCClient) Submit(rq *ledger.Request, timeout time.Duration) (SubmitResult, error) {
	cl.mu.Lock()
	defer cl.mu.Unlock()
	if timeout > 0 {
		cl.c.SetDeadline(time.Now().Add(timeout))
	} else {
		cl.c.SetDeadline(time.Time{})
	}
	body := ledger.EncodeRequest(nil, rq)
	var lenBuf [4]byte
	binary.BigEndian.PutUint32(lenBuf[:], uint32(len(body)))
	if _, err := cl.bw.Write(lenBuf[:]); err != nil {
		return SubmitResult{}, err
	}
	if _, err := cl.bw.Write(body); err != nil {
		return SubmitResult{}, err
	}
	if err := cl.bw.Flush(); err != nil {
		return SubmitResult{}, err
	}
	if _, err := io.ReadFull(cl.br, lenBuf[:]); err != nil {
		return SubmitResult{}, err
	}
	nb := binary.BigEndian.Uint32(lenBuf[:])
	if nb < 1 || nb > maxRPCFrame {
		return SubmitResult{}, fmt.Errorf("node: bad rpc response length %d", nb)
	}
	payload := make([]byte, nb)
	if _, err := io.ReadFull(cl.br, payload); err != nil {
		return SubmitResult{}, err
	}
	res := SubmitResult{Status: Status(payload[0])}
	switch res.Status {
	case StatusCommitted:
		if len(payload) > 1 {
			rc, err := ledger.DecodeReceipt(payload[1:])
			if err != nil {
				return SubmitResult{}, fmt.Errorf("node: bad receipt in response: %w", err)
			}
			res.Receipt = rc
		}
	case StatusNotPrimary:
		if len(payload) >= 5 {
			res.Leader = transport.NodeID(binary.BigEndian.Uint32(payload[1:5]))
		}
	}
	return res, nil
}
