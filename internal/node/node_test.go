package node

import (
	"fmt"
	"net"
	"testing"
	"time"

	"iaccf/internal/consensus"
	"iaccf/internal/hashsig"
	"iaccf/internal/ledger"
	"iaccf/internal/transport"
)

// clusterKeys derives the n replica keypairs every test component (nodes,
// clients) can reproduce from the shared seed.
func clusterKeys(seed string, n int) ([]*hashsig.PrivateKey, []*hashsig.PublicKey) {
	keys := make([]*hashsig.PrivateKey, n)
	pubs := make([]*hashsig.PublicKey, n)
	for i := 0; i < n; i++ {
		keys[i] = hashsig.GenerateKeyFromSeed(fmt.Sprintf("%s/%d", seed, i))
		pubs[i] = keys[i].Public()
	}
	return keys, pubs
}

func reserveAddrs(t *testing.T, n int) map[transport.NodeID]string {
	t.Helper()
	addrs := make(map[transport.NodeID]string, n)
	for i := 0; i < n; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		addrs[transport.NodeID(i)] = ln.Addr().String()
		ln.Close()
	}
	return addrs
}

// startTCPCluster boots n nodes over real TCP transports with wall
// clocks, plus one RPC server per node. Returns the nodes and the RPC
// addresses.
func startTCPCluster(t *testing.T, n int, seed string) ([]*Node, []string) {
	t.Helper()
	keys, pubs := clusterKeys(seed, n)
	addrs := reserveAddrs(t, n)
	nodes := make([]*Node, n)
	rpcAddrs := make([]string, n)
	for i := 0; i < n; i++ {
		proxy := &transport.HandlerProxy{}
		tp, err := transport.ListenTCP(transport.TCPConfig{
			Self:    transport.NodeID(i),
			Addrs:   addrs,
			Handler: proxy.Handle,
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { tp.Close() })
		clk := NewWallClock(2 * time.Millisecond)
		t.Cleanup(clk.Stop)
		nd, err := New(Config{
			Consensus: consensus.Config{
				ID:              consensus.ReplicaID(i),
				Key:             keys[i],
				Peers:           pubs,
				App:             ledger.KVApp{},
				CheckpointEvery: 4,
				Shards:          1,
			},
			Transport: tp,
			Clock:     clk,
		})
		if err != nil {
			t.Fatal(err)
		}
		proxy.Set(nd.InboundHandler())
		nd.Start()
		t.Cleanup(nd.Stop)
		srv, err := ServeRPC(nd, "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { srv.Close() })
		nodes[i] = nd
		rpcAddrs[i] = srv.Addr().String()
	}
	return nodes, rpcAddrs
}

// TestClusterEndToEnd boots a real 4-node TCP cluster, submits requests
// over the RPC, and verifies client-side that every receipt proves its
// request committed — the ISSUE's acceptance path in miniature.
func TestClusterEndToEnd(t *testing.T) {
	nodes, rpcAddrs := startTCPCluster(t, 4, "e2e")
	_, pubs := clusterKeys("e2e", 4)

	cl, err := DialRPC(rpcAddrs[0], 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	author := hashsig.Sum([]byte("e2e-client"))
	const total = 24
	for i := 1; i <= total; i++ {
		rq := ledger.Request{
			Author: author,
			ReqNo:  uint64(i),
			Body:   ledger.EncodeOps([]ledger.Op{{Key: fmt.Sprintf("k%d", i), Val: []byte("v")}}),
		}
		res, err := cl.Submit(&rq, 15*time.Second)
		if err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
		if res.Status != StatusCommitted {
			t.Fatalf("request %d: status %v", i, res.Status)
		}
		if res.Receipt == nil {
			t.Fatalf("request %d: committed without receipt", i)
		}
		// Client-side receipt verification: the audit path must root in
		// the signed header, under the signing replica's public key.
		verified := false
		for _, pub := range pubs {
			if res.Receipt.Verify(pub) {
				verified = true
				break
			}
		}
		if !verified {
			t.Fatalf("request %d: receipt does not verify against any replica key", i)
		}
		if res.Receipt.Entry.ReqNo != uint64(i) {
			t.Fatalf("request %d: receipt is for ReqNo %d", i, res.Receipt.Entry.ReqNo)
		}
	}

	// Every node converges to the same committed watermark.
	deadline := time.Now().Add(10 * time.Second)
	for {
		min := nodes[0].CommittedSeqs()
		for _, nd := range nodes[1:] {
			if c := nd.CommittedSeqs(); c < min {
				min = c
			}
		}
		if min >= nodes[0].CommittedSeqs() && min > 0 && allEqual(nodes) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("cluster did not converge: %d %d %d %d",
				nodes[0].CommittedSeqs(), nodes[1].CommittedSeqs(),
				nodes[2].CommittedSeqs(), nodes[3].CommittedSeqs())
		}
		time.Sleep(10 * time.Millisecond)
	}
	if nodes[0].CommittedEntries() == 0 {
		t.Fatal("no committed entries counted")
	}
}

func allEqual(nodes []*Node) bool {
	c := nodes[0].CommittedSeqs()
	for _, nd := range nodes[1:] {
		if nd.CommittedSeqs() != c {
			return false
		}
	}
	return true
}

// TestSubmitStatuses exercises the fast-fail verdicts: NotPrimary with a
// usable leader hint, TooLarge for an over-cap body, and Duplicate for a
// committed retry.
func TestSubmitStatuses(t *testing.T) {
	_, rpcAddrs := startTCPCluster(t, 4, "statuses")
	author := hashsig.Sum([]byte("status-client"))

	// A backup must refuse with the leader's identity.
	backup, err := DialRPC(rpcAddrs[1], 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer backup.Close()
	rq := ledger.Request{Author: author, ReqNo: 1,
		Body: ledger.EncodeOps([]ledger.Op{{Key: "a", Val: []byte("v")}})}
	res, err := backup.Submit(&rq, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != StatusNotPrimary || res.Leader != 0 {
		t.Fatalf("backup answered %v leader %d, want not-primary leader 0", res.Status, res.Leader)
	}

	// The leader commits it; an exact retry is a duplicate.
	leader, err := DialRPC(rpcAddrs[res.Leader], 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer leader.Close()
	res, err = leader.Submit(&rq, 15*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != StatusCommitted {
		t.Fatalf("leader answered %v", res.Status)
	}
	res, err = leader.Submit(&rq, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != StatusDuplicate {
		t.Fatalf("retry of committed request answered %v, want duplicate", res.Status)
	}

	// An over-cap body dies at the frame boundary.
	big := ledger.Request{Author: author, ReqNo: 2, Body: make([]byte, ledger.MaxRequestLen+1)}
	res, err = leader.Submit(&big, 5*time.Second)
	if err == nil && res.Status != StatusTooLarge {
		t.Fatalf("oversized body answered %v", res.Status)
	}
}
