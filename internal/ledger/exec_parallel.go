// Conflict-aware parallel batch execution (paper §6): requests whose shard
// footprints are disjoint run concurrently; requests that conflict keep
// batch order. The executor is speculative but never trusts a declared
// footprint — every transaction runs under shard-access tracking, and any
// access outside the declaration aborts the speculation and re-runs the
// whole batch through the sequential core, so results, receipts, and signed
// headers are byte-identical to sequential execution in every case.
//
// # Why waves preserve sequential semantics
//
// Requests are planned in batch order. A request's wave is one past the
// highest wave of any earlier request whose footprint intersects its own
// (lastWave below); a request with an unknown footprint is a barrier that
// conflicts with everything before and after it. Two facts follow:
//
//  1. Conflicting requests always execute in batch order, in different
//     waves, with the later one beginning after the earlier one committed.
//  2. A request can only be scheduled at or before an earlier-indexed
//     request's wave when their footprints are disjoint — the planner's
//     recurrence would otherwise have pushed it later. Transactions over
//     disjoint shard sets touch disjoint keys, so their effects and results
//     commute: executing them out of batch order, or concurrently against
//     the same pre-wave snapshot, produces the same post-state and the
//     same per-transaction write-set digests as the sequential loop.
//
// Within a wave every transaction begins against the same snapshot (the
// store after the previous wave), executes on a worker, and is validated
// and committed on the owning goroutine in batch order — the store stays
// single-writer throughout. Commutativity is exactly what the validation
// step makes trustworthy: it holds for the declared footprints by
// construction, and tracking proves the declarations covered every actual
// access before any of the wave's effects are kept.
package ledger

import (
	"math/bits"
	"runtime"
	"sync"

	"iaccf/internal/hashsig"
	"iaccf/internal/kv"
)

// minParallelBatch gates the parallel executor: below this many requests,
// wave planning and worker hand-off cost more than one core's loop.
const minParallelBatch = 64

// parallelExec returns the app's Footprinter when this ledger and batch
// size can profit from parallel execution: a multi-shard store, more than
// one CPU to run on, enough requests to amortize planning, and an app that
// can declare footprints at all.
func (l *Ledger) parallelExec(n int) (Footprinter, bool) {
	if n < minParallelBatch || l.cfg.Shards <= 1 || runtime.GOMAXPROCS(0) <= 1 {
		return nil, false
	}
	f, ok := l.cfg.App.(Footprinter)
	return f, ok
}

// shardSet is a bitset over shard indices; nil means unknown (barrier).
type shardSet []uint64

func newShardSet(shards uint32) shardSet {
	return make(shardSet, (shards+63)/64)
}

func (s shardSet) add(shard uint32) { s[shard>>6] |= 1 << (shard & 63) }

// covers reports whether every bit of other is set in s. A nil other
// (untracked) is never covered; a nil s covers nothing.
func (s shardSet) covers(other []uint64) bool {
	if s == nil || other == nil {
		return false
	}
	for w, bits := range other {
		if bits&^s[w] != 0 {
			return false
		}
	}
	return true
}

// footprintOf resolves one request body to its declared shard set.
func footprintOf(f Footprinter, body []byte, shards uint32) shardSet {
	keys, ok := f.Footprint(body)
	if !ok {
		return nil
	}
	fp := newShardSet(shards)
	for _, k := range keys {
		fp.add(kv.ShardOfKey(k, shards))
	}
	return fp
}

// planWaves groups the transaction indices of reqs into conflict-free
// waves. fps[i] is request i's declared shard set (nil = barrier);
// governance requests never execute and are not scheduled. Returned waves
// hold request indices in batch order.
func planWaves(reqs []Request, fps []shardSet, shards uint32) [][]int {
	lastWave := make([]int, shards)
	barrier := 0 // wave of the most recent barrier; floors every request after it
	maxWave := 0
	waveOf := make([]int, len(reqs))
	for i := range reqs {
		if reqs[i].Governance {
			waveOf[i] = 0
			continue
		}
		fp := fps[i]
		if fp == nil {
			w := maxWave + 1
			barrier, maxWave, waveOf[i] = w, w, w
			continue
		}
		w := barrier
		for word, set := range fp {
			for ; set != 0; set &= set - 1 {
				s := word*64 + bits.TrailingZeros64(set)
				if lastWave[s] > w {
					w = lastWave[s]
				}
			}
		}
		w++
		for word, set := range fp {
			for ; set != 0; set &= set - 1 {
				lastWave[word*64+bits.TrailingZeros64(set)] = w
			}
		}
		if w > maxWave {
			maxWave = w
		}
		waveOf[i] = w
	}
	waves := make([][]int, maxWave)
	for i := range reqs {
		if w := waveOf[i]; w > 0 {
			waves[w-1] = append(waves[w-1], i)
		}
	}
	return waves
}

// waveJob is one transaction handed to a wave worker: the worker runs the
// app and computes the write-set digest; the owning goroutine validates,
// commits or aborts, and reads the outcome only after the wave joins.
type waveJob struct {
	tx       *kv.Tx
	body     []byte
	res      hashsig.Digest
	err      error
	panicked any
	done     *sync.WaitGroup
}

// waveRunner is a batch-scoped worker pool executing wave jobs. Workers
// persist across waves (a batch can have hundreds) and exit when the jobs
// channel closes.
type waveRunner struct {
	app  App
	jobs chan *waveJob
	wg   sync.WaitGroup
}

func newWaveRunner(app App, queue int) *waveRunner {
	r := &waveRunner{app: app, jobs: make(chan *waveJob, queue)}
	workers := runtime.GOMAXPROCS(0)
	r.wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer r.wg.Done()
			for j := range r.jobs {
				r.run(j)
			}
		}()
	}
	return r
}

// run executes one job, trapping panics so a buggy App cannot kill the
// process from a worker goroutine; the owning goroutine re-panics with the
// original value, preserving the recover-then-RollbackTo contract callers
// of ExecuteBatch rely on.
func (r *waveRunner) run(j *waveJob) {
	defer j.done.Done()
	defer func() {
		if p := recover(); p != nil {
			j.panicked = p
		}
	}()
	if j.err = r.app.Execute(j.tx, j.body); j.err == nil {
		j.res = j.tx.WriteSetDigest()
	}
}

// close joins the workers. Safe to call once, after the last wave.
func (r *waveRunner) close() {
	close(r.jobs)
	r.wg.Wait()
}

// runParallel owns the speculative attempt: it gives the parallel core its
// own entry hasher and, on a declined speculation, rolls the store back to
// the pre-batch mark (re-pushing the mark for the sequential re-run) and
// drains the hasher — entries submitted before the violation surfaced may
// carry results a sequential execution would not produce, so the caller
// must hash everything again from scratch.
func (l *Ledger) runParallel(f Footprinter, seq uint64, reqs []Request, entries []Entry, digests, leaves []hashsig.Digest) (txIdx []int, ok bool) {
	hasher := newEntryHasher(digests, leaves, cap(entries))
	defer hasher.wait()
	txIdx, ok = l.executeBatchParallel(f, reqs, entries, hasher)
	if !ok {
		if err := l.store.RollbackTo(seq); err != nil {
			// The mark pushed by ExecuteBatch cannot have vanished.
			panic(err)
		}
		l.store.Mark(seq)
	}
	hasher.wait()
	return txIdx, ok
}

// executeBatchParallel is the speculative fast path of ExecuteBatch. It
// fills entries (pre-sized to len(reqs); pointer-stable) with the same
// contents the sequential core would produce, submits each entry to hasher
// once its result is final, and returns the transaction entry indices. ok
// is false when a declared footprint was violated; the store then holds
// partial speculative effects and runParallel discards them.
func (l *Ledger) executeBatchParallel(f Footprinter, reqs []Request, entries []Entry, hasher *entryHasher) (txIdx []int, ok bool) {
	shards := l.cfg.Shards
	fps := make([]shardSet, len(reqs))
	txIdx = make([]int, 0, len(reqs))
	for i := range reqs {
		e := &entries[i]
		if reqs[i].Governance {
			*e = Entry{
				Kind:    KindGovernance,
				Author:  reqs[i].Author,
				Payload: append([]byte(nil), reqs[i].Body...),
			}
			// Governance entries never change: hash them immediately.
			hasher.submit(i, e)
			continue
		}
		*e = Entry{
			Kind:    KindTransaction,
			Author:  reqs[i].Author,
			ReqNo:   reqs[i].ReqNo,
			Payload: append([]byte(nil), reqs[i].Body...),
		}
		fps[i] = footprintOf(f, reqs[i].Body, shards)
		txIdx = append(txIdx, i)
	}

	waves := planWaves(reqs, fps, shards)
	runner := newWaveRunner(l.cfg.App, len(reqs))
	defer runner.close()

	jobs := make([]*waveJob, len(reqs))
	for _, wave := range waves {
		var done sync.WaitGroup
		done.Add(len(wave))
		// Begin on the owning goroutine: every transaction of the wave sees
		// the same snapshot, the store after the previous wave's commits.
		for _, i := range wave {
			j := &waveJob{tx: l.store.BeginTracked(), body: entries[i].Payload, done: &done}
			jobs[i] = j
			runner.jobs <- j
		}
		done.Wait()
		// Validate and commit in batch order on the owning goroutine.
		for _, i := range wave {
			j := jobs[i]
			if j.panicked != nil {
				panic(j.panicked)
			}
			if !fps[i].covers(j.tx.TouchedShards()) {
				// The declaration missed an access: the wave's snapshot
				// reasoning no longer holds. Abandon the speculation.
				return nil, false
			}
			if j.err != nil {
				j.tx.Abort()
			} else {
				entries[i].Result = j.res
				j.tx.Commit()
			}
			hasher.submit(i, &entries[i])
		}
	}
	return txIdx, true
}

// applyEntriesParallel is the speculative fast path of ApplyBatch's
// re-execution loop. It re-runs the batch's transactions in conflict-free
// waves and compares each write-set digest with the entry's recorded
// result. It returns false — leaving the caller to discard store effects
// and re-run the sequential loop for its exact error reporting — on any
// anomaly at all: a result mismatch, a violated footprint, a checkpoint
// marker that is misplaced, mislabelled, undue, missing, or wrong, or an
// unknown entry kind. On success the store and l.lastCkpt are exactly as
// the sequential loop would leave them.
func (l *Ledger) applyEntriesParallel(f Footprinter, seq uint64, b *Batch) bool {
	shards := l.cfg.Shards
	ckptDue := seq%l.cfg.CheckpointEvery == 0
	// Structural scan first: the wave plan covers transactions only, so
	// everything else must be exactly what the sequential loop accepts.
	sawCkpt := false
	for ei := range b.Entries {
		switch b.Entries[ei].Kind {
		case KindTransaction, KindGovernance:
		case KindCheckpoint:
			if !ckptDue || ei != len(b.Entries)-1 || b.Entries[ei].Seq != seq {
				return false
			}
			sawCkpt = true
		default:
			return false
		}
	}
	if ckptDue && !sawCkpt {
		return false
	}

	reqs := make([]Request, len(b.Entries))
	fps := make([]shardSet, len(b.Entries))
	for ei := range b.Entries {
		e := &b.Entries[ei]
		if e.Kind != KindTransaction {
			// Governance and the checkpoint marker execute nothing; schedule
			// them as governance (never planned).
			reqs[ei].Governance = true
			continue
		}
		reqs[ei].Body = e.Payload
		fps[ei] = footprintOf(f, e.Payload, shards)
	}

	waves := planWaves(reqs, fps, shards)
	runner := newWaveRunner(l.cfg.App, len(b.Entries))
	defer runner.close()

	jobs := make([]*waveJob, len(b.Entries))
	for _, wave := range waves {
		var done sync.WaitGroup
		done.Add(len(wave))
		for _, i := range wave {
			j := &waveJob{tx: l.store.BeginTracked(), body: b.Entries[i].Payload, done: &done}
			jobs[i] = j
			runner.jobs <- j
		}
		done.Wait()
		for _, i := range wave {
			j := jobs[i]
			if j.panicked != nil {
				panic(j.panicked)
			}
			if !fps[i].covers(j.tx.TouchedShards()) {
				return false
			}
			var got hashsig.Digest
			if j.err == nil {
				got = j.res
			}
			if got != b.Entries[i].Result {
				return false
			}
			if j.err != nil {
				j.tx.Abort()
			} else {
				j.tx.Commit()
			}
		}
	}
	if sawCkpt {
		e := &b.Entries[len(b.Entries)-1]
		if l.store.CheckpointDigest() != e.State {
			return false
		}
		l.lastCkpt = e.State
	}
	return true
}
