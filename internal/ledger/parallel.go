package ledger

import (
	"runtime"
	"sync"

	"iaccf/internal/hashsig"
	"iaccf/internal/merkle"
	"iaccf/internal/par"
)

// forEachShard runs fn(s) for every shard index through the shared bounded
// worker pool (leaves is the total entry count across shards, gating the
// fan-out); fn must touch only per-shard state.
func forEachShard(shards, leaves int, fn func(s int)) {
	par.ForEach(shards, leaves, minParallelShardLeaves, fn)
}

// minParallelShardLeaves gates parallel per-shard tree building: small
// batches build G_s faster inline than across goroutines.
const minParallelShardLeaves = 256

// buildShardRoots constructs the per-shard batch trees G_s over the grouped
// pre-hashed leaves (merkle.LeafHash over the entry digests — the entry
// hasher computes them alongside the digests, so no second SHA pass per
// entry happens here) and combines their roots into ¯G, in parallel across
// shards when worthwhile. It is the shared roll-up of ApplyBatch and
// CheckBatchShape, which need only the roots; ExecuteBatch keeps its own
// path-producing variant.
func buildShardRoots(perShard [][]hashsig.Digest) (shardRoots []hashsig.Digest, gRoot hashsig.Digest) {
	shardRoots = make([]hashsig.Digest, len(perShard))
	leaves := 0
	for s := range perShard {
		leaves += len(perShard[s])
	}
	forEachShard(len(perShard), leaves, func(s int) {
		g := merkle.New()
		for _, lh := range perShard[s] {
			g.AppendLeafHash(lh)
		}
		shardRoots[s] = g.Root()
	})
	top := merkle.New()
	for _, r := range shardRoots {
		top.Append(r)
	}
	return shardRoots, top.Root()
}

// entryHasher computes entry digests — and their merkle leaf hashes —
// concurrently with the execution loop that produces the entries. On a
// single-CPU process (or a tiny batch) it degrades to hashing inline at
// submit time — the pipeline would only add channel traffic. Digests land
// in the caller's digests slice at the submitted index, leaf hashes in the
// leaves slice; the caller must wait() before reading any of them.
//
// Leaf hashes are computed here because both trees need the same value:
// the history tree M and the per-shard batch tree G_s each commit to
// LeafHash(Digest(entry)). Hashing it once in the pipeline removes two
// serial SHA passes per entry from the roll-up stage.
type entryHasher struct {
	digests []hashsig.Digest
	leaves  []hashsig.Digest
	jobs    chan hashJob
	wg      sync.WaitGroup
	inline  bool
	closed  bool
}

// hashJob hands one completed entry from the execution stage to the hashing
// stage. The pointer is stable: callers allocate the entries slice with its
// final capacity up front, so appends never move the backing array.
type hashJob struct {
	idx int
	e   *Entry
}

// newEntryHasher sizes the hashing stage for up to maxEntries entries.
// leaves may be nil when the caller needs only entry digests.
func newEntryHasher(digests, leaves []hashsig.Digest, maxEntries int) *entryHasher {
	h := &entryHasher{digests: digests, leaves: leaves}
	workers := runtime.GOMAXPROCS(0) - 1
	if workers > maxHashWorkers {
		workers = maxHashWorkers
	}
	if workers < 1 || maxEntries < minPipelinedEntries {
		h.inline = true
		return h
	}
	h.jobs = make(chan hashJob, maxEntries)
	h.wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer h.wg.Done()
			for j := range h.jobs {
				h.hash(j.idx, j.e)
			}
		}()
	}
	return h
}

// hash computes the digest (and leaf hash) of one entry into slot idx.
func (h *entryHasher) hash(idx int, e *Entry) {
	d := e.Digest()
	h.digests[idx] = d
	if h.leaves != nil {
		h.leaves[idx] = merkle.LeafHash(d)
	}
}

// submit hands entry e (stored at idx) to the hashing stage.
func (h *entryHasher) submit(idx int, e *Entry) {
	if h.inline {
		h.hash(idx, e)
		return
	}
	h.jobs <- hashJob{idx: idx, e: e}
}

// wait blocks until every submitted digest is computed. Idempotent, so it
// can both run deferred (releasing workers if the execution loop panics)
// and be called explicitly before the digests are read.
func (h *entryHasher) wait() {
	if h.inline || h.closed {
		return
	}
	h.closed = true
	close(h.jobs)
	h.wg.Wait()
}

const (
	// maxHashWorkers bounds the entry-digest pipeline; hashing saturates
	// long before the core count on wide machines.
	maxHashWorkers = 4
	// minPipelinedEntries gates the pipeline: tiny batches hash inline.
	minPipelinedEntries = 32
)
