package ledger

import (
	"bytes"
	"testing"

	"iaccf/internal/hashsig"
)

// TestReceiptCodecRoundTrip encodes real receipts — produced by executing a
// batch, so the path, shard placement, and header signature are genuine —
// decodes them, and demands the decoded receipt still verifies offline and
// re-encodes byte-identically.
func TestReceiptCodecRoundTrip(t *testing.T) {
	key := hashsig.GenerateKeyFromSeed("receipt-codec")
	led, err := New(Config{Key: key, App: KVApp{}, CheckpointEvery: 4, Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	author := hashsig.Sum([]byte("client"))
	var reqs []Request
	for i := 0; i < 5; i++ {
		reqs = append(reqs, Request{
			Author: author,
			ReqNo:  uint64(i + 1),
			Body:   EncodeOps([]Op{{Key: string([]byte{'k', byte(i)}), Val: []byte("v")}}),
		})
	}
	_, rcs, err := led.ExecuteBatch(reqs)
	if err != nil {
		t.Fatal(err)
	}
	if len(rcs) == 0 {
		t.Fatal("no receipts produced")
	}
	pub := key.Public()
	for i := range rcs {
		enc := EncodeReceipt(nil, &rcs[i])
		dec, err := DecodeReceipt(enc)
		if err != nil {
			t.Fatalf("receipt %d: %v", i, err)
		}
		if !dec.Verify(pub) {
			t.Fatalf("receipt %d no longer verifies after round trip", i)
		}
		if re := EncodeReceipt(nil, dec); !bytes.Equal(re, enc) {
			t.Fatalf("receipt %d re-encode differs", i)
		}
	}
	// The decoded receipt must not alias the input frame.
	enc := EncodeReceipt(nil, &rcs[0])
	dec, err := DecodeReceipt(enc)
	if err != nil {
		t.Fatal(err)
	}
	for i := range enc {
		enc[i] = 0xff
	}
	if !dec.Verify(pub) {
		t.Fatal("decoded receipt aliases the input frame")
	}
}

// TestReceiptCodecRejects exercises the decode guards: truncation, trailing
// garbage, and an oversized path count must all fail cleanly.
func TestReceiptCodecRejects(t *testing.T) {
	key := hashsig.GenerateKeyFromSeed("receipt-codec-bad")
	led, err := New(Config{Key: key, App: KVApp{}, CheckpointEvery: 4, Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	author := hashsig.Sum([]byte("client"))
	_, rcs, err := led.ExecuteBatch([]Request{{
		Author: author, ReqNo: 1, Body: EncodeOps([]Op{{Key: "k", Val: []byte("v")}}),
	}})
	if err != nil {
		t.Fatal(err)
	}
	enc := EncodeReceipt(nil, &rcs[0])

	for cut := 1; cut < len(enc); cut += 7 {
		if _, err := DecodeReceipt(enc[:cut]); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
	if _, err := DecodeReceipt(append(append([]byte(nil), enc...), 0)); err == nil {
		t.Fatal("trailing garbage accepted")
	}
}

// TestRequestCodecRoundTrip round-trips submission-RPC request bodies and
// checks the ingress cap: a body over MaxRequestLen must be rejected at
// decode, before any pool or ledger sees it.
func TestRequestCodecRoundTrip(t *testing.T) {
	author := hashsig.Sum([]byte("req-client"))
	for _, rq := range []Request{
		{Author: author, ReqNo: 1, Body: []byte("put")},
		{Governance: true, Author: author, ReqNo: 9, Body: []byte("action")},
		{Author: author, ReqNo: 2, Body: nil},
	} {
		enc := EncodeRequest(nil, &rq)
		dec, err := DecodeRequest(enc)
		if err != nil {
			t.Fatal(err)
		}
		if dec.Governance != rq.Governance || dec.Author != rq.Author ||
			dec.ReqNo != rq.ReqNo || !bytes.Equal(dec.Body, rq.Body) {
			t.Fatalf("round trip mutated request: %+v vs %+v", dec, rq)
		}
		if re := EncodeRequest(nil, &dec); !bytes.Equal(re, enc) {
			t.Fatal("re-encode differs")
		}
	}
	big := Request{Author: author, ReqNo: 3, Body: make([]byte, MaxRequestLen+1)}
	if _, err := DecodeRequest(EncodeRequest(nil, &big)); err == nil {
		t.Fatal("oversized body accepted")
	}
	if _, err := DecodeRequest([]byte{2, 0, 0, 0}); err == nil {
		t.Fatal("bad governance flag accepted")
	}
}
