// Package ledger binds IA-CCF's building blocks into the paper's core
// artifact: an append-only ledger of typed entries executed in batches
// (paper §3.1–§3.4). Every entry is appended to the history tree M; each
// batch additionally gets a small tree G over its entries. The replica
// signs a BatchHeader over (seq, ¯M, ¯G, d_C) and hands each client a
// Receipt containing its entry's audit path in G, verifiable offline
// against the signed header. RollbackTo undoes batches per Lemma 1, and
// Replay is the auditor's half of individual accountability: it re-executes
// a batch stream and checks every root, result, and signature.
package ledger

import (
	"errors"
	"fmt"

	"iaccf/internal/hashsig"
	"iaccf/internal/wire"
)

// Kind discriminates ledger entry types (paper Fig. 3).
type Kind uint8

const (
	// KindTransaction is an executed client transaction ⟨t,i,o⟩.
	KindTransaction Kind = 1
	// KindGovernance is a member governance action recorded on the ledger
	// so that configuration history is itself auditable (paper §4).
	KindGovernance Kind = 2
	// KindCheckpoint marks a state checkpoint: it pins the service state
	// digest d_C at a batch boundary (paper §3.4).
	KindCheckpoint Kind = 3
)

func (k Kind) String() string {
	switch k {
	case KindTransaction:
		return "transaction"
	case KindGovernance:
		return "governance"
	case KindCheckpoint:
		return "checkpoint"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// ErrBadEntry reports a malformed entry on decode.
var ErrBadEntry = errors.New("ledger: malformed entry")

// Entry is one typed ledger entry. Field use depends on Kind:
//
//   - KindTransaction: Author is the client key ID, ReqNo the client's
//     request number i, Payload the request t, Result the write-set digest
//     o (zero if execution failed and the transaction was recorded as
//     aborted).
//   - KindGovernance: Author is the member key ID, Payload the proposed
//     action; no state effect.
//   - KindCheckpoint: Seq is the batch that took the checkpoint and State
//     the service state digest d_C at that point.
type Entry struct {
	Kind    Kind
	Author  hashsig.Digest
	ReqNo   uint64
	Payload []byte
	Result  hashsig.Digest
	Seq     uint64
	State   hashsig.Digest
}

// entryDomain domain-separates entry digests from every other hash use.
var entryDomain = []byte("iaccf-ledger-entry:")

// Encode appends the deterministic wire encoding of the entry to dst.
func (e *Entry) Encode(dst []byte) []byte {
	dst = append(dst, byte(e.Kind))
	switch e.Kind {
	case KindTransaction:
		dst = wire.AppendDigest(dst, e.Author)
		dst = wire.AppendUint64(dst, e.ReqNo)
		dst = wire.AppendBytes(dst, e.Payload)
		dst = wire.AppendDigest(dst, e.Result)
	case KindGovernance:
		dst = wire.AppendDigest(dst, e.Author)
		dst = wire.AppendBytes(dst, e.Payload)
	case KindCheckpoint:
		dst = wire.AppendUint64(dst, e.Seq)
		dst = wire.AppendDigest(dst, e.State)
	}
	return dst
}

// Digest returns the entry's leaf digest: what M and G commit to. The
// encoding is assembled in pooled scratch — this runs once per entry per
// replica on the commit path and must not allocate per call.
func (e *Entry) Digest() hashsig.Digest {
	b := wire.GetScratch(64 + len(e.Payload))
	b = e.Encode(append(b, entryDomain...))
	d := hashsig.Sum(b)
	wire.PutScratch(b)
	return d
}

// encodeTo streams the entry through a wire.Writer (batch serialization).
func (e *Entry) encodeTo(w *wire.Writer) {
	w.Bytes(e.Encode(nil))
}

// decodeEntry reads one entry from a wire.Reader.
func decodeEntry(r *wire.Reader) Entry {
	b := r.Bytes(wire.MaxValueLen)
	if r.Err() != nil {
		return Entry{}
	}
	e, err := DecodeEntry(b)
	if err != nil {
		r.Fail(err)
		return Entry{}
	}
	return e
}

// DecodeEntry parses the encoding produced by Encode.
func DecodeEntry(b []byte) (Entry, error) {
	if len(b) == 0 {
		return Entry{}, fmt.Errorf("%w: empty", ErrBadEntry)
	}
	e := Entry{Kind: Kind(b[0])}
	r := wire.NewBytesReader(b[1:])
	switch e.Kind {
	case KindTransaction:
		e.Author = r.Digest()
		e.ReqNo = r.Uint64()
		e.Payload = r.Bytes(wire.MaxValueLen)
		e.Result = r.Digest()
	case KindGovernance:
		e.Author = r.Digest()
		e.Payload = r.Bytes(wire.MaxValueLen)
	case KindCheckpoint:
		e.Seq = r.Uint64()
		e.State = r.Digest()
	default:
		return Entry{}, fmt.Errorf("%w: unknown kind %d", ErrBadEntry, b[0])
	}
	r.ExpectEOF()
	if err := r.Err(); err != nil {
		return Entry{}, fmt.Errorf("%w: %v", ErrBadEntry, err)
	}
	return e, nil
}
