package ledger

import (
	"fmt"
	"testing"

	"iaccf/internal/hashsig"
)

// TestReceiptNegativeTable drives Receipt.Verify through adversarial
// mutations on a sharded batch — wrong shard index, truncated and
// reordered paths, cross-receipt splices — complementing the replay-side
// tamper tests.
func TestReceiptNegativeTable(t *testing.T) {
	key := hashsig.GenerateKeyFromSeed("receipt-neg")
	l, err := New(Config{Key: key, App: KVApp{}, Shards: 4, CheckpointEvery: 1})
	if err != nil {
		t.Fatal(err)
	}
	var reqs []Request
	for i := 0; i < 12; i++ {
		reqs = append(reqs, Request{
			Author: hashsig.Sum([]byte(fmt.Sprintf("client-%d", i))),
			ReqNo:  uint64(i),
			Body:   EncodeOps([]Op{{Key: fmt.Sprintf("k%d", i), Val: []byte("v")}}),
		})
	}
	_, receipts, err := l.ExecuteBatch(reqs)
	if err != nil {
		t.Fatal(err)
	}
	pub := key.Public()

	// Pick a receipt whose path has both stages and a sibling to swap, and
	// a second receipt in a different shard for splicing.
	var r, other *Receipt
	for i := range receipts {
		if len(receipts[i].Path) >= 2 && r == nil {
			r = &receipts[i]
		}
	}
	if r == nil {
		t.Fatal("no receipt with a two-node path")
	}
	for i := range receipts {
		if receipts[i].Shard != r.Shard {
			other = &receipts[i]
			break
		}
	}
	if other == nil {
		t.Fatal("all receipts landed in one shard")
	}
	if !r.Verify(pub) || !other.Verify(pub) {
		t.Fatal("honest receipts do not verify")
	}

	cases := []struct {
		name string
		mut  func(x *Receipt)
	}{
		{"wrong shard index", func(x *Receipt) { x.Shard = (x.Shard + 1) % x.Header.Shards }},
		{"shard index out of range", func(x *Receipt) { x.Shard = x.Header.Shards }},
		{"wrong leaf index", func(x *Receipt) { x.Index++ }},
		{"leaf index out of shard", func(x *Receipt) { x.Index = x.ShardSize }},
		{"truncated path", func(x *Receipt) { x.Path = x.Path[:len(x.Path)-1] }},
		{"empty path", func(x *Receipt) { x.Path = nil }},
		{"swapped siblings", func(x *Receipt) {
			x.Path = append([]hashsig.Digest(nil), x.Path...)
			x.Path[0], x.Path[1] = x.Path[1], x.Path[0]
		}},
		{"overlong path", func(x *Receipt) {
			x.Path = append(append([]hashsig.Digest(nil), x.Path...), hashsig.Sum([]byte("pad")))
		}},
		{"spliced path from another shard", func(x *Receipt) { x.Path = other.Path }},
		{"spliced position from another shard", func(x *Receipt) {
			x.Shard, x.Index, x.ShardSize = other.Shard, other.Index, other.ShardSize
		}},
		{"tampered entry", func(x *Receipt) { x.Entry.ReqNo++ }},
		{"tampered result", func(x *Receipt) { x.Entry.Result[0] ^= 1 }},
		{"forged shard count", func(x *Receipt) { x.Header.Shards++ }},
		{"forged root", func(x *Receipt) { x.Header.GRoot[0] ^= 1 }},
	}
	for _, tc := range cases {
		mutated := *r
		tc.mut(&mutated)
		if mutated.Verify(pub) {
			t.Errorf("%s: tampered receipt verifies", tc.name)
		}
	}
	if !r.Verify(pub) {
		t.Fatal("anchor receipt stopped verifying")
	}
}
