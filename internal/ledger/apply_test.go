package ledger

import (
	"errors"
	"fmt"
	"testing"

	"iaccf/internal/hashsig"
)

func applyPair(t *testing.T, shards uint32) (*Ledger, *Ledger) {
	t.Helper()
	mk := func(seed string) *Ledger {
		l, err := New(Config{
			Key:             hashsig.GenerateKeyFromSeed(seed),
			App:             KVApp{},
			CheckpointEvery: 2,
			Shards:          shards,
		})
		if err != nil {
			t.Fatal(err)
		}
		return l
	}
	return mk("apply-primary"), mk("apply-backup")
}

func applyReqs(base uint64, n int) []Request {
	out := make([]Request, n)
	for i := range out {
		out[i] = Request{
			Author: hashsig.Sum([]byte(fmt.Sprintf("author-%d", i%3))),
			ReqNo:  base + uint64(i),
			Body:   EncodeOps([]Op{{Key: fmt.Sprintf("k%d", base+uint64(i)), Val: []byte("v")}}),
		}
	}
	return out
}

func TestApplyBatchAdoptsAndCoSigns(t *testing.T) {
	for _, shards := range []uint32{1, 4} {
		primary, backup := applyPair(t, shards)
		for seq := uint64(1); seq <= 4; seq++ {
			batch, _, err := primary.ExecuteBatch(applyReqs(seq*10, 3))
			if err != nil {
				t.Fatal(err)
			}
			own, err := backup.ApplyBatch(batch)
			if err != nil {
				t.Fatalf("shards %d seq %d: ApplyBatch: %v", shards, seq, err)
			}
			if own.SigningDigest() != batch.Header.SigningDigest() {
				t.Fatalf("shards %d seq %d: backup commitments differ from primary's", shards, seq)
			}
			if !own.Verify(backup.cfg.Key.Public()) {
				t.Fatal("backup header not signed by backup key")
			}
			if own.Verify(primary.cfg.Key.Public()) {
				t.Fatal("backup header verifies under the primary key")
			}
		}
		if primary.StateDigest() != backup.StateDigest() {
			t.Fatal("states diverged after honest applies")
		}
		if got := len(backup.Batches()); got != 4 {
			t.Fatalf("backup retains %d batches, want 4", got)
		}
	}
}

// applySnapshot captures everything a rejected ApplyBatch must restore.
type applySnapshot struct {
	seq      uint64
	histSize uint64
	histRoot hashsig.Digest
	state    hashsig.Digest
	batches  int
}

func snapshotLedger(l *Ledger) applySnapshot {
	return applySnapshot{
		seq:      l.Seq(),
		histSize: l.HistSize(),
		histRoot: l.HistRoot(),
		state:    l.StateDigest(),
		batches:  len(l.Batches()),
	}
}

func TestApplyBatchRejectsAndRollsBack(t *testing.T) {
	primary, backup := applyPair(t, 4)
	// Advance both one batch so the divergence cases run mid-stream.
	warm, _, err := primary.ExecuteBatch(applyReqs(5, 2))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := backup.ApplyBatch(warm); err != nil {
		t.Fatal(err)
	}

	batch, _, err := primary.ExecuteBatch(applyReqs(100, 3))
	if err != nil {
		t.Fatal(err)
	}
	tamper := []struct {
		name string
		mut  func(b *Batch)
	}{
		{"forged result", func(b *Batch) { b.Entries[0].Result[0] ^= 1 }},
		{"tampered payload", func(b *Batch) { b.Entries[1].Payload = EncodeOps([]Op{{Key: "evil", Val: []byte("x")}}) }},
		{"wrong seq", func(b *Batch) { b.Header.Seq = 7 }},
		{"wrong shard count", func(b *Batch) { b.Header.Shards = 2 }},
		{"wrong batch root", func(b *Batch) { b.Header.GRoot[0] ^= 1 }},
		{"wrong history root", func(b *Batch) { b.Header.MRoot[0] ^= 1 }},
		{"wrong history size", func(b *Batch) { b.Header.HistSize++ }},
		{"wrong entry count", func(b *Batch) { b.Header.GSize++ }},
		{"wrong checkpoint ref", func(b *Batch) { b.Header.CkptDigest[0] ^= 1 }},
		{"checkpoint mislabelled", func(b *Batch) { b.Entries[len(b.Entries)-1].Seq = 9 }},
		{"checkpoint digest forged", func(b *Batch) { b.Entries[len(b.Entries)-1].State[0] ^= 1 }},
		{"checkpoint dropped", func(b *Batch) { b.Entries = b.Entries[:len(b.Entries)-1] }},
		{"unknown kind", func(b *Batch) { b.Entries[0].Kind = 99 }},
	}
	for _, tc := range tamper {
		before := snapshotLedger(backup)
		evil := &Batch{Header: batch.Header, Entries: append([]Entry(nil), batch.Entries...)}
		tc.mut(evil)
		if _, err := backup.ApplyBatch(evil); !errors.Is(err, ErrApply) {
			t.Fatalf("%s: err = %v, want ErrApply", tc.name, err)
		}
		if after := snapshotLedger(backup); after != before {
			t.Fatalf("%s: backup state not rolled back: %+v -> %+v", tc.name, before, after)
		}
	}

	// The untampered batch still applies after every rejection.
	if _, err := backup.ApplyBatch(batch); err != nil {
		t.Fatalf("clean batch rejected after rollbacks: %v", err)
	}
	if primary.StateDigest() != backup.StateDigest() {
		t.Fatal("states diverged")
	}
}

func TestApplyBatchThenRollbackTo(t *testing.T) {
	primary, backup := applyPair(t, 1)
	b1, _, err := primary.ExecuteBatch(applyReqs(10, 2))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := backup.ApplyBatch(b1); err != nil {
		t.Fatal(err)
	}
	before := snapshotLedger(backup)
	b2, _, err := primary.ExecuteBatch(applyReqs(20, 2))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := backup.ApplyBatch(b2); err != nil {
		t.Fatal(err)
	}
	// A view change undoes the speculative batch (Lemma 1).
	if err := backup.RollbackTo(2); err != nil {
		t.Fatal(err)
	}
	if after := snapshotLedger(backup); after != before {
		t.Fatalf("rollback did not restore the pre-speculation state: %+v -> %+v", before, after)
	}
	if _, err := backup.ApplyBatch(b2); err != nil {
		t.Fatalf("re-apply after rollback: %v", err)
	}
}
