package ledger

import (
	"errors"
	"fmt"

	"iaccf/internal/kv"
	"iaccf/internal/wire"
)

// App executes application transactions against the key-value store. An
// App MUST be deterministic: given the same store state and request it
// must produce the same write set (and the same error outcome), or replay
// by an auditor would diverge from the primary's execution and wrongly
// flag misbehaviour (paper §5).
type App interface {
	Execute(tx *kv.Tx, request []byte) error
}

// Footprinter is an optional App extension that lets the ledger run batches
// through the conflict-aware parallel executor. Footprint returns the full
// set of keys Execute may read, write, or delete for the given request, and
// ok=true when that set is known. Returning a superset is always safe (it
// only costs parallelism); returning ok=false makes the request a barrier
// that conflicts with everything. A footprint that *misses* a key Execute
// later touches is not a safety problem either: the executor tracks actual
// shard accesses and falls back to sequential re-execution when a declared
// footprint is violated — but every violated batch pays for two executions,
// so Footprint implementations should err on the side of over-declaring.
type Footprinter interface {
	Footprint(request []byte) (keys []string, ok bool)
}

// ErrBadRequest reports a request payload the application cannot decode.
var ErrBadRequest = errors.New("ledger: malformed request payload")

// Op is one key-value operation inside a KVApp request.
type Op struct {
	Key    string
	Val    []byte
	Delete bool
}

// EncodeOps builds a KVApp request payload from a list of operations.
func EncodeOps(ops []Op) []byte {
	out := wire.AppendUint32(nil, uint32(len(ops)))
	for _, op := range ops {
		if op.Delete {
			out = append(out, 0x00)
			out = wire.AppendString(out, op.Key)
		} else {
			out = append(out, 0x01)
			out = wire.AppendString(out, op.Key)
			out = wire.AppendBytes(out, op.Val)
		}
	}
	return out
}

// KVApp is the built-in application: a request is a wire-encoded list of
// put/delete operations (EncodeOps). It exists for tests, benchmarks, and
// as the reference for the determinism contract; real deployments plug in
// their own App.
type KVApp struct{}

// Execute applies the request's operations to the transaction. Values are
// decoded as views into the request buffer (no copy): they flow only into
// tx.Put, which copies, and the request outlives the call.
func (KVApp) Execute(tx *kv.Tx, request []byte) error {
	r := wire.NewBytesReader(request)
	n := r.Uint32()
	const maxOps = 1 << 16
	if r.Err() == nil && n > maxOps {
		return fmt.Errorf("%w: %d ops", ErrBadRequest, n)
	}
	type op struct {
		key string
		val []byte
		del bool
	}
	ops := make([]op, 0, n)
	for i := uint32(0); i < n && r.Err() == nil; i++ {
		switch tag := r.Byte(); tag {
		case 0x00:
			ops = append(ops, op{key: r.String(wire.MaxKeyLen), del: true})
		case 0x01:
			ops = append(ops, op{key: r.String(wire.MaxKeyLen), val: r.BytesView(wire.MaxValueLen)})
		default:
			if r.Err() == nil {
				return fmt.Errorf("%w: op tag %d", ErrBadRequest, tag)
			}
		}
	}
	r.ExpectEOF()
	if err := r.Err(); err != nil {
		return fmt.Errorf("%w: %v", ErrBadRequest, err)
	}
	// Apply only after the whole request decodes: a half-applied malformed
	// request would leave the abort/commit decision ambiguous.
	for _, o := range ops {
		if o.del {
			tx.Delete(o.key)
		} else {
			tx.Put(o.key, o.val)
		}
	}
	return nil
}

// Footprint returns every key the request's operations name. A request that
// fails to decode touches nothing — Execute rejects it before the first
// Put/Delete — so its footprint is known and empty, and it parallelizes
// with everything.
func (KVApp) Footprint(request []byte) ([]string, bool) {
	r := wire.NewBytesReader(request)
	n := r.Uint32()
	const maxOps = 1 << 16
	if r.Err() == nil && n > maxOps {
		return nil, true
	}
	keys := make([]string, 0, n)
	for i := uint32(0); i < n && r.Err() == nil; i++ {
		switch tag := r.Byte(); tag {
		case 0x00:
			keys = append(keys, r.String(wire.MaxKeyLen))
		case 0x01:
			keys = append(keys, r.String(wire.MaxKeyLen))
			r.BytesView(wire.MaxValueLen)
		default:
			if r.Err() == nil {
				return nil, true
			}
		}
	}
	r.ExpectEOF()
	if r.Err() != nil {
		return nil, true
	}
	return keys, true
}
