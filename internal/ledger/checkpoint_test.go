package ledger

import (
	"errors"
	"fmt"
	"testing"

	"iaccf/internal/hashsig"
)

// runBatches executes n simple two-request batches and returns the ledger's
// retained stream (full, since nothing is pruned during execution).
func runBatches(t *testing.T, l *Ledger, n uint64) {
	t.Helper()
	for seq := l.Seq(); seq < n+1; seq++ {
		if _, _, err := l.ExecuteBatch([]Request{
			putReq("alice", seq, fmt.Sprintf("a%d", seq), "x"),
			putReq("bob", seq, "shared", fmt.Sprintf("%d", seq)),
		}); err != nil {
			t.Fatal(err)
		}
	}
}

func TestPruneBoundsRetention(t *testing.T) {
	l := newTestLedger(t, 2)
	runBatches(t, l, 6)
	if got := l.FirstRetainedSeq(); got != 1 {
		t.Fatalf("fresh ledger first retained %d, want 1", got)
	}
	before, root := l.RetainedBatches(), l.HistRoot()

	l.Prune(5)
	if got := l.FirstRetainedSeq(); got != 5 {
		t.Fatalf("first retained %d after Prune(5), want 5", got)
	}
	if got := l.RetainedBatches(); got != 2 {
		t.Fatalf("retained %d batches, want 2 (had %d)", got, before)
	}
	if l.BatchAt(4) != nil {
		t.Fatal("pruned batch 4 still served")
	}
	if l.BatchAt(5) == nil || l.BatchAt(6) == nil {
		t.Fatal("retained suffix lost")
	}
	// Checkpoint records below the boundary are gone; the one at the
	// boundary (seq 4 = baseSeq) survives to serve state transfer.
	if ck := l.CheckpointAt(6); ck == nil || ck.Seq != 6 {
		t.Fatal("latest checkpoint lost")
	}
	// Compacting history must not move the root, and execution continues.
	if l.HistRoot() != root {
		t.Fatal("prune changed the history root")
	}
	runBatches(t, l, 7)
	if l.BatchAt(7) == nil {
		t.Fatal("execution broken after prune")
	}
	// Pruning is idempotent and ignores boundaries at or below base.
	l.Prune(3)
	if got := l.FirstRetainedSeq(); got != 5 {
		t.Fatalf("backwards prune moved the boundary to %d", got)
	}
}

func TestPruneBadBoundaryPanics(t *testing.T) {
	l := newTestLedger(t, 2)
	runBatches(t, l, 4)
	defer func() {
		if recover() == nil {
			t.Fatal("prune beyond next seq did not panic")
		}
	}()
	l.Prune(99)
}

func TestRollbackBelowPrunedBoundary(t *testing.T) {
	l := newTestLedger(t, 2)
	runBatches(t, l, 6)
	l.Prune(5)
	err := l.RollbackTo(3)
	if err == nil {
		t.Fatal("rollback below the pruned boundary succeeded")
	}
	if !errors.Is(err, ErrPruned) {
		t.Fatalf("rollback error %v, want ErrPruned", err)
	}
	// At the boundary itself the marks are gone too: baseSeq is 4, and
	// rolling back TO seq 4 would need batch 4's pre-state.
	if err := l.RollbackTo(4); !errors.Is(err, ErrPruned) {
		t.Fatalf("rollback to the boundary: %v, want ErrPruned", err)
	}
	// Above the boundary rollback still works.
	if err := l.RollbackTo(6); err != nil {
		t.Fatalf("rollback inside the retained suffix: %v", err)
	}
	if l.Seq() != 6 {
		t.Fatalf("next seq %d after rollback to 6", l.Seq())
	}
}

func TestNewFromCheckpointResumes(t *testing.T) {
	l := newTestLedger(t, 2)
	runBatches(t, l, 6)
	ck := l.CheckpointAt(4)
	if ck == nil || ck.Seq != 4 {
		t.Fatalf("no checkpoint at 4: %+v", ck)
	}
	cand, err := NewFromCheckpoint(Config{Key: testKey, App: KVApp{}, CheckpointEvery: 2}, ck)
	if err != nil {
		t.Fatal(err)
	}
	if cand.Seq() != 5 {
		t.Fatalf("resumed ledger proposes %d, want 5", cand.Seq())
	}
	if got := cand.RetainedBatches(); got != 0 {
		t.Fatalf("resumed ledger retains %d batches", got)
	}
	for seq := uint64(5); seq <= 6; seq++ {
		if _, err := cand.ApplyBatch(l.BatchAt(seq)); err != nil {
			t.Fatalf("apply suffix batch %d: %v", seq, err)
		}
	}
	if cand.HistRoot() != l.HistRoot() || cand.HistSize() != l.HistSize() {
		t.Fatal("resumed ledger's ¯M diverges from the original")
	}
	if cand.StateDigest() != l.StateDigest() {
		t.Fatal("resumed ledger's state diverges from the original")
	}
	// Shard-count mismatch is rejected up front.
	if _, err := NewFromCheckpoint(Config{Key: testKey, App: KVApp{}, CheckpointEvery: 2, Shards: 4}, ck); err == nil {
		t.Fatal("checkpoint with 1 shard accepted by a 4-shard config")
	}
}

// TestReplayFromMatchesFullReplay is the audit-equivalence property
// (paper §3.4, §5): resuming verification from any retained checkpoint must
// accept exactly the streams a from-genesis replay accepts and reach the
// same summary, across shard counts.
func TestReplayFromMatchesFullReplay(t *testing.T) {
	pool := hashsig.NewVerifierPool(4)
	defer pool.Close()
	for _, shards := range []uint32{1, 4, 16} {
		l, err := New(Config{Key: testKey, App: KVApp{}, CheckpointEvery: 3, Shards: shards})
		if err != nil {
			t.Fatal(err)
		}
		runBatches(t, l, 8)
		full, err := Replay(l.Batches(), testKey.Public(), KVApp{}, pool)
		if err != nil {
			t.Fatalf("shards %d: full replay: %v", shards, err)
		}
		for _, ckSeq := range []uint64{3, 6} {
			ck := l.CheckpointAt(ckSeq)
			if ck == nil || ck.Seq != ckSeq {
				t.Fatalf("shards %d: no checkpoint at %d", shards, ckSeq)
			}
			var suffix []*Batch
			for seq := ckSeq + 1; seq <= 8; seq++ {
				suffix = append(suffix, l.BatchAt(seq))
			}
			got, err := ReplayFrom(ck, suffix, testKey.Public(), KVApp{}, pool)
			if err != nil {
				t.Fatalf("shards %d ckpt %d: ReplayFrom: %v", shards, ckSeq, err)
			}
			if got.HistRoot != full.HistRoot || got.HistSize != full.HistSize {
				t.Fatalf("shards %d ckpt %d: resumed ¯M diverges from full replay", shards, ckSeq)
			}
			if got.StateDigest != full.StateDigest {
				t.Fatalf("shards %d ckpt %d: resumed state diverges from full replay", shards, ckSeq)
			}
			if got.Shards != full.Shards || got.CkptDigest != full.CkptDigest {
				t.Fatalf("shards %d ckpt %d: resumed summary diverges from full replay", shards, ckSeq)
			}
			// A tampered suffix is rejected from a checkpoint exactly as it
			// is from genesis.
			bad := deepCopyBatches(suffix)
			bad[len(bad)-1].Entries[0].Payload[0] ^= 0xff
			if _, err := ReplayFrom(ck, bad, testKey.Public(), KVApp{}, pool); err == nil {
				t.Fatalf("shards %d ckpt %d: tampered suffix accepted", shards, ckSeq)
			}
			// A suffix that does not start at ck.Seq+1 is rejected.
			if _, err := ReplayFrom(ck, suffix[1:], testKey.Public(), KVApp{}, pool); err == nil {
				t.Fatalf("shards %d ckpt %d: gapped suffix accepted", shards, ckSeq)
			}
		}
	}
}
