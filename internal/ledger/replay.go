package ledger

import (
	"errors"
	"fmt"

	"iaccf/internal/hashsig"
	"iaccf/internal/kv"
	"iaccf/internal/merkle"
)

// ErrReplay reports a batch stream that does not reproduce its own signed
// commitments: a tampered entry, a forged result, an inconsistent root, or
// an invalid header signature. This is the auditor's evidence of
// misbehaviour (paper §5).
var ErrReplay = errors.New("ledger: replay divergence")

// ReplayResult summarizes a successful replay.
type ReplayResult struct {
	Batches     int
	Entries     int
	Shards      uint32 // execution shard count the stream declared
	HistSize    uint64
	HistRoot    hashsig.Digest // ¯M after the last batch
	StateDigest hashsig.Digest // sharded store digest after the last batch
	CkptDigest  hashsig.Digest // d_C of the last checkpoint taken
}

// Replay re-executes a batch stream from genesis and checks every signed
// commitment against the recomputed state: header signatures (verified
// batch-parallel through pool when provided), per-entry results, per-shard
// batch tree roots combined into ¯G, history tree roots ¯M, and sharded
// checkpoint digests d_C. The auditor rebuilds a sharded store with the
// shard count the signed headers declare, so a replica that executed under
// a different partition than it claims is caught by the first checkpoint
// digest. app must be the same deterministic application the primary ran.
// A nil error means the stream is exactly reproducible — the replica that
// signed it executed it faithfully.
func Replay(batches []*Batch, pub *hashsig.PublicKey, app App, pool *hashsig.VerifierPool) (*ReplayResult, error) {
	if app == nil {
		return nil, ErrConfig
	}
	shards, err := verifyStreamHeaders(batches, pub, pool, 0)
	if err != nil {
		return nil, err
	}
	var wantSeq uint64
	if len(batches) > 0 {
		wantSeq = batches[0].Header.Seq
	}
	return replayStream(kv.NewSharded(int(shards)), merkle.New(), hashsig.Digest{}, wantSeq, shards, batches, app)
}

// ReplayFrom re-executes a batch suffix resuming from a verified
// checkpoint instead of genesis: the store starts as the checkpoint
// snapshot and the history tree is restored from the frontier, so every
// per-batch check — ¯G, ¯M, d_C, results, signatures — is exactly the one
// a full-stream replay performs over the same suffix. The first batch must
// have sequence number ck.Seq+1 and the stream's shard count must match
// the checkpoint's. The checkpoint itself is re-verified: its snapshot
// must hash to its claimed d_C, so a corrupted checkpoint record cannot
// vouch for a suffix. The caller remains responsible for binding ck.Digest
// to a signed header (paper §3.4); given that binding, a successful
// ReplayFrom is equivalent evidence to a full replay.
func ReplayFrom(ck *Checkpoint, batches []*Batch, pub *hashsig.PublicKey, app App, pool *hashsig.VerifierPool) (*ReplayResult, error) {
	if app == nil || ck == nil {
		return nil, ErrConfig
	}
	shards, err := verifyStreamHeaders(batches, pub, pool, ck.Store.ShardCount())
	if err != nil {
		return nil, err
	}
	store := ck.Store.Clone()
	if got := store.CheckpointDigest(); got != ck.Digest {
		return nil, fmt.Errorf("%w: checkpoint %d: snapshot digest mismatch", ErrReplay, ck.Seq)
	}
	hist, err := merkle.FromFrontier(ck.Frontier)
	if err != nil {
		return nil, fmt.Errorf("%w: checkpoint %d: %v", ErrReplay, ck.Seq, err)
	}
	return replayStream(store, hist, ck.Digest, ck.Seq+1, shards, batches, app)
}

// verifyStreamHeaders checks the stream's structural coherence (one shard
// count, declared by every header, within the store's limit — and matching
// wantShards when non-zero) and verifies all header signatures up front as
// one parallel batch: replay is the verification-heavy path the paper
// parallelizes (§3.4).
func verifyStreamHeaders(batches []*Batch, pub *hashsig.PublicKey, pool *hashsig.VerifierPool, wantShards uint32) (uint32, error) {
	shards := wantShards
	if shards == 0 {
		shards = 1
	}
	for i, b := range batches {
		if i == 0 && wantShards == 0 {
			shards = b.Header.Shards
			if shards < 1 || shards > kv.MaxShards {
				return 0, fmt.Errorf("%w: batch %d: shard count %d", ErrReplay, b.Header.Seq, shards)
			}
		} else if b.Header.Shards != shards {
			return 0, fmt.Errorf("%w: batch %d: shard count %d, stream expects %d",
				ErrReplay, b.Header.Seq, b.Header.Shards, shards)
		}
	}
	tasks := make([]hashsig.VerifyTask, len(batches))
	for i, b := range batches {
		tasks[i] = hashsig.VerifyTask{Key: pub, Digest: b.Header.SigningDigest(), Sig: b.Header.Sig}
	}
	var oks []bool
	if pool != nil {
		oks = pool.VerifyAll(tasks)
	} else {
		oks = make([]bool, len(tasks))
		for i, t := range tasks {
			oks[i] = t.Key.Verify(t.Digest, t.Sig)
		}
	}
	for i, ok := range oks {
		if !ok {
			return 0, fmt.Errorf("%w: batch %d: invalid header signature", ErrReplay, batches[i].Header.Seq)
		}
	}
	return shards, nil
}

// replayStream is the shared re-execution core behind Replay and
// ReplayFrom: it drives batches through the given store and history tree
// (fresh at genesis, or checkpoint-seeded) and checks every commitment.
// wantSeq pins the first batch's sequence number.
func replayStream(store *kv.ShardedStore, hist *merkle.Tree, lastCkpt hashsig.Digest,
	wantSeq uint64, shards uint32, batches []*Batch, app App) (*ReplayResult, error) {
	res := &ReplayResult{Shards: shards}
	for _, b := range batches {
		seq := b.Header.Seq
		if seq != wantSeq {
			return nil, fmt.Errorf("%w: batch %d: expected sequence %d", ErrReplay, seq, wantSeq)
		}
		wantSeq++
		digests := make([]hashsig.Digest, len(b.Entries))
		for ei := range b.Entries {
			e := &b.Entries[ei]
			switch e.Kind {
			case KindTransaction:
				tx := store.Begin()
				var got hashsig.Digest
				if err := app.Execute(tx, e.Payload); err != nil {
					tx.Abort()
				} else {
					got = tx.WriteSetDigest()
					tx.Commit()
				}
				if got != e.Result {
					return nil, fmt.Errorf("%w: batch %d entry %d: result digest mismatch", ErrReplay, seq, ei)
				}
			case KindGovernance:
				// Recorded, no state effect.
			case KindCheckpoint:
				if e.Seq != seq {
					return nil, fmt.Errorf("%w: batch %d entry %d: checkpoint labelled %d", ErrReplay, seq, ei, e.Seq)
				}
				// The auditor pays the same incremental cost the primary did:
				// only shards dirtied since the previous checkpoint re-hash.
				if got := store.CheckpointDigest(); got != e.State {
					return nil, fmt.Errorf("%w: batch %d: checkpoint digest mismatch", ErrReplay, seq)
				}
				lastCkpt = e.State
			default:
				return nil, fmt.Errorf("%w: batch %d entry %d: unknown kind %d", ErrReplay, seq, ei, e.Kind)
			}
			digests[ei] = e.Digest()
			res.Entries++
		}

		// Rebuild the per-shard batch trees G_s under the declared partition
		// and combine their roots; the header's ¯G must match exactly.
		perShard := make([][]hashsig.Digest, shards)
		for ei := range b.Entries {
			s := entryShard(&b.Entries[ei], shards)
			perShard[s] = append(perShard[s], digests[ei])
		}
		top := merkle.New()
		for s := range perShard {
			g := merkle.New()
			for _, d := range perShard[s] {
				g.Append(d)
			}
			top.Append(g.Root())
		}
		if got := uint64(len(digests)); got != b.Header.GSize {
			return nil, fmt.Errorf("%w: batch %d: %d entries, header claims %d", ErrReplay, seq, got, b.Header.GSize)
		}
		if got := top.Root(); got != b.Header.GRoot {
			return nil, fmt.Errorf("%w: batch %d: batch root mismatch", ErrReplay, seq)
		}
		for _, d := range digests {
			hist.Append(d)
		}
		if got := hist.Size(); got != b.Header.HistSize {
			return nil, fmt.Errorf("%w: batch %d: history size %d, header claims %d", ErrReplay, seq, got, b.Header.HistSize)
		}
		if got := hist.Root(); got != b.Header.MRoot {
			return nil, fmt.Errorf("%w: batch %d: history root mismatch", ErrReplay, seq)
		}
		if b.Header.CkptDigest != lastCkpt {
			return nil, fmt.Errorf("%w: batch %d: checkpoint reference mismatch", ErrReplay, seq)
		}
		res.Batches++
	}
	res.HistSize = hist.Size()
	res.HistRoot = hist.Root()
	res.StateDigest = store.CheckpointDigest()
	res.CkptDigest = lastCkpt
	return res, nil
}
