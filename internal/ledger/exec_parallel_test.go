package ledger

import (
	"fmt"
	"math/rand"
	"runtime"
	"strings"
	"testing"

	"iaccf/internal/hashsig"
	"iaccf/internal/kv"
)

// hiddenFootprint wraps an App, hiding any Footprint method: a ledger built
// over it always takes the sequential core, making it the oracle the
// parallel executor is compared against.
type hiddenFootprint struct{ app App }

func (h hiddenFootprint) Execute(tx *kv.Tx, request []byte) error {
	return h.app.Execute(tx, request)
}

// forceParallel pins GOMAXPROCS above 1 for the duration of a test so the
// parallel executor's CPU gate opens even on a single-core machine.
func forceParallel(t testing.TB) {
	t.Helper()
	prev := runtime.GOMAXPROCS(4)
	t.Cleanup(func() { runtime.GOMAXPROCS(prev) })
}

// genBatch builds a randomized batch: keyPool controls conflict density
// (small pool = hot keys = dense conflicts), with a mix of multi-op
// transactions, governance records, and malformed bodies.
func genBatch(rng *rand.Rand, n, keyPool int) []Request {
	reqs := make([]Request, 0, n)
	for i := 0; i < n; i++ {
		author := fmt.Sprintf("client-%d", rng.Intn(8))
		switch rng.Intn(10) {
		case 0:
			reqs = append(reqs, Request{
				Governance: true,
				Author:     hashsig.Sum([]byte("member:" + author)),
				Body:       []byte(fmt.Sprintf("gov-%d", i)),
			})
			continue
		case 1:
			// Malformed body: aborts deterministically, touches nothing.
			reqs = append(reqs, Request{
				Author: hashsig.Sum([]byte("client:" + author)),
				ReqNo:  uint64(i),
				Body:   []byte{0xff, 0xff, 0xff},
			})
			continue
		}
		ops := make([]Op, 0, 4)
		for o := 0; o < 1+rng.Intn(4); o++ {
			k := fmt.Sprintf("key-%d", rng.Intn(keyPool))
			if rng.Intn(8) == 0 {
				ops = append(ops, Op{Key: k, Delete: true})
			} else {
				ops = append(ops, Op{Key: k, Val: []byte(fmt.Sprintf("v-%d-%d", i, o))})
			}
		}
		reqs = append(reqs, Request{
			Author: hashsig.Sum([]byte("client:" + author)),
			ReqNo:  uint64(i),
			Body:   EncodeOps(ops),
		})
	}
	return reqs
}

// assertBatchesEqual compares everything the executors emit except raw
// ECDSA signatures (randomized per sign); the signing digest covers every
// signed header field.
func assertBatchesEqual(t *testing.T, label string, pb, sb *Batch, pr, sr []Receipt) {
	t.Helper()
	if pb.Header.SigningDigest() != sb.Header.SigningDigest() {
		t.Fatalf("%s: header signing digests differ\nparallel:   %+v\nsequential: %+v",
			label, pb.Header, sb.Header)
	}
	if len(pb.Entries) != len(sb.Entries) {
		t.Fatalf("%s: entry counts differ: %d vs %d", label, len(pb.Entries), len(sb.Entries))
	}
	for i := range pb.Entries {
		if pb.Entries[i].Digest() != sb.Entries[i].Digest() {
			t.Fatalf("%s: entry %d differs\nparallel:   %+v\nsequential: %+v",
				label, i, pb.Entries[i], sb.Entries[i])
		}
	}
	if len(pr) != len(sr) {
		t.Fatalf("%s: receipt counts differ: %d vs %d", label, len(pr), len(sr))
	}
	for i := range pr {
		p, s := pr[i], sr[i]
		if p.Entry.Digest() != s.Entry.Digest() || p.Shard != s.Shard ||
			p.Index != s.Index || p.ShardSize != s.ShardSize || len(p.Path) != len(s.Path) {
			t.Fatalf("%s: receipt %d differs", label, i)
		}
		for j := range p.Path {
			if p.Path[j] != s.Path[j] {
				t.Fatalf("%s: receipt %d path element %d differs", label, i, j)
			}
		}
	}
}

// TestParallelExecuteMatchesSequential is the tentpole property: across
// shard counts, batch sizes, and conflict densities, the parallel executor
// emits byte-identical entries, headers, receipts, and post-state to the
// sequential core.
func TestParallelExecuteMatchesSequential(t *testing.T) {
	forceParallel(t)
	for _, shards := range []uint32{1, 4, 16} {
		for _, keyPool := range []int{4, 64, 4096} { // dense → sparse conflicts
			label := fmt.Sprintf("shards=%d/pool=%d", shards, keyPool)
			t.Run(label, func(t *testing.T) {
				rng := rand.New(rand.NewSource(int64(shards)*1000 + int64(keyPool)))
				par, err := New(Config{Key: testKey, App: KVApp{}, Shards: shards, CheckpointEvery: 2})
				if err != nil {
					t.Fatal(err)
				}
				seqL, err := New(Config{Key: testKey, App: hiddenFootprint{KVApp{}}, Shards: shards, CheckpointEvery: 2})
				if err != nil {
					t.Fatal(err)
				}
				for batch := 0; batch < 4; batch++ {
					reqs := genBatch(rng, minParallelBatch+rng.Intn(100), keyPool)
					pb, pr, err := par.ExecuteBatch(reqs)
					if err != nil {
						t.Fatal(err)
					}
					sb, sr, err := seqL.ExecuteBatch(reqs)
					if err != nil {
						t.Fatal(err)
					}
					assertBatchesEqual(t, fmt.Sprintf("%s/batch=%d", label, batch), pb, sb, pr, sr)
					if par.StateDigest() != seqL.StateDigest() {
						t.Fatalf("%s: post-state digests diverge after batch %d", label, batch)
					}
					for _, r := range pr {
						if !r.Verify(testKey.Public()) {
							t.Fatalf("%s: parallel receipt does not verify", label)
						}
					}
				}
			})
		}
	}
}

// lyingApp under-declares its footprint: Execute writes a key Footprint
// never mentions. The executor must detect the violation via shard-access
// tracking and fall back to the sequential core — same results, no
// divergence.
type lyingApp struct{}

func (lyingApp) Execute(tx *kv.Tx, request []byte) error {
	if err := (KVApp{}).Execute(tx, request); err != nil {
		return err
	}
	tx.Put("undeclared-key", []byte("surprise"))
	return nil
}

func (lyingApp) Footprint(request []byte) ([]string, bool) {
	return KVApp{}.Footprint(request)
}

func TestParallelExecuteFallsBackOnViolatedFootprint(t *testing.T) {
	forceParallel(t)
	rng := rand.New(rand.NewSource(7))
	par, err := New(Config{Key: testKey, App: lyingApp{}, Shards: 8, CheckpointEvery: 1})
	if err != nil {
		t.Fatal(err)
	}
	seqL, err := New(Config{Key: testKey, App: hiddenFootprint{lyingApp{}}, Shards: 8, CheckpointEvery: 1})
	if err != nil {
		t.Fatal(err)
	}
	reqs := genBatch(rng, minParallelBatch+16, 32)
	pb, pr, err := par.ExecuteBatch(reqs)
	if err != nil {
		t.Fatal(err)
	}
	sb, sr, err := seqL.ExecuteBatch(reqs)
	if err != nil {
		t.Fatal(err)
	}
	assertBatchesEqual(t, "lying-app", pb, sb, pr, sr)
	if par.StateDigest() != seqL.StateDigest() {
		t.Fatal("post-state digests diverge after fallback")
	}
}

// barrierApp refuses to declare footprints for some requests: those become
// scheduling barriers, and execution must still match sequential exactly.
type barrierApp struct{}

func (barrierApp) Execute(tx *kv.Tx, request []byte) error {
	return KVApp{}.Execute(tx, request)
}

func (barrierApp) Footprint(request []byte) ([]string, bool) {
	keys, ok := KVApp{}.Footprint(request)
	for _, k := range keys {
		if strings.HasSuffix(k, "0") { // ~1 in 10 requests become barriers
			return nil, false
		}
	}
	return keys, ok
}

func TestParallelExecuteWithBarriers(t *testing.T) {
	forceParallel(t)
	rng := rand.New(rand.NewSource(11))
	par, err := New(Config{Key: testKey, App: barrierApp{}, Shards: 8, CheckpointEvery: 2})
	if err != nil {
		t.Fatal(err)
	}
	seqL, err := New(Config{Key: testKey, App: hiddenFootprint{barrierApp{}}, Shards: 8, CheckpointEvery: 2})
	if err != nil {
		t.Fatal(err)
	}
	for batch := 0; batch < 3; batch++ {
		reqs := genBatch(rng, minParallelBatch+32, 48)
		pb, pr, err := par.ExecuteBatch(reqs)
		if err != nil {
			t.Fatal(err)
		}
		sb, sr, err := seqL.ExecuteBatch(reqs)
		if err != nil {
			t.Fatal(err)
		}
		assertBatchesEqual(t, fmt.Sprintf("barriers/batch=%d", batch), pb, sb, pr, sr)
	}
}

// TestParallelApplyAdoptsSequentialBatch drives the backup path: a
// sequential primary proposes, a parallel backup re-executes and must adopt
// with an identical signing digest; a tampered batch must be rejected and
// leave the backup rolled back, exactly like the sequential backup.
func TestParallelApplyAdoptsAndRejects(t *testing.T) {
	forceParallel(t)
	rng := rand.New(rand.NewSource(23))
	primary, err := New(Config{Key: testKey, App: hiddenFootprint{KVApp{}}, Shards: 8, CheckpointEvery: 2})
	if err != nil {
		t.Fatal(err)
	}
	backupKey := hashsig.GenerateKeyFromSeed("parallel-backup")
	backup, err := New(Config{Key: backupKey, App: KVApp{}, Shards: 8, CheckpointEvery: 2})
	if err != nil {
		t.Fatal(err)
	}
	for batch := 0; batch < 4; batch++ {
		reqs := genBatch(rng, minParallelBatch+rng.Intn(64), 64)
		pb, _, err := primary.ExecuteBatch(reqs)
		if err != nil {
			t.Fatal(err)
		}
		own, err := backup.ApplyBatch(pb)
		if err != nil {
			t.Fatal(err)
		}
		if own.SigningDigest() != pb.Header.SigningDigest() {
			t.Fatalf("batch %d: backup adopted different commitments", batch)
		}
		if !own.Verify(backupKey.Public()) {
			t.Fatalf("batch %d: backup co-signature invalid", batch)
		}
		if backup.StateDigest() != primary.StateDigest() {
			t.Fatalf("batch %d: backup state diverges", batch)
		}
	}

	// Tamper with one transaction result: the parallel backup must reject,
	// roll back cleanly, and then accept the honest batch.
	reqs := genBatch(rng, minParallelBatch+8, 64)
	pb, _, err := primary.ExecuteBatch(reqs)
	if err != nil {
		t.Fatal(err)
	}
	tampered := &Batch{Header: pb.Header, Entries: append([]Entry(nil), pb.Entries...)}
	for i := range tampered.Entries {
		if tampered.Entries[i].Kind == KindTransaction && tampered.Entries[i].Result != (hashsig.Digest{}) {
			tampered.Entries[i].Result = hashsig.Sum([]byte("forged"))
			break
		}
	}
	preSeq, preState := backup.Seq(), backup.StateDigest()
	if _, err := backup.ApplyBatch(tampered); err == nil {
		t.Fatal("tampered batch accepted")
	}
	if backup.Seq() != preSeq || backup.StateDigest() != preState {
		t.Fatal("rejected batch left residue on the backup")
	}
	if _, err := backup.ApplyBatch(pb); err != nil {
		t.Fatalf("honest batch rejected after tampered one: %v", err)
	}
	if backup.StateDigest() != primary.StateDigest() {
		t.Fatal("backup state diverges after recovery")
	}
}

// panickyApp panics mid-batch inside a wave worker; the panic must surface
// on the calling goroutine with the pre-batch mark intact so the caller can
// roll back, matching the sequential contract.
type panickyApp struct{}

func (panickyApp) Execute(tx *kv.Tx, request []byte) error {
	if len(request) > 0 && request[0] == 0xfe {
		panic("app exploded")
	}
	return KVApp{}.Execute(tx, request)
}

func (panickyApp) Footprint(request []byte) ([]string, bool) {
	if len(request) > 0 && request[0] == 0xfe {
		return nil, true
	}
	return KVApp{}.Footprint(request)
}

func TestParallelExecutePanicPropagates(t *testing.T) {
	forceParallel(t)
	l, err := New(Config{Key: testKey, App: panickyApp{}, Shards: 8, CheckpointEvery: 1})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(31))
	reqs := genBatch(rng, minParallelBatch+8, 64)
	reqs[len(reqs)/2] = Request{Author: hashsig.Sum([]byte("boom")), Body: []byte{0xfe}}
	seq := l.Seq()
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("worker panic did not propagate")
			}
		}()
		l.ExecuteBatch(reqs)
	}()
	if err := l.RollbackTo(seq); err != nil {
		t.Fatalf("rollback after panic: %v", err)
	}
	// The ledger still works.
	if _, _, err := l.ExecuteBatch(genBatch(rng, 8, 16)); err != nil {
		t.Fatal(err)
	}
}

// TestPlanWavesOrdersConflicts unit-tests the scheduling recurrence:
// conflicting requests land in strictly increasing waves, disjoint requests
// share waves, and unknown footprints act as full barriers.
func TestPlanWavesOrdersConflicts(t *testing.T) {
	const shards = 8
	fp := func(ss ...uint32) shardSet {
		s := newShardSet(shards)
		for _, x := range ss {
			s.add(x)
		}
		return s
	}
	reqs := make([]Request, 7)
	reqs[2].Governance = true
	fps := []shardSet{
		fp(0),    // wave 1
		fp(1),    // wave 1 (disjoint)
		nil,      // governance: unscheduled (fps ignored)
		fp(0, 2), // wave 2 (conflicts with req 0)
		nil,      // barrier: wave 3
		fp(5),    // wave 4 (after barrier)
		fp(5),    // wave 5 (conflicts with req 5)
	}
	waves := planWaves(reqs, fps, shards)
	want := [][]int{{0, 1}, {3}, {4}, {5}, {6}}
	if len(waves) != len(want) {
		t.Fatalf("got %d waves %v, want %v", len(waves), waves, want)
	}
	for w := range want {
		if len(waves[w]) != len(want[w]) {
			t.Fatalf("wave %d = %v, want %v", w+1, waves[w], want[w])
		}
		for i := range want[w] {
			if waves[w][i] != want[w][i] {
				t.Fatalf("wave %d = %v, want %v", w+1, waves[w], want[w])
			}
		}
	}
}
