package ledger

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"

	"iaccf/internal/hashsig"
	"iaccf/internal/merkle"
)

var testKey = hashsig.GenerateKeyFromSeed("ledger-test-replica")

func newTestLedger(t testing.TB, ckptEvery uint64) *Ledger {
	t.Helper()
	l, err := New(Config{Key: testKey, App: KVApp{}, CheckpointEvery: ckptEvery})
	if err != nil {
		t.Fatal(err)
	}
	return l
}

func putReq(author string, reqNo uint64, kvs ...string) Request {
	if len(kvs)%2 != 0 {
		panic("putReq needs key/value pairs")
	}
	ops := make([]Op, 0, len(kvs)/2)
	for i := 0; i < len(kvs); i += 2 {
		ops = append(ops, Op{Key: kvs[i], Val: []byte(kvs[i+1])})
	}
	return Request{
		Author: hashsig.Sum([]byte("client:" + author)),
		ReqNo:  reqNo,
		Body:   EncodeOps(ops),
	}
}

func TestEntryCodecRoundTrip(t *testing.T) {
	entries := []Entry{
		{Kind: KindTransaction, Author: hashsig.Sum([]byte("c")), ReqNo: 7, Payload: []byte("tx"), Result: hashsig.Sum([]byte("o"))},
		{Kind: KindTransaction, Author: hashsig.Sum([]byte("c")), ReqNo: 8, Payload: nil, Result: hashsig.ZeroDigest},
		{Kind: KindGovernance, Author: hashsig.Sum([]byte("m")), Payload: []byte("add-member")},
		{Kind: KindCheckpoint, Seq: 42, State: hashsig.Sum([]byte("d_C"))},
	}
	for i, e := range entries {
		b := e.Encode(nil)
		got, err := DecodeEntry(b)
		if err != nil {
			t.Fatalf("entry %d: %v", i, err)
		}
		if got.Digest() != e.Digest() {
			t.Fatalf("entry %d: digest changed across codec round trip", i)
		}
		if !bytes.Equal(got.Encode(nil), b) {
			t.Fatalf("entry %d: re-encoding differs", i)
		}
	}
}

func TestEntryCodecRejects(t *testing.T) {
	if _, err := DecodeEntry(nil); err == nil {
		t.Fatal("empty entry decoded")
	}
	if _, err := DecodeEntry([]byte{99}); err == nil {
		t.Fatal("unknown kind decoded")
	}
	e := Entry{Kind: KindCheckpoint, Seq: 1, State: hashsig.Sum([]byte("x"))}
	b := append(e.Encode(nil), 0x00) // trailing garbage
	if _, err := DecodeEntry(b); err == nil {
		t.Fatal("trailing data accepted")
	}
	tx := Entry{Kind: KindTransaction, Payload: []byte("p")}
	if _, err := DecodeEntry(tx.Encode(nil)[:10]); err == nil {
		t.Fatal("truncated entry decoded")
	}
}

func TestExecuteBatchReceiptsVerify(t *testing.T) {
	l := newTestLedger(t, 0)
	pub := testKey.Public()
	for seq := 1; seq <= 5; seq++ {
		reqs := []Request{
			putReq("alice", uint64(seq), fmt.Sprintf("a%d", seq), "1"),
			putReq("bob", uint64(seq), fmt.Sprintf("b%d", seq), "2", "shared", fmt.Sprintf("s%d", seq)),
		}
		batch, receipts, err := l.ExecuteBatch(reqs)
		if err != nil {
			t.Fatal(err)
		}
		if batch.Header.Seq != uint64(seq) {
			t.Fatalf("batch seq %d, want %d", batch.Header.Seq, seq)
		}
		if len(receipts) != len(reqs) {
			t.Fatalf("%d receipts for %d transactions", len(receipts), len(reqs))
		}
		for i, r := range receipts {
			if !r.Verify(pub) {
				t.Fatalf("seq %d receipt %d does not verify", seq, i)
			}
		}
	}
	if v, ok := l.Get("shared"); !ok || string(v) != "s5" {
		t.Fatalf("executed state wrong: %q %v", v, ok)
	}
}

func TestReceiptRejectsTampering(t *testing.T) {
	l := newTestLedger(t, 0)
	pub := testKey.Public()
	_, receipts, err := l.ExecuteBatch([]Request{
		putReq("alice", 1, "k", "v"),
		putReq("bob", 1, "k2", "v2"),
	})
	if err != nil {
		t.Fatal(err)
	}
	r := receipts[0]

	tampered := r
	tampered.Entry.Payload = EncodeOps([]Op{{Key: "k", Val: []byte("evil")}})
	if tampered.Verify(pub) {
		t.Fatal("receipt with tampered payload verifies")
	}

	tampered = r
	tampered.Index = 1
	if tampered.Verify(pub) {
		t.Fatal("receipt with wrong index verifies")
	}

	tampered = r
	tampered.Header.GRoot = hashsig.Sum([]byte("forged"))
	if tampered.Verify(pub) {
		t.Fatal("receipt with forged root verifies")
	}

	otherPub := hashsig.GenerateKeyFromSeed("not-the-replica").Public()
	if r.Verify(otherPub) {
		t.Fatal("receipt verifies under the wrong key")
	}
	if !r.Verify(pub) {
		t.Fatal("untampered receipt stopped verifying")
	}
}

// Regression: receipts used to alias the payload slice retained in the
// batch stream, so a client mutating its receipt corrupted the ledger.
func TestReceiptMutationDoesNotCorruptLedger(t *testing.T) {
	l := newTestLedger(t, 0)
	_, receipts, err := l.ExecuteBatch([]Request{putReq("alice", 1, "k", "v")})
	if err != nil {
		t.Fatal(err)
	}
	for i := range receipts[0].Entry.Payload {
		receipts[0].Entry.Payload[i] = 0xEE
	}
	if _, err := Replay(l.Batches(), testKey.Public(), KVApp{}, nil); err != nil {
		t.Fatalf("mutating a receipt corrupted the retained stream: %v", err)
	}
}

func TestFailedTransactionRecorded(t *testing.T) {
	l := newTestLedger(t, 0)
	good := putReq("alice", 1, "k", "v")
	bad := Request{Author: hashsig.Sum([]byte("client:mallory")), ReqNo: 1, Body: []byte{0xff, 0xff}}
	batch, receipts, err := l.ExecuteBatch([]Request{good, bad})
	if err != nil {
		t.Fatal(err)
	}
	if len(receipts) != 2 {
		t.Fatalf("%d receipts, want 2 (failed tx still gets one)", len(receipts))
	}
	if batch.Entries[1].Result != hashsig.ZeroDigest {
		t.Fatal("failed transaction has nonzero result")
	}
	if !receipts[1].Verify(testKey.Public()) {
		t.Fatal("failed-transaction receipt does not verify")
	}
	if _, ok := l.Get("k"); !ok {
		t.Fatal("good transaction in same batch lost")
	}
}

func TestGovernanceEntryOnLedger(t *testing.T) {
	l := newTestLedger(t, 0)
	gov := Request{
		Governance: true,
		Author:     hashsig.Sum([]byte("member:1")),
		Body:       []byte("propose: add member 4"),
	}
	batch, receipts, err := l.ExecuteBatch([]Request{gov, putReq("alice", 1, "k", "v")})
	if err != nil {
		t.Fatal(err)
	}
	if len(receipts) != 1 {
		t.Fatal("governance entries must not produce client receipts")
	}
	if batch.Entries[0].Kind != KindGovernance {
		t.Fatal("governance entry missing from batch")
	}
	// Governance actions are part of the replayed, signed history.
	if _, err := Replay(l.Batches(), testKey.Public(), KVApp{}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCheckpointInterval(t *testing.T) {
	l := newTestLedger(t, 3)
	for seq := 1; seq <= 7; seq++ {
		batch, _, err := l.ExecuteBatch([]Request{putReq("c", uint64(seq), fmt.Sprintf("k%d", seq), "v")})
		if err != nil {
			t.Fatal(err)
		}
		hasCkpt := false
		for _, e := range batch.Entries {
			if e.Kind == KindCheckpoint {
				hasCkpt = true
				if e.Seq != uint64(seq) {
					t.Fatalf("checkpoint labelled %d in batch %d", e.Seq, seq)
				}
			}
		}
		if want := seq%3 == 0; hasCkpt != want {
			t.Fatalf("batch %d: checkpoint present=%v, want %v", seq, hasCkpt, want)
		}
		if seq < 3 && !batch.Header.CkptDigest.IsZero() {
			t.Fatalf("batch %d references a checkpoint before any was taken", seq)
		}
		if seq >= 3 && batch.Header.CkptDigest.IsZero() {
			t.Fatalf("batch %d missing checkpoint reference", seq)
		}
	}
	if _, err := Replay(l.Batches(), testKey.Public(), KVApp{}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRollbackRestoresAllLayers(t *testing.T) {
	l := newTestLedger(t, 0)
	type snap struct {
		root  hashsig.Digest
		size  uint64
		state hashsig.Digest
		ckpt  hashsig.Digest
	}
	snaps := map[uint64]snap{}
	snaps[1] = snap{root: l.HistRoot(), size: l.HistSize(), state: l.StateDigest()}
	for seq := uint64(1); seq <= 5; seq++ {
		if _, _, err := l.ExecuteBatch([]Request{putReq("c", seq, fmt.Sprintf("k%d", seq), "v")}); err != nil {
			t.Fatal(err)
		}
		b := l.Batches()[len(l.Batches())-1]
		snaps[seq+1] = snap{root: l.HistRoot(), size: l.HistSize(), state: l.StateDigest(), ckpt: b.Header.CkptDigest}
	}

	if err := l.RollbackTo(4); err != nil {
		t.Fatal(err)
	}
	want := snaps[4]
	if l.HistRoot() != want.root || l.HistSize() != want.size || l.StateDigest() != want.state {
		t.Fatal("rollback to 4 did not restore M and store in lockstep")
	}
	if len(l.Batches()) != 3 || l.Seq() != 4 {
		t.Fatalf("rollback left %d batches, next seq %d", len(l.Batches()), l.Seq())
	}

	// Divergent re-execution from the rollback point.
	if _, _, err := l.ExecuteBatch([]Request{putReq("c", 4, "divergent", "yes")}); err != nil {
		t.Fatal(err)
	}
	if _, ok := l.Get("k4"); ok {
		t.Fatal("rolled-back write still visible")
	}
	if v, ok := l.Get("divergent"); !ok || string(v) != "yes" {
		t.Fatal("divergent write missing")
	}
	if _, err := Replay(l.Batches(), testKey.Public(), KVApp{}, nil); err != nil {
		t.Fatalf("post-rollback history does not replay: %v", err)
	}

	if err := l.RollbackTo(99); err == nil {
		t.Fatal("rollback to unknown seq succeeded")
	}
	l.PruneMarks(3)
	if err := l.RollbackTo(1); err == nil {
		t.Fatal("rollback to pruned mark succeeded")
	}
}

func TestBatchStreamRoundTrip(t *testing.T) {
	l := newTestLedger(t, 2)
	for seq := uint64(1); seq <= 4; seq++ {
		reqs := []Request{putReq("c", seq, fmt.Sprintf("k%d", seq), "v")}
		if seq == 2 {
			reqs = append(reqs, Request{Governance: true, Author: hashsig.Sum([]byte("m")), Body: []byte("act")})
		}
		if _, _, err := l.ExecuteBatch(reqs); err != nil {
			t.Fatal(err)
		}
	}
	var buf bytes.Buffer
	if err := WriteBatches(&buf, l.Batches()); err != nil {
		t.Fatal(err)
	}
	decoded, err := ReadBatches(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(decoded) != len(l.Batches()) {
		t.Fatalf("decoded %d batches, want %d", len(decoded), len(l.Batches()))
	}
	for i, b := range decoded {
		orig := l.Batches()[i]
		if b.Header.SigningDigest() != orig.Header.SigningDigest() {
			t.Fatalf("batch %d header changed across codec", i)
		}
		if len(b.Entries) != len(orig.Entries) {
			t.Fatalf("batch %d entry count changed", i)
		}
		for j := range b.Entries {
			if b.Entries[j].Digest() != orig.Entries[j].Digest() {
				t.Fatalf("batch %d entry %d changed across codec", i, j)
			}
		}
	}
	// A replay of the decoded stream must also pass.
	if _, err := Replay(decoded, testKey.Public(), KVApp{}, nil); err != nil {
		t.Fatal(err)
	}

	if _, err := ReadBatches(bytes.NewReader(buf.Bytes()[:buf.Len()-3])); err == nil {
		t.Fatal("truncated stream decoded")
	}
	if _, err := ReadBatches(bytes.NewReader(append(buf.Bytes(), 0x01))); err == nil {
		t.Fatal("stream with trailing data decoded")
	}
}

func TestReplayReproducesRoots(t *testing.T) {
	l := newTestLedger(t, 2)
	pool := hashsig.NewVerifierPool(4)
	defer pool.Close()
	for seq := uint64(1); seq <= 6; seq++ {
		if _, _, err := l.ExecuteBatch([]Request{
			putReq("alice", seq, fmt.Sprintf("a%d", seq), "x"),
			putReq("bob", seq, "shared", fmt.Sprintf("%d", seq)),
		}); err != nil {
			t.Fatal(err)
		}
	}
	res, err := Replay(l.Batches(), testKey.Public(), KVApp{}, pool)
	if err != nil {
		t.Fatal(err)
	}
	if res.HistRoot != l.HistRoot() || res.HistSize != l.HistSize() {
		t.Fatal("replayed history root diverges from the primary")
	}
	if res.StateDigest != l.StateDigest() {
		t.Fatal("replayed state digest diverges from the primary")
	}
	if res.Batches != 6 {
		t.Fatalf("replayed %d batches", res.Batches)
	}
}

// deepCopyBatches clones the stream so tamper tests cannot disturb the
// ledger's own copy.
func deepCopyBatches(src []*Batch) []*Batch {
	out := make([]*Batch, len(src))
	for i, b := range src {
		nb := &Batch{Header: b.Header}
		nb.Header.Sig = b.Header.Sig.Clone()
		nb.Entries = make([]Entry, len(b.Entries))
		for j, e := range b.Entries {
			ne := e
			ne.Payload = append([]byte(nil), e.Payload...)
			nb.Entries[j] = ne
		}
		out[i] = nb
	}
	return out
}

func TestReplayRejectsTampering(t *testing.T) {
	l := newTestLedger(t, 0)
	for seq := uint64(1); seq <= 3; seq++ {
		if _, _, err := l.ExecuteBatch([]Request{putReq("c", seq, fmt.Sprintf("k%d", seq), "v")}); err != nil {
			t.Fatal(err)
		}
	}
	pub := testKey.Public()

	// Tampered transaction payload: entry digest changes, ¯G no longer matches.
	tampered := deepCopyBatches(l.Batches())
	tampered[1].Entries[0].Payload = EncodeOps([]Op{{Key: "k2", Val: []byte("evil")}})
	if _, err := Replay(tampered, pub, KVApp{}, nil); err == nil {
		t.Fatal("tampered payload replayed cleanly")
	}

	// Forged result: execution digest diverges.
	tampered = deepCopyBatches(l.Batches())
	tampered[2].Entries[0].Result = hashsig.Sum([]byte("forged"))
	if _, err := Replay(tampered, pub, KVApp{}, nil); err == nil {
		t.Fatal("forged result replayed cleanly")
	}

	// Forged header signature.
	tampered = deepCopyBatches(l.Batches())
	tampered[0].Header.Sig[8] ^= 0x40
	if _, err := Replay(tampered, pub, KVApp{}, nil); err == nil {
		t.Fatal("forged signature replayed cleanly")
	}

	// Re-signed header over a forged root: signature valid, roots diverge.
	tampered = deepCopyBatches(l.Batches())
	tampered[2].Header.MRoot = hashsig.Sum([]byte("rewritten history"))
	tampered[2].Header.Sig = testKey.MustSign(tampered[2].Header.SigningDigest())
	if _, err := Replay(tampered, pub, KVApp{}, nil); err == nil {
		t.Fatal("re-signed forged root replayed cleanly")
	}

	// Dropped batch: sequence gap.
	tampered = deepCopyBatches(l.Batches())
	tampered = append(tampered[:1], tampered[2:]...)
	if _, err := Replay(tampered, pub, KVApp{}, nil); err == nil {
		t.Fatal("stream with dropped batch replayed cleanly")
	}

	// Untampered control.
	if _, err := Replay(l.Batches(), pub, KVApp{}, nil); err != nil {
		t.Fatalf("control replay failed: %v", err)
	}
}

// TestEndToEndProperty is the acceptance-criteria scenario: N random
// batches, every receipt verifies; rollback mid-history and divergent
// re-execution keep M, d_C, and receipts consistent; replay of the final
// stream reproduces identical roots and rejects tampering.
func TestEndToEndProperty(t *testing.T) {
	for _, seed := range []int64{1, 2, 3} {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			l := newTestLedger(t, uint64(1+rng.Intn(3)))
			pub := testKey.Public()
			var allReceipts []Receipt

			randomBatch := func(seq uint64) []Request {
				reqs := make([]Request, 1+rng.Intn(4))
				for i := range reqs {
					if rng.Intn(8) == 0 {
						reqs[i] = Request{Governance: true, Author: hashsig.Sum([]byte("m")), Body: []byte{byte(rng.Int())}}
						continue
					}
					ops := make([]Op, 1+rng.Intn(3))
					for j := range ops {
						k := fmt.Sprintf("k%d", rng.Intn(20))
						if rng.Intn(5) == 0 {
							ops[j] = Op{Key: k, Delete: true}
						} else {
							ops[j] = Op{Key: k, Val: []byte{byte(rng.Int())}}
						}
					}
					reqs[i] = Request{Author: hashsig.Sum([]byte{byte(rng.Intn(4))}), ReqNo: seq, Body: EncodeOps(ops)}
				}
				return reqs
			}

			const n = 8
			for seq := uint64(1); seq <= n; seq++ {
				_, receipts, err := l.ExecuteBatch(randomBatch(seq))
				if err != nil {
					t.Fatal(err)
				}
				allReceipts = append(allReceipts, receipts...)
			}
			for i, r := range allReceipts {
				if !r.Verify(pub) {
					t.Fatalf("receipt %d does not verify", i)
				}
			}

			// Roll back to a random mid-history point and diverge.
			back := uint64(2 + rng.Intn(n-2))
			preRollbackRoot := l.HistRoot()
			if err := l.RollbackTo(back); err != nil {
				t.Fatal(err)
			}
			for seq := back; seq <= n; seq++ {
				_, receipts, err := l.ExecuteBatch(randomBatch(seq))
				if err != nil {
					t.Fatal(err)
				}
				for i, r := range receipts {
					if !r.Verify(pub) {
						t.Fatalf("post-rollback receipt %d does not verify", i)
					}
				}
			}
			if l.HistRoot() == preRollbackRoot {
				t.Fatal("divergent history reproduced the rolled-back root")
			}

			// The emitted stream replays to identical roots.
			var buf bytes.Buffer
			if err := WriteBatches(&buf, l.Batches()); err != nil {
				t.Fatal(err)
			}
			decoded, err := ReadBatches(&buf)
			if err != nil {
				t.Fatal(err)
			}
			res, err := Replay(decoded, pub, KVApp{}, nil)
			if err != nil {
				t.Fatal(err)
			}
			if res.HistRoot != l.HistRoot() || res.StateDigest != l.StateDigest() {
				t.Fatal("replay diverged from the primary after rollback")
			}

			// Every header's d_C matches the replayed checkpoint chain, and
			// the batch roots chain into M: check one batch's receipt entry
			// against M via its G path plus header roots.
			if res.CkptDigest != l.Batches()[len(l.Batches())-1].Header.CkptDigest {
				t.Fatal("final checkpoint digest inconsistent")
			}

			// Tampering with any single entry is caught.
			victim := deepCopyBatches(l.Batches())
			bi := rng.Intn(len(victim))
			for len(victim[bi].Entries) == 0 {
				bi = rng.Intn(len(victim))
			}
			ei := rng.Intn(len(victim[bi].Entries))
			victim[bi].Entries[ei].Payload = append(victim[bi].Entries[ei].Payload, 0xEE)
			if _, err := Replay(victim, pub, KVApp{}, nil); err == nil {
				t.Fatal("tampered stream replayed cleanly")
			}
		})
	}
}

func TestNewConfigValidation(t *testing.T) {
	if _, err := New(Config{App: KVApp{}}); err == nil {
		t.Fatal("ledger without key constructed")
	}
	if _, err := New(Config{Key: testKey}); err == nil {
		t.Fatal("ledger without app constructed")
	}
}

func TestKVAppRejectsMalformed(t *testing.T) {
	l := newTestLedger(t, 0)
	// Valid ops followed by garbage: must abort, not half-apply.
	body := append(EncodeOps([]Op{{Key: "k", Val: []byte("v")}}), 0xFF)
	batch, _, err := l.ExecuteBatch([]Request{{Author: hashsig.Sum([]byte("c")), ReqNo: 1, Body: body}})
	if err != nil {
		t.Fatal(err)
	}
	if batch.Entries[0].Result != hashsig.ZeroDigest {
		t.Fatal("malformed request recorded as succeeded")
	}
	if _, ok := l.Get("k"); ok {
		t.Fatal("malformed request half-applied")
	}
}

func TestReceiptChainsToHistory(t *testing.T) {
	// A receipt's entry is also an M leaf: check an entry digest appears in
	// M at the expected position using the history tree's own audit path.
	l := newTestLedger(t, 0)
	if _, _, err := l.ExecuteBatch([]Request{putReq("a", 1, "x", "1")}); err != nil {
		t.Fatal(err)
	}
	batch, receipts, err := l.ExecuteBatch([]Request{putReq("a", 2, "y", "2")})
	if err != nil {
		t.Fatal(err)
	}
	// Batch 2 begins after batch 1's entries (1 tx + 1 checkpoint = 2 leaves).
	first := batch.Header.HistSize - batch.Header.GSize
	// Rebuild the primary's M from the emitted stream and produce a path.
	hist := merkle.New()
	for _, b := range l.Batches() {
		for i := range b.Entries {
			hist.Append(b.Entries[i].Digest())
		}
	}
	path, err := hist.PathAt(first, hist.Size())
	if err != nil {
		t.Fatal(err)
	}
	if !merkle.VerifyPath(receipts[0].Entry.Digest(), first, hist.Size(), path, batch.Header.MRoot) {
		t.Fatal("receipt entry does not chain into the signed history root")
	}
}
