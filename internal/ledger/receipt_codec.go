package ledger

import (
	"fmt"

	"iaccf/internal/hashsig"
	"iaccf/internal/wire"
)

// ErrBadReceipt reports a malformed receipt on decode.
var ErrBadReceipt = fmt.Errorf("ledger: malformed receipt")

// maxReceiptPath bounds the audit path accepted on decode. A sharded path
// is the per-shard tree depth plus the shard roll-up depth; 256 levels
// covers 2^128 leaves per side, far beyond any ledger this code can build,
// while keeping a hostile frame from allocating unbounded digests.
const maxReceiptPath = 256

// EncodeReceipt appends the wire encoding of the receipt to dst: the
// signed header, the entry, the position metadata, and the audit path.
// Receipts cross the client submission RPC, so the encoding is versioned
// by the enclosing transport frame, not here.
func EncodeReceipt(dst []byte, rc *Receipt) []byte {
	w := wire.NewAppendWriter(dst)
	rc.Header.EncodeTo(w)
	w.Bytes(rc.Entry.Encode(nil))
	w.Uint32(rc.Shard)
	w.Uint64(rc.Index)
	w.Uint64(rc.ShardSize)
	w.Uint32(uint32(len(rc.Path)))
	for _, d := range rc.Path {
		w.Digest(d)
	}
	return w.AppendedBytes()
}

// DecodeReceipt parses the encoding produced by EncodeReceipt. The result
// shares no memory with b. Decoding validates shape only; cryptographic
// validity is the caller's Verify call.
func DecodeReceipt(b []byte) (*Receipt, error) {
	r := wire.NewBytesReader(b)
	rc := &Receipt{Header: DecodeHeader(r)}
	eb := r.Bytes(wire.MaxValueLen)
	if r.Err() == nil {
		e, err := DecodeEntry(eb)
		if err != nil {
			r.Fail(err)
		}
		rc.Entry = e
	}
	rc.Shard = r.Uint32()
	rc.Index = r.Uint64()
	rc.ShardSize = r.Uint64()
	n := r.Uint32()
	if n > maxReceiptPath {
		return nil, fmt.Errorf("%w: path length %d exceeds %d", ErrBadReceipt, n, maxReceiptPath)
	}
	if r.Err() == nil && n > 0 {
		rc.Path = make([]hashsig.Digest, 0, n)
		for i := uint32(0); i < n; i++ {
			rc.Path = append(rc.Path, r.Digest())
		}
	}
	r.ExpectEOF()
	if err := r.Err(); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadReceipt, err)
	}
	return rc, nil
}

// EncodeRequest appends the wire encoding of a client request to dst. This
// is the submission-RPC body: what a client signs up to having recorded on
// the ledger as ⟨t,i⟩.
func EncodeRequest(dst []byte, rq *Request) []byte {
	w := wire.NewAppendWriter(dst)
	gov := uint32(0)
	if rq.Governance {
		gov = 1
	}
	w.Uint32(gov)
	w.Digest(rq.Author)
	w.Uint64(rq.ReqNo)
	w.Bytes(rq.Body)
	return w.AppendedBytes()
}

// DecodeRequest parses the encoding produced by EncodeRequest, enforcing
// the ingress body cap MaxRequestLen so an oversized submission is rejected
// at the frame boundary, before it can reach the pool or the ledger. The
// result shares no memory with b. Failures wrap ErrBadRequest.
func DecodeRequest(b []byte) (Request, error) {
	r := wire.NewBytesReader(b)
	var rq Request
	switch gov := r.Uint32(); gov {
	case 0:
	case 1:
		rq.Governance = true
	default:
		return Request{}, fmt.Errorf("%w: governance flag %d", ErrBadRequest, gov)
	}
	rq.Author = r.Digest()
	rq.ReqNo = r.Uint64()
	rq.Body = r.Bytes(MaxRequestLen)
	r.ExpectEOF()
	if err := r.Err(); err != nil {
		return Request{}, fmt.Errorf("%w: %v", ErrBadRequest, err)
	}
	return rq, nil
}

