package ledger

import (
	"fmt"
	"testing"

	"iaccf/internal/hashsig"
)

func benchRequests(batch, txPerBatch int) []Request {
	reqs := make([]Request, txPerBatch)
	for i := range reqs {
		reqs[i] = Request{
			Author: hashsig.Sum([]byte(fmt.Sprintf("client-%d", i%8))),
			ReqNo:  uint64(batch),
			Body: EncodeOps([]Op{
				{Key: fmt.Sprintf("account_%06d", (batch*txPerBatch+i)%1000), Val: []byte("balance")},
			}),
		}
	}
	return reqs
}

// BenchmarkExecuteBatch is the end-to-end hot path: execute a batch of
// transactions through the execution/hashing pipeline, build the per-shard
// trees G_s with receipts, extend M, sign the header. Shard counts 1/4/16
// measure what partitioning costs (and buys) at the batch level; the
// checkpoint interval exercises the incremental d_C path.
func BenchmarkExecuteBatch(b *testing.B) {
	for _, shards := range []uint32{1, 4, 16} {
		for _, txs := range []int{16, 128} {
			b.Run(fmt.Sprintf("shards=%d/txs=%d", shards, txs), func(b *testing.B) {
				l, err := New(Config{Key: testKey, App: KVApp{}, CheckpointEvery: 10, Shards: shards})
				if err != nil {
					b.Fatal(err)
				}
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, _, err := l.ExecuteBatch(benchRequests(i, txs)); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkReplay measures the auditor's throughput with pooled signature
// verification.
func BenchmarkReplay(b *testing.B) {
	const batches = 32
	l, err := New(Config{Key: testKey, App: KVApp{}, CheckpointEvery: 8})
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < batches; i++ {
		if _, _, err := l.ExecuteBatch(benchRequests(i, 16)); err != nil {
			b.Fatal(err)
		}
	}
	stream := l.Batches()
	pub := testKey.Public()
	pool := hashsig.NewVerifierPool(0)
	defer pool.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Replay(stream, pub, KVApp{}, pool); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkReceiptVerify is the client-side cost of checking one receipt.
func BenchmarkReceiptVerify(b *testing.B) {
	l, err := New(Config{Key: testKey, App: KVApp{}})
	if err != nil {
		b.Fatal(err)
	}
	_, receipts, err := l.ExecuteBatch(benchRequests(0, 64))
	if err != nil {
		b.Fatal(err)
	}
	pub := testKey.Public()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !receipts[i%len(receipts)].Verify(pub) {
			b.Fatal("receipt rejected")
		}
	}
}
