package ledger

import (
	"errors"
	"fmt"

	"iaccf/internal/hashsig"
	"iaccf/internal/kv"
)

// ErrApply reports a proposed batch that diverges from this replica's own
// execution: a forged result, a wrong root, a misplaced checkpoint, or a
// sequence/shard mismatch. The ledger is rolled back to the pre-batch
// boundary before the error is returned (Lemma 1), so a backup that rejects
// a pre-prepare keeps exactly the state it had before speculating.
var ErrApply = errors.New("ledger: proposed batch diverges from local execution")

// CheckBatchShape verifies, without executing anything, that the batch's
// entries reproduce the header's combined batch tree: per-shard G_s trees
// over the entry digests, rolled up into ¯G, under the header's declared
// shard count. Consensus uses it to validate relayed batches (view-change
// certificates) whose header signature covers ¯G but whose entries travel
// outside any signature: tampered entries cannot pass.
func CheckBatchShape(b *Batch) error {
	h := &b.Header
	if h.Shards < 1 || h.Shards > kv.MaxShards {
		return fmt.Errorf("%w: batch %d: shard count %d", ErrBadBatch, h.Seq, h.Shards)
	}
	if got := uint64(len(b.Entries)); got != h.GSize {
		return fmt.Errorf("%w: batch %d: %d entries, header claims %d", ErrBadBatch, h.Seq, got, h.GSize)
	}
	digests := make([]hashsig.Digest, len(b.Entries))
	leaves := make([]hashsig.Digest, len(b.Entries))
	hasher := newEntryHasher(digests, leaves, len(b.Entries))
	for ei := range b.Entries {
		hasher.submit(ei, &b.Entries[ei])
	}
	hasher.wait()
	perShard := make([][]hashsig.Digest, h.Shards)
	for ei := range b.Entries {
		s := entryShard(&b.Entries[ei], h.Shards)
		perShard[s] = append(perShard[s], leaves[ei])
	}
	if _, gRoot := buildShardRoots(perShard); gRoot != h.GRoot {
		return fmt.Errorf("%w: batch %d: batch root mismatch", ErrBadBatch, h.Seq)
	}
	return nil
}

// ApplyBatch is the backup half of a pre-prepare: it re-executes a batch
// proposed by another replica against this ledger's own store, checks every
// field the proposer's header commits to — per-entry results, the combined
// batch root ¯G under the declared partition, the history root ¯M, and the
// checkpoint digest d_C — and, if they all reproduce, adopts the batch and
// returns this replica's own signed header over the identical commitments
// (the header a prepare message carries, paper §3.1). On any divergence the
// store, history tree, and checkpoint digest are rolled back to the state
// just before the batch and an ErrApply-wrapped error describes the first
// mismatch.
//
// ApplyBatch checks execution, not provenance: callers (the consensus
// layer) must have verified the proposer's header signature already.
func (l *Ledger) ApplyBatch(b *Batch) (*BatchHeader, error) {
	h := &b.Header
	if h.Seq != l.nextSeq {
		return nil, fmt.Errorf("%w: batch seq %d, replica expects %d", ErrApply, h.Seq, l.nextSeq)
	}
	if h.Shards != l.cfg.Shards {
		return nil, fmt.Errorf("%w: batch built under %d shards, replica runs %d", ErrApply, h.Shards, l.cfg.Shards)
	}
	// Speculative co-signature: the fields this replica will sign on success
	// are the proposer's exact field values (adopting the header means
	// committing to identical roots), so the ECDSA sign — the largest fixed
	// cost of the apply path — starts now and overlaps the entire
	// re-execution. A rejected batch wastes one signature, which is cheap
	// next to the re-execution a rejection already paid for.
	own := BatchHeader{
		Seq:        h.Seq,
		HistSize:   h.HistSize,
		MRoot:      h.MRoot,
		GRoot:      h.GRoot,
		GSize:      h.GSize,
		Shards:     h.Shards,
		CkptDigest: h.CkptDigest,
	}
	sigf := l.cfg.Key.SignAsync(own.SigningDigest())

	seq := l.nextSeq
	l.store.Mark(seq)
	l.marks = append(l.marks, ledgerMark{seq: seq, histSize: l.hist.Size(), lastCkpt: l.lastCkpt})
	reject := func(err error) (*BatchHeader, error) {
		if rb := l.RollbackTo(seq); rb != nil {
			// The mark pushed above cannot have vanished.
			panic(rb)
		}
		return nil, err
	}

	ckptDue := seq%l.cfg.CheckpointEvery == 0
	// Entry digesting overlaps re-execution, mirroring ExecuteBatch's
	// pipeline. Unlike the executor, every entry is final on arrival —
	// re-execution compares results, it never sets them — so all entries are
	// submitted up front and hash while transactions re-run. Digests and
	// leaf hashes land in the ledger's batch-to-batch scratch and are only
	// read after hasher.wait(); the deferred wait releases the workers on
	// every reject path (and before any later call reuses the scratch).
	l.scratch.grow(len(b.Entries), l.cfg.Shards)
	digests, leaves := l.scratch.digests[:len(b.Entries)], l.scratch.leaves[:len(b.Entries)]
	hasher := newEntryHasher(digests, leaves, len(b.Entries))
	defer hasher.wait()
	for ei := range b.Entries {
		hasher.submit(ei, &b.Entries[ei])
	}

	applied := false
	if f, ok := l.parallelExec(len(b.Entries)); ok {
		applied = l.applyEntriesParallel(f, seq, b)
		if !applied {
			// Any anomaly — a result mismatch, a violated footprint, a
			// malformed checkpoint — discards the speculation and re-runs
			// the sequential loop below, which reports the exact error the
			// unparallelized replica would have.
			if err := l.store.RollbackTo(seq); err != nil {
				panic(err)
			}
			l.store.Mark(seq)
		}
	}
	if !applied {
		for ei := range b.Entries {
			e := &b.Entries[ei]
			switch e.Kind {
			case KindTransaction:
				tx := l.store.Begin()
				var got hashsig.Digest
				if err := l.cfg.App.Execute(tx, e.Payload); err != nil {
					tx.Abort()
				} else {
					got = tx.WriteSetDigest()
					tx.Commit()
				}
				if got != e.Result {
					return reject(fmt.Errorf("%w: batch %d entry %d: result digest mismatch", ErrApply, seq, ei))
				}
			case KindGovernance:
				// Recorded, no state effect.
			case KindCheckpoint:
				// A correct proposer appends exactly one checkpoint marker, last,
				// and only when the interval says one is due; anything else would
				// desynchronize lastCkpt across honest replicas even if the digest
				// itself happens to match.
				if !ckptDue || ei != len(b.Entries)-1 {
					return reject(fmt.Errorf("%w: batch %d entry %d: unexpected checkpoint marker", ErrApply, seq, ei))
				}
				if e.Seq != seq {
					return reject(fmt.Errorf("%w: batch %d entry %d: checkpoint labelled %d", ErrApply, seq, ei, e.Seq))
				}
				if got := l.store.CheckpointDigest(); got != e.State {
					return reject(fmt.Errorf("%w: batch %d: checkpoint digest mismatch", ErrApply, seq))
				}
				l.lastCkpt = e.State
			default:
				return reject(fmt.Errorf("%w: batch %d entry %d: unknown kind %d", ErrApply, seq, ei, e.Kind))
			}
		}
		if ckptDue && (len(b.Entries) == 0 || b.Entries[len(b.Entries)-1].Kind != KindCheckpoint) {
			return reject(fmt.Errorf("%w: batch %d: checkpoint marker due but absent", ErrApply, seq))
		}
	}
	hasher.wait()

	// Rebuild the per-shard batch trees G_s under the local partition and
	// combine their roots; the proposer's ¯G must reproduce exactly. The
	// trees consume the pipeline's leaf hashes directly.
	perShard := l.scratch.perShard
	for ei := range b.Entries {
		s := entryShard(&b.Entries[ei], l.cfg.Shards)
		perShard[s] = append(perShard[s], leaves[ei])
	}
	if got := uint64(len(b.Entries)); got != h.GSize {
		return reject(fmt.Errorf("%w: batch %d: %d entries, header claims %d", ErrApply, seq, got, h.GSize))
	}
	if _, gRoot := buildShardRoots(perShard); gRoot != h.GRoot {
		return reject(fmt.Errorf("%w: batch %d: batch root mismatch", ErrApply, seq))
	}
	for _, lh := range leaves {
		l.hist.AppendLeafHash(lh)
	}
	if got := l.hist.Size(); got != h.HistSize {
		return reject(fmt.Errorf("%w: batch %d: history size %d, header claims %d", ErrApply, seq, got, h.HistSize))
	}
	if got := l.hist.Root(); got != h.MRoot {
		return reject(fmt.Errorf("%w: batch %d: history root mismatch", ErrApply, seq))
	}
	if h.CkptDigest != l.lastCkpt {
		return reject(fmt.Errorf("%w: batch %d: checkpoint reference mismatch", ErrApply, seq))
	}

	own.Sig = sigf.MustWait()
	// The retained stream carries this replica's own signature, so replaying
	// Batches() verifies against this replica's key; entries are shared with
	// the caller and treated as immutable, like Batches().
	l.batches = append(l.batches, &Batch{Header: own, Entries: b.Entries})
	l.nextSeq = seq + 1
	if ckptDue {
		l.captureCheckpoint(seq)
	}
	return &own, nil
}
