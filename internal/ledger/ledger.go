// Package ledger implements the IA-CCF replicated ledger: batches of
// client requests executed against the sharded key-value store, committed
// to a history tree M and per-shard batch trees G_s whose roots roll up
// into the signed combined root ¯G, with offline-verifiable receipts and
// periodic checkpoint digests d_C (paper §3, §6). ExecuteBatch is the
// proposer path, ApplyBatch the backup path; both run a conflict-aware
// parallel executor that must stay byte-identical to the sequential core.
//
// # Memory ownership on the commit path
//
// The commit path recycles memory aggressively (see internal/pool), so
// every API boundary follows explicit ownership rules:
//
//   - Everything ExecuteBatch and ApplyBatch RETURN is caller-owned
//     forever: Batch headers, entries, and Receipts never alias pooled
//     scratch, and the ledger never writes to them after returning.
//     Receipts from one call share arena backing with each other (paths
//     in one []Digest arena, payloads in one []byte arena) — safe because
//     the arenas are capped three-index sub-slices that a client append
//     cannot grow into a neighbour — but never with any pool.
//   - Request slices passed IN are read-only during the call and not
//     retained. Entries inside a Batch handed to ApplyBatch are adopted
//     into the retained stream and must not be mutated afterwards, same
//     as Batches() results.
//   - Internal scratch (per-entry digests, leaf hashes, per-shard
//     grouping tables) lives on the Ledger and is reused batch to batch;
//     it is dead the moment the call returns, which the aliasing property
//     tests prove by poisoning pools between batches (pool.SetPoison).
//
// These rules, plus the determinism requirements (no map-order bytes, no
// wall clocks or unseeded randomness), are enforced statically by the
// iaccfvet analyzers — see internal/analysis/README.md.
//
// # Pruning boundary invariant
//
// Prune(before) establishes a pruned boundary baseSeq = before-1: batches
// at or below it are dropped, the history tree is compacted past their
// leaves (only the peak summary survives), and their rollback marks are
// discarded. Everything above the boundary behaves exactly as before —
// BatchAt, RollbackTo, ApplyBatch, re-acks. At or below it, BatchAt
// returns nil and RollbackTo fails with ErrPruned (wrapped, so
// errors.Is(err, ErrPruned) routes a consensus view change into state
// transfer instead of a crash). Callers must maintain: the boundary never
// exceeds the latest checkpoint boundary (CheckpointAt(committed) stays
// non-nil once a checkpoint committed, so the retained checkpoint plus the
// retained batch suffix always reconstruct the present state), and never
// exceeds the consensus commit watermark (uncommitted batches must stay
// rollbackable per Lemma 1). Under the consensus prune policy —
// min(latest committed checkpoint + 1, committed − W + 1) — the retained
// batch count is bounded by max(CheckpointEvery − 1, W) committed batches
// plus at most W speculative ones: steady-state memory is
// O(window + checkpoint interval) regardless of ledger length.
package ledger

import (
	"errors"
	"fmt"
	"io"

	"iaccf/internal/hashsig"
	"iaccf/internal/kv"
	"iaccf/internal/merkle"
	"iaccf/internal/wire"
)

var (
	// ErrConfig reports a Ledger constructed without a key or app.
	ErrConfig = errors.New("ledger: config needs a signing key and an app")
	// ErrUnknownSeq reports a rollback to a batch boundary that was never
	// marked or has been pruned.
	ErrUnknownSeq = errors.New("ledger: unknown batch sequence number")
	// ErrBadBatch reports a malformed batch on decode.
	ErrBadBatch = errors.New("ledger: malformed batch")
	// ErrPruned reports an operation on a batch at or below the pruned
	// checkpoint boundary: the batch and its rollback mark no longer exist.
	// Consensus treats it as the signal to re-sync via state transfer.
	ErrPruned = errors.New("ledger: sequence below the pruned checkpoint boundary")
)

// MaxRequestLen bounds request bodies accepted for execution. It sits far
// enough under wire.MaxValueLen that every encoded entry (payload plus
// fixed header fields) stays within the decoder limits — without an
// ingress cap, a proposer could execute and sign a batch whose entries no
// backup or auditor can decode.
const MaxRequestLen = wire.MaxValueLen - 128

// headerDomain domain-separates batch header signatures from all other
// signed messages.
var headerDomain = []byte("iaccf-batch-header:")

// BatchHeader is the signed commitment a replica issues for one executed
// batch. It binds the batch sequence number, the history tree root ¯M
// after the batch, the combined batch tree root ¯G with its entry count and
// the shard count it was built under, and the digest d_C of the latest
// checkpoint (paper §3.1: the signed part of a pre-prepare; §6: sharded
// execution). ¯G is the root of a small tree over the per-shard batch tree
// roots G_s, so the shard count is part of what the signature commits to —
// the same entries partitioned differently produce a different ¯G and a
// different d_C.
type BatchHeader struct {
	Seq        uint64         // batch sequence number
	HistSize   uint64         // leaves in M after this batch
	MRoot      hashsig.Digest // ¯M
	GRoot      hashsig.Digest // ¯G: root over the G_s shard roots
	GSize      uint64         // total entries under G across all shards
	Shards     uint32         // execution shard count (>= 1)
	CkptDigest hashsig.Digest // d_C of the latest checkpoint (zero before the first)
	Sig        hashsig.Signature
}

// writeSignedFields emits every header field covered by the signature, in
// signing order. It is the single enumeration shared by SigningDigest and
// the batch codec, so the signature preimage and the serialized form can
// never drift apart; readSignedFields is its inverse.
func (h *BatchHeader) writeSignedFields(w *wire.Writer) {
	w.Uint64(h.Seq)
	w.Uint64(h.HistSize)
	w.Digest(h.MRoot)
	w.Digest(h.GRoot)
	w.Uint64(h.GSize)
	w.Uint32(h.Shards)
	w.Digest(h.CkptDigest)
}

func (h *BatchHeader) readSignedFields(r *wire.Reader) {
	h.Seq = r.Uint64()
	h.HistSize = r.Uint64()
	h.MRoot = r.Digest()
	h.GRoot = r.Digest()
	h.GSize = r.Uint64()
	h.Shards = r.Uint32()
	h.CkptDigest = r.Digest()
}

// SigningDigest returns the digest the replica signs: every header field
// except the signature, domain separated. The preimage is assembled in
// pooled scratch through the append-mode writer — this runs twice per batch
// per replica (sign and verify) and must not allocate.
func (h *BatchHeader) SigningDigest() hashsig.Digest {
	b := wire.GetScratch(len(headerDomain) + 128)
	w := wire.NewAppendWriter(append(b, headerDomain...))
	h.writeSignedFields(w)
	b = w.AppendedBytes()
	d := hashsig.Sum(b)
	wire.PutScratch(b)
	return d
}

// Verify reports whether the header carries a valid signature by pub.
func (h *BatchHeader) Verify(pub *hashsig.PublicKey) bool {
	return pub.Verify(h.SigningDigest(), h.Sig)
}

// MaxSigLen bounds signature fields accepted on decode.
const MaxSigLen = 1 << 10

// EncodeTo writes the header — signed fields in signing order, then the
// signature — so consensus messages can frame headers on their own, outside
// a batch stream.
func (h *BatchHeader) EncodeTo(w *wire.Writer) {
	h.writeSignedFields(w)
	w.Bytes(h.Sig)
}

// DecodeHeader reads a header written by EncodeTo. Errors stick to the
// reader; the caller checks r.Err().
func DecodeHeader(r *wire.Reader) BatchHeader {
	var h BatchHeader
	h.readSignedFields(r)
	h.Sig = r.Bytes(MaxSigLen)
	return h
}

// Batch is one executed batch: the signed header plus the entries it
// covers, in ledger order. A sequence of batches is the ledger stream an
// auditor replays.
type Batch struct {
	Header  BatchHeader
	Entries []Entry
}

// Receipt is the client's offline-verifiable proof that its transaction
// executed in a given batch: the transaction entry, its two-stage audit
// path, and the signed header the path roots in (paper §3.1, §6). The path
// prefix proves the entry within its per-shard batch tree G_s; the suffix
// proves that shard root within the combined tree whose root ¯G the header
// signs. The split point is implied by (Index, ShardSize), never declared.
//
// Shard, Index, and ShardSize are position metadata, not signed: what the
// signature plus leaf/interior domain separation bind is that this exact
// entry is committed under ¯G. A replica could emit aliasing position
// metadata whose roll-up shape happens to coincide, but never a different
// entry or a different root, so receipts stay sound as execution proofs.
type Receipt struct {
	Header    BatchHeader
	Entry     Entry
	Shard     uint32 // shard tree the entry was placed in
	Index     uint64 // leaf index of Entry within its shard tree
	ShardSize uint64 // leaves in that shard tree
	Path      []hashsig.Digest
}

// Verify checks the receipt against the replica public key: the header
// signature must be valid and the entry's sharded audit path must root in
// ¯G under the header's signed shard count.
func (r *Receipt) Verify(pub *hashsig.PublicKey) bool {
	if !r.Header.Verify(pub) {
		return false
	}
	return merkle.VerifyShardedPath(r.Entry.Digest(), r.Index, r.ShardSize,
		uint64(r.Shard), uint64(r.Header.Shards), r.Path, r.Header.GRoot)
}

// Request is one client or member submission awaiting execution.
type Request struct {
	// Governance records the request on the ledger without executing it
	// against the store.
	Governance bool
	// Author is the submitting key's ID (client for transactions, member
	// for governance).
	Author hashsig.Digest
	// ReqNo is the client's request number i, making ⟨t,i⟩ unique per
	// client so duplicate submissions are distinguishable on the ledger.
	ReqNo uint64
	// Body is the application payload t (or the governance action).
	Body []byte
}

// Config parameterizes a Ledger.
type Config struct {
	// Key signs batch headers. Required.
	Key *hashsig.PrivateKey
	// App executes transaction payloads. Required.
	App App
	// CheckpointEvery takes a state checkpoint (and appends a checkpoint
	// marker entry) every n batches. 0 means every batch. Validated and
	// normalized once in New.
	CheckpointEvery uint64
	// Shards partitions the key-value store and the per-batch trees into
	// this many shards (paper §6). 0 means 1 (unsharded). Must not exceed
	// kv.MaxShards.
	Shards uint32
}

// Ledger executes batches of requests against a key-value store while
// maintaining the history tree M, emitting signed batch headers and client
// receipts. It is single-writer, like the replica execution loop it models.
type Ledger struct {
	cfg      Config
	store    *kv.ShardedStore
	hist     *merkle.Tree
	nextSeq  uint64
	lastCkpt hashsig.Digest
	marks    []ledgerMark
	// baseSeq is the pruned boundary: batches[0] (if any) has sequence
	// number baseSeq+1. Zero until the first Prune (or the checkpoint seq
	// after NewFromCheckpoint); see the package doc's pruning invariant.
	baseSeq uint64
	batches []*Batch
	// ckpts are the retained checkpoint materializations, ascending by Seq
	// (speculative ones included; rollback discards them). Prune keeps only
	// those at or above the boundary.
	ckpts   []*Checkpoint
	scratch execScratch
}

// execScratch is per-batch working storage handed batch to batch: the
// digest and leaf-hash vectors plus the per-shard grouping tables. Nothing
// stored here may escape ExecuteBatch/ApplyBatch — every value a caller
// retains (entries, headers, receipt paths, payloads) is freshly allocated
// or arena-backed per batch. The Ledger is single-writer, so reuse without
// synchronization is safe; the concurrent entry hasher writes disjoint
// indices and is joined before the slices are read or reused.
type execScratch struct {
	digests  []hashsig.Digest   // entry digests, one per entry
	leaves   []hashsig.Digest   // merkle.LeafHash of each digest
	shardOf  []uint32           // shard assignment per entry
	leafPos  []uint64           // leaf index of each entry within its shard tree
	perShard [][]hashsig.Digest // leaf hashes grouped by shard (inner slices reused)
}

// grow returns the scratch vectors sized for n entries and shards shard
// groups, reusing prior capacity.
func (s *execScratch) grow(n int, shards uint32) {
	s.digests = growSlice(s.digests, n)
	s.leaves = growSlice(s.leaves, n)
	s.shardOf = growSlice(s.shardOf, n)
	s.leafPos = growSlice(s.leafPos, n)
	if cap(s.perShard) < int(shards) {
		s.perShard = make([][]hashsig.Digest, shards)
	}
	s.perShard = s.perShard[:shards]
	for i := range s.perShard {
		s.perShard[i] = s.perShard[i][:0]
	}
}

func growSlice[T any](s []T, n int) []T {
	if cap(s) < n {
		return make([]T, n)
	}
	return s[:n]
}

// ledgerMark pairs a kv mark with the history-tree size and checkpoint
// digest at the same boundary, so RollbackTo restores all three in
// lockstep.
type ledgerMark struct {
	seq      uint64
	histSize uint64
	lastCkpt hashsig.Digest
}

// New returns a ledger executing against a fresh sharded store. The first
// batch has sequence number 1. Configuration is validated here, once:
// CheckpointEvery and Shards are normalized (0 → 1) so the execution path
// never re-checks them, and an out-of-range shard count is an error rather
// than a latent panic.
func New(cfg Config) (*Ledger, error) {
	if cfg.Key == nil || cfg.App == nil {
		return nil, ErrConfig
	}
	if cfg.CheckpointEvery == 0 {
		cfg.CheckpointEvery = 1
	}
	if cfg.Shards == 0 {
		cfg.Shards = 1
	}
	if cfg.Shards > kv.MaxShards {
		return nil, fmt.Errorf("%w: shard count %d exceeds limit %d", ErrConfig, cfg.Shards, kv.MaxShards)
	}
	return &Ledger{
		cfg:     cfg,
		store:   kv.NewSharded(int(cfg.Shards)),
		hist:    merkle.New(),
		nextSeq: 1,
	}, nil
}

// Seq returns the sequence number the next batch will get.
func (l *Ledger) Seq() uint64 { return l.nextSeq }

// HistRoot returns the current history tree root ¯M.
func (l *Ledger) HistRoot() hashsig.Digest { return l.hist.Root() }

// HistSize returns the number of entries in the history tree.
func (l *Ledger) HistSize() uint64 { return l.hist.Size() }

// StateDigest returns the deterministic sharded digest of the current store
// state — the d_C a checkpoint taken now would pin. Clean shards reuse
// cached digests, so this is cheap between checkpoints.
func (l *Ledger) StateDigest() hashsig.Digest { return l.store.CheckpointDigest() }

// Shards returns the execution shard count.
func (l *Ledger) Shards() uint32 { return l.cfg.Shards }

// Get reads a key from the executed state.
func (l *Ledger) Get(key string) ([]byte, bool) { return l.store.Get(key) }

// Batches returns the emitted batch stream since genesis (or the last
// rollback), oldest first, as a fresh slice: appending to or reordering the
// result cannot disturb the ledger's retained history. The batches
// themselves are shared and must be treated as immutable (deep-copying
// every payload on each call would make auditing quadratic).
func (l *Ledger) Batches() []*Batch {
	return append([]*Batch(nil), l.batches...)
}

// BatchAt returns the stored batch for seq, or nil when seq is out of
// range — above the retained stream or at/below the pruned boundary. The
// retained stream is contiguous from baseSeq+1 (rollbacks truncate a
// suffix, Prune drops a prefix), so this is index arithmetic — hot paths
// (consensus re-acks answering from storage) must not pay Batches()'s
// slice copy per lookup. The result is shared and must be treated as
// immutable, like Batches.
func (l *Ledger) BatchAt(seq uint64) *Batch {
	if seq <= l.baseSeq || seq > l.baseSeq+uint64(len(l.batches)) {
		return nil
	}
	return l.batches[seq-l.baseSeq-1]
}

// entryShard deterministically assigns a ledger entry to a per-shard batch
// tree G_s. Transactions and governance actions are routed by author — the
// request-routing analogue of the paper's key-space partitioning, chosen so
// an auditor can re-derive the placement from the entry alone (a write-set
// based placement would be undefined for aborted transactions). Checkpoint
// markers always live in shard 0.
func entryShard(e *Entry, shards uint32) uint32 {
	if shards <= 1 || e.Kind == KindCheckpoint {
		return 0
	}
	return kv.ShardOfKey(string(e.Author[:]), shards)
}

// ExecuteBatch executes the requests as one batch (paper §6). When the
// batch, shard count, CPU count, and app allow it (see exec_parallel.go),
// requests are grouped into conflict-free waves by declared shard
// footprint and executed concurrently, with a sequential re-run as the
// safety net — the emitted entries, header, and receipts are byte-identical
// either way. The sequential core runs each transaction in its own kv
// transaction (aborting individually on error) and overlaps entry
// digesting with execution through a concurrent hashing stage. The digests
// are then grouped into per-shard batch trees G_s (built in parallel
// across a bounded worker pool) whose roots combine into the single ¯G the
// header signs; every entry is appended to M in ledger order, a checkpoint
// marker (with the incremental sharded digest d_C) is appended when due,
// and the signed header plus one receipt per transaction entry are
// returned. The header's ECDSA signature is computed concurrently with
// receipt construction — the last serial hot path on the commit critical
// path.
func (l *Ledger) ExecuteBatch(reqs []Request) (*Batch, []Receipt, error) {
	for i := range reqs {
		if len(reqs[i].Body) > MaxRequestLen {
			return nil, nil, fmt.Errorf("%w: request %d body %d bytes exceeds %d",
				ErrBadBatch, i, len(reqs[i].Body), MaxRequestLen)
		}
	}
	seq := l.nextSeq
	l.store.Mark(seq)
	l.marks = append(l.marks, ledgerMark{seq: seq, histSize: l.hist.Size(), lastCkpt: l.lastCkpt})

	// If anything below panics (a buggy App retaining a finished Tx, say),
	// the execution cores release their hashing and wave workers on the way
	// out; the mark pushed above stays, so a caller that recovers can
	// RollbackTo(seq) to discard the half-executed batch.
	maxEntries := len(reqs) + 1 // every request plus at most one checkpoint marker
	l.scratch.grow(maxEntries, l.cfg.Shards)
	digests, leaves := l.scratch.digests, l.scratch.leaves
	var entries []Entry
	var txIdx []int
	executed := false
	if f, ok := l.parallelExec(len(reqs)); ok {
		entries = make([]Entry, len(reqs), maxEntries)
		txIdx, executed = l.runParallel(f, seq, reqs, entries, digests, leaves)
	}
	if !executed {
		entries = make([]Entry, 0, maxEntries)
		entries, txIdx = l.runSequential(reqs, entries, digests, leaves)
	}

	if seq%l.cfg.CheckpointEvery == 0 {
		// Incremental d_C: only shards touched since the last checkpoint are
		// re-hashed (the refactor's perf win over the old full rescan).
		d := l.store.CheckpointDigest()
		entries = append(entries, Entry{Kind: KindCheckpoint, Seq: seq, State: d})
		digests[len(entries)-1] = entries[len(entries)-1].Digest()
		leaves[len(entries)-1] = merkle.LeafHash(digests[len(entries)-1])
		l.lastCkpt = d
	}

	// Group the pre-computed leaf hashes by shard: both G_s and M consume
	// them directly, so the roll-up below does no per-entry SHA work beyond
	// the interior nodes.
	shards := l.cfg.Shards
	shardOf := l.scratch.shardOf[:len(entries)]
	leafPos := l.scratch.leafPos[:len(entries)]
	perShard := l.scratch.perShard
	for i := range entries {
		s := entryShard(&entries[i], shards)
		shardOf[i] = s
		leafPos[i] = uint64(len(perShard[s]))
		perShard[s] = append(perShard[s], leaves[i])
	}
	shardRoots := make([]hashsig.Digest, shards)
	shardPaths := make([][][]hashsig.Digest, shards)
	forEachShard(int(shards), len(entries), func(s int) {
		g := merkle.New()
		_, root, paths, err := g.AppendAndProveLeafHashes(perShard[s])
		if err != nil {
			// A fresh tree over in-range leaves cannot fail.
			panic(err)
		}
		shardRoots[s] = root
		shardPaths[s] = paths
	})
	top := merkle.New()
	_, gRoot, topPaths, err := top.AppendAndProve(shardRoots)
	if err != nil {
		panic(err)
	}
	for _, lh := range leaves[:len(entries)] {
		l.hist.AppendLeafHash(lh)
	}

	header := BatchHeader{
		Seq:        seq,
		HistSize:   l.hist.Size(),
		MRoot:      l.hist.Root(),
		GRoot:      gRoot,
		GSize:      uint64(len(entries)),
		Shards:     shards,
		CkptDigest: l.lastCkpt,
	}
	// The ECDSA sign runs concurrently with receipt construction below; the
	// signature is patched into the batch and every receipt once both are
	// done. Nothing observes the header before this function returns.
	sigf := l.cfg.Key.SignAsync(header.SigningDigest())

	batch := &Batch{Header: header, Entries: entries}
	receipts := make([]Receipt, len(txIdx))
	// Two arenas back every receipt in the batch: one for the combined
	// shard+top audit paths, one for the defensive payload copies (a client
	// mutating its receipt must not corrupt the ledger's retained stream).
	// Each receipt gets a three-index sub-slice whose capacity ends at its
	// own region, so appending to one receipt's path or payload reallocates
	// instead of stomping the next receipt's. The per-shard top path is
	// copied from the single slice the top tree produced — same-shard
	// receipts no longer each build their own intermediate path slice.
	pathTotal, payloadTotal := 0, 0
	for _, idx := range txIdx {
		s := shardOf[idx]
		pathTotal += len(shardPaths[s][leafPos[idx]]) + len(topPaths[s])
		payloadTotal += len(entries[idx].Payload)
	}
	pathArena := make([]hashsig.Digest, 0, pathTotal)
	payloadArena := make([]byte, 0, payloadTotal)
	for i, idx := range txIdx {
		e := entries[idx]
		pStart := len(payloadArena)
		payloadArena = append(payloadArena, e.Payload...)
		e.Payload = payloadArena[pStart:len(payloadArena):len(payloadArena)]
		s := shardOf[idx]
		aStart := len(pathArena)
		pathArena = append(pathArena, shardPaths[s][leafPos[idx]]...)
		pathArena = append(pathArena, topPaths[s]...)
		receipts[i] = Receipt{
			Header:    header,
			Entry:     e,
			Shard:     s,
			Index:     leafPos[idx],
			ShardSize: uint64(len(perShard[s])),
			Path:      pathArena[aStart:len(pathArena):len(pathArena)],
		}
	}
	sig := sigf.MustWait()
	batch.Header.Sig = sig
	for i := range receipts {
		receipts[i].Header.Sig = sig
	}
	l.batches = append(l.batches, batch)
	l.nextSeq = seq + 1
	if seq%l.cfg.CheckpointEvery == 0 {
		l.captureCheckpoint(seq)
	}
	return batch, receipts, nil
}

// runSequential is the reference execution core: one kv transaction per
// request, strictly in batch order, with entry digesting pipelined through
// hasher. It is both the single-core fast path and the fallback that
// re-executes a batch whose speculative parallel run was abandoned; its
// behaviour defines what the parallel core must reproduce byte-for-byte.
func (l *Ledger) runSequential(reqs []Request, entries []Entry, digests, leaves []hashsig.Digest) ([]Entry, []int) {
	// Stage 2 (hashing) consumes completed entries concurrently with stage 1
	// (execution). Entry digesting hashes full payloads — for large batches
	// this is comparable to execution itself, and the two overlap here. The
	// deferred wait releases the workers even if the App panics.
	hasher := newEntryHasher(digests, leaves, cap(entries))
	defer hasher.wait()
	emit := func() {
		i := len(entries) - 1
		hasher.submit(i, &entries[i])
	}

	txIdx := make([]int, 0, len(reqs))
	for _, req := range reqs {
		if req.Governance {
			entries = append(entries, Entry{
				Kind:    KindGovernance,
				Author:  req.Author,
				Payload: append([]byte(nil), req.Body...),
			})
			emit()
			continue
		}
		e := Entry{
			Kind:    KindTransaction,
			Author:  req.Author,
			ReqNo:   req.ReqNo,
			Payload: append([]byte(nil), req.Body...),
		}
		tx := l.store.Begin()
		if err := l.cfg.App.Execute(tx, req.Body); err != nil {
			// Failed transactions are still recorded, with a zero result:
			// the ledger holds clients accountable for what they submitted,
			// not only for what succeeded.
			tx.Abort()
		} else {
			e.Result = tx.WriteSetDigest()
			tx.Commit()
		}
		txIdx = append(txIdx, len(entries))
		entries = append(entries, e)
		emit()
	}
	hasher.wait()
	return entries, txIdx
}

// RollbackTo undoes batch seq and everything after it, restoring the store,
// the history tree, and the checkpoint digest to the state just before
// batch seq executed (Lemma 1). The next executed batch reuses sequence
// number seq. A rollback at or below the pruned boundary fails with a
// wrapped ErrPruned: the batches and marks below a pruned checkpoint no
// longer exist, so the caller must re-sync via state transfer instead.
func (l *Ledger) RollbackTo(seq uint64) error {
	if seq <= l.baseSeq {
		return fmt.Errorf("%w: rollback to %d, boundary %d", ErrPruned, seq, l.baseSeq)
	}
	i := len(l.marks) - 1
	for ; i >= 0; i-- {
		if l.marks[i].seq == seq {
			break
		}
	}
	if i < 0 {
		return fmt.Errorf("%w: %d", ErrUnknownSeq, seq)
	}
	if err := l.store.RollbackTo(seq); err != nil {
		return err
	}
	m := l.marks[i]
	if err := l.hist.Rollback(m.histSize); err != nil {
		// The history tree is only compacted past pruned marks, so a
		// marked boundary is always within the retained region.
		panic(err)
	}
	l.lastCkpt = m.lastCkpt
	l.marks = l.marks[:i]
	for len(l.batches) > 0 && l.batches[len(l.batches)-1].Header.Seq >= seq {
		l.batches = l.batches[:len(l.batches)-1]
	}
	// Checkpoint materializations taken at or beyond the rollback point
	// describe undone state.
	for len(l.ckpts) > 0 && l.ckpts[len(l.ckpts)-1].Seq >= seq {
		l.ckpts = l.ckpts[:len(l.ckpts)-1]
	}
	l.nextSeq = seq
	return nil
}

// PruneMarks drops rollback marks with seq < before; batches that have
// committed globally no longer need to be undoable.
func (l *Ledger) PruneMarks(before uint64) {
	l.store.PruneMarks(before)
	keep := l.marks[:0]
	for _, m := range l.marks {
		if m.seq >= before {
			keep = append(keep, m)
		}
	}
	l.marks = keep
}

// WriteBatches serializes a batch stream: the versioned stream header
// (carrying the execution shard count), then the batch count, then each
// batch's header and entries in the wire codec. Every batch must have been
// built under the same shard count — a mixed stream is a caller bug and is
// rejected rather than silently framed under the first batch's count.
func WriteBatches(w io.Writer, batches []*Batch) error {
	shards := uint32(1)
	for i, b := range batches {
		if i == 0 {
			shards = b.Header.Shards
		} else if b.Header.Shards != shards {
			return fmt.Errorf("%w: batch %d built under %d shards, stream under %d",
				ErrBadBatch, b.Header.Seq, b.Header.Shards, shards)
		}
	}
	ww := wire.NewWriter(w)
	sh := wire.StreamHeader{Version: wire.StreamVCurrent, Shards: shards}
	sh.EncodeTo(ww)
	ww.Uint32(uint32(len(batches)))
	for _, b := range batches {
		b.EncodeTo(ww)
	}
	return ww.Flush()
}

// MaxBatchEntries bounds the entry count accepted when decoding a single
// batch (stream framing and consensus pre-prepares alike).
const MaxBatchEntries = 1 << 20

// EncodeTo writes one batch — header fields, signature, then entries — in
// the deterministic wire codec. It is the framing unit shared by the batch
// stream (WriteBatches) and consensus pre-prepare messages.
func (b *Batch) EncodeTo(w *wire.Writer) {
	b.Header.EncodeTo(w)
	w.Uint32(uint32(len(b.Entries)))
	for i := range b.Entries {
		b.Entries[i].encodeTo(w)
	}
}

// DecodeBatch reads one batch written by EncodeTo. Errors stick to the
// reader; the caller checks r.Err(). Malformed input never panics: entry
// counts are bounded before allocation and every entry decode is validated.
func DecodeBatch(r *wire.Reader) *Batch {
	b := &Batch{}
	b.Header = DecodeHeader(r)
	ne := r.Uint32()
	if r.Err() == nil && ne > MaxBatchEntries {
		r.Fail(fmt.Errorf("%w: %d entries", ErrBadBatch, ne))
		return b
	}
	// Preallocation hints are capped: counts are attacker-controlled, and a
	// tiny hostile stream must not drive a huge allocation before the first
	// decode error surfaces.
	b.Entries = make([]Entry, 0, min(ne, 1024))
	for j := uint32(0); j < ne && r.Err() == nil; j++ {
		b.Entries = append(b.Entries, decodeEntry(r))
	}
	return b
}

// ReadBatches parses a stream produced by WriteBatches, checking that every
// batch header agrees with the stream header's shard count.
func ReadBatches(r io.Reader) ([]*Batch, error) {
	rr := wire.NewReader(r)
	sh, err := wire.DecodeStreamHeader(rr)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadBatch, err)
	}
	n := rr.Uint32()
	const maxBatches = 1 << 24
	if rr.Err() == nil && n > maxBatches {
		return nil, fmt.Errorf("%w: %d batches", ErrBadBatch, n)
	}
	batches := make([]*Batch, 0, min(n, 1024))
	for i := uint32(0); i < n && rr.Err() == nil; i++ {
		b := DecodeBatch(rr)
		if rr.Err() == nil && b.Header.Shards != sh.Shards {
			return nil, fmt.Errorf("%w: batch %d declares %d shards, stream header %d",
				ErrBadBatch, b.Header.Seq, b.Header.Shards, sh.Shards)
		}
		batches = append(batches, b)
	}
	rr.ExpectEOF()
	if err := rr.Err(); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadBatch, err)
	}
	return batches, nil
}
