package ledger

import (
	"bytes"
	"errors"
	"fmt"
	"io"

	"iaccf/internal/hashsig"
	"iaccf/internal/kv"
	"iaccf/internal/merkle"
	"iaccf/internal/wire"
)

var (
	// ErrConfig reports a Ledger constructed without a key or app.
	ErrConfig = errors.New("ledger: config needs a signing key and an app")
	// ErrUnknownSeq reports a rollback to a batch boundary that was never
	// marked or has been pruned.
	ErrUnknownSeq = errors.New("ledger: unknown batch sequence number")
	// ErrBadBatch reports a malformed batch on decode.
	ErrBadBatch = errors.New("ledger: malformed batch")
)

// headerDomain domain-separates batch header signatures from all other
// signed messages.
var headerDomain = []byte("iaccf-batch-header:")

// BatchHeader is the signed commitment a replica issues for one executed
// batch. It binds the batch sequence number, the history tree root ¯M
// after the batch, the per-batch tree root ¯G and its leaf count, and the
// digest d_C of the latest checkpoint (paper §3.1: the signed part of a
// pre-prepare).
type BatchHeader struct {
	Seq        uint64         // batch sequence number
	HistSize   uint64         // leaves in M after this batch
	MRoot      hashsig.Digest // ¯M
	GRoot      hashsig.Digest // ¯G
	GSize      uint64         // entries under G (audit path width)
	CkptDigest hashsig.Digest // d_C of the latest checkpoint (zero before the first)
	Sig        hashsig.Signature
}

// writeSignedFields emits every header field covered by the signature, in
// signing order. It is the single enumeration shared by SigningDigest and
// the batch codec, so the signature preimage and the serialized form can
// never drift apart; readSignedFields is its inverse.
func (h *BatchHeader) writeSignedFields(w *wire.Writer) {
	w.Uint64(h.Seq)
	w.Uint64(h.HistSize)
	w.Digest(h.MRoot)
	w.Digest(h.GRoot)
	w.Uint64(h.GSize)
	w.Digest(h.CkptDigest)
}

func (h *BatchHeader) readSignedFields(r *wire.Reader) {
	h.Seq = r.Uint64()
	h.HistSize = r.Uint64()
	h.MRoot = r.Digest()
	h.GRoot = r.Digest()
	h.GSize = r.Uint64()
	h.CkptDigest = r.Digest()
}

// SigningDigest returns the digest the replica signs: every header field
// except the signature, domain separated.
func (h *BatchHeader) SigningDigest() hashsig.Digest {
	var buf bytes.Buffer
	w := wire.NewWriter(&buf)
	h.writeSignedFields(w)
	if err := w.Flush(); err != nil {
		// Writing to a bytes.Buffer never fails.
		panic(err)
	}
	return hashsig.SumMany(headerDomain, buf.Bytes())
}

// Verify reports whether the header carries a valid signature by pub.
func (h *BatchHeader) Verify(pub *hashsig.PublicKey) bool {
	return pub.Verify(h.SigningDigest(), h.Sig)
}

// Batch is one executed batch: the signed header plus the entries it
// covers, in ledger order. A sequence of batches is the ledger stream an
// auditor replays.
type Batch struct {
	Header  BatchHeader
	Entries []Entry
}

// Receipt is the client's offline-verifiable proof that its transaction
// executed in a given batch: the transaction entry, its audit path in the
// batch tree G, and the signed header the path roots in (paper §3.1).
type Receipt struct {
	Header BatchHeader
	Entry  Entry
	Index  uint64 // leaf index of Entry in G
	Path   []hashsig.Digest
}

// Verify checks the receipt against the replica public key: the header
// signature must be valid and the entry's audit path must root in ¯G.
func (r *Receipt) Verify(pub *hashsig.PublicKey) bool {
	if !r.Header.Verify(pub) {
		return false
	}
	return merkle.VerifyPath(r.Entry.Digest(), r.Index, r.Header.GSize, r.Path, r.Header.GRoot)
}

// Request is one client or member submission awaiting execution.
type Request struct {
	// Governance records the request on the ledger without executing it
	// against the store.
	Governance bool
	// Author is the submitting key's ID (client for transactions, member
	// for governance).
	Author hashsig.Digest
	// ReqNo is the client's request number i, making ⟨t,i⟩ unique per
	// client so duplicate submissions are distinguishable on the ledger.
	ReqNo uint64
	// Body is the application payload t (or the governance action).
	Body []byte
}

// Config parameterizes a Ledger.
type Config struct {
	// Key signs batch headers. Required.
	Key *hashsig.PrivateKey
	// App executes transaction payloads. Required.
	App App
	// CheckpointEvery takes a state checkpoint (and appends a checkpoint
	// marker entry) every n batches. 0 means every batch.
	CheckpointEvery uint64
}

// Ledger executes batches of requests against a key-value store while
// maintaining the history tree M, emitting signed batch headers and client
// receipts. It is single-writer, like the replica execution loop it models.
type Ledger struct {
	cfg      Config
	store    *kv.Store
	hist     *merkle.Tree
	nextSeq  uint64
	lastCkpt hashsig.Digest
	marks    []ledgerMark
	batches  []*Batch
}

// ledgerMark pairs a kv mark with the history-tree size and checkpoint
// digest at the same boundary, so RollbackTo restores all three in
// lockstep.
type ledgerMark struct {
	seq      uint64
	histSize uint64
	lastCkpt hashsig.Digest
}

// New returns a ledger executing against a fresh store. The first batch
// has sequence number 1.
func New(cfg Config) (*Ledger, error) {
	if cfg.Key == nil || cfg.App == nil {
		return nil, ErrConfig
	}
	return &Ledger{
		cfg:     cfg,
		store:   kv.NewStore(),
		hist:    merkle.New(),
		nextSeq: 1,
	}, nil
}

// Seq returns the sequence number the next batch will get.
func (l *Ledger) Seq() uint64 { return l.nextSeq }

// HistRoot returns the current history tree root ¯M.
func (l *Ledger) HistRoot() hashsig.Digest { return l.hist.Root() }

// HistSize returns the number of entries in the history tree.
func (l *Ledger) HistSize() uint64 { return l.hist.Size() }

// StateDigest returns the deterministic digest of the current store state.
func (l *Ledger) StateDigest() hashsig.Digest { return l.store.Digest() }

// Get reads a key from the executed state.
func (l *Ledger) Get(key string) ([]byte, bool) { return l.store.Get(key) }

// Batches returns the emitted batch stream since genesis (or the last
// rollback), oldest first. The slice is shared; callers must not mutate.
func (l *Ledger) Batches() []*Batch { return l.batches }

// ExecuteBatch executes the requests as one batch: each transaction runs
// in its own kv transaction (aborting individually on error), every
// resulting entry is appended to M and to a fresh batch tree G, a
// checkpoint marker is appended when due, and the signed header plus one
// receipt per transaction entry are returned.
func (l *Ledger) ExecuteBatch(reqs []Request) (*Batch, []Receipt, error) {
	seq := l.nextSeq
	l.store.Mark(seq)
	l.marks = append(l.marks, ledgerMark{seq: seq, histSize: l.hist.Size(), lastCkpt: l.lastCkpt})

	entries := make([]Entry, 0, len(reqs)+1)
	txIdx := make([]int, 0, len(reqs))
	for _, req := range reqs {
		if req.Governance {
			entries = append(entries, Entry{
				Kind:    KindGovernance,
				Author:  req.Author,
				Payload: append([]byte(nil), req.Body...),
			})
			continue
		}
		e := Entry{
			Kind:    KindTransaction,
			Author:  req.Author,
			ReqNo:   req.ReqNo,
			Payload: append([]byte(nil), req.Body...),
		}
		tx := l.store.Begin()
		if err := l.cfg.App.Execute(tx, req.Body); err != nil {
			// Failed transactions are still recorded, with a zero result:
			// the ledger holds clients accountable for what they submitted,
			// not only for what succeeded.
			tx.Abort()
		} else {
			e.Result = tx.WriteSetDigest()
			tx.Commit()
		}
		txIdx = append(txIdx, len(entries))
		entries = append(entries, e)
	}

	every := l.cfg.CheckpointEvery
	if every == 0 {
		every = 1
	}
	if seq%every == 0 {
		d := l.store.Digest()
		entries = append(entries, Entry{Kind: KindCheckpoint, Seq: seq, State: d})
		l.lastCkpt = d
	}

	digests := make([]hashsig.Digest, len(entries))
	for i := range entries {
		digests[i] = entries[i].Digest()
	}
	g := merkle.New()
	_, gRoot, paths, err := g.AppendAndProve(digests)
	if err != nil {
		// A fresh tree over in-range leaves cannot fail.
		panic(err)
	}
	for _, d := range digests {
		l.hist.Append(d)
	}

	header := BatchHeader{
		Seq:        seq,
		HistSize:   l.hist.Size(),
		MRoot:      l.hist.Root(),
		GRoot:      gRoot,
		GSize:      uint64(len(entries)),
		CkptDigest: l.lastCkpt,
	}
	header.Sig = l.cfg.Key.MustSign(header.SigningDigest())

	batch := &Batch{Header: header, Entries: entries}
	receipts := make([]Receipt, len(txIdx))
	for i, idx := range txIdx {
		e := entries[idx]
		// The payload slice is otherwise shared with the retained batch: a
		// client mutating its receipt must not corrupt the ledger's stream.
		e.Payload = append([]byte(nil), e.Payload...)
		receipts[i] = Receipt{
			Header: header,
			Entry:  e,
			Index:  uint64(idx),
			Path:   paths[idx],
		}
	}
	l.batches = append(l.batches, batch)
	l.nextSeq = seq + 1
	return batch, receipts, nil
}

// RollbackTo undoes batch seq and everything after it, restoring the store,
// the history tree, and the checkpoint digest to the state just before
// batch seq executed (Lemma 1). The next executed batch reuses sequence
// number seq.
func (l *Ledger) RollbackTo(seq uint64) error {
	i := len(l.marks) - 1
	for ; i >= 0; i-- {
		if l.marks[i].seq == seq {
			break
		}
	}
	if i < 0 {
		return fmt.Errorf("%w: %d", ErrUnknownSeq, seq)
	}
	if err := l.store.RollbackTo(seq); err != nil {
		return err
	}
	m := l.marks[i]
	if err := l.hist.Rollback(m.histSize); err != nil {
		// The history tree is only compacted past pruned marks, so a
		// marked boundary is always within the retained region.
		panic(err)
	}
	l.lastCkpt = m.lastCkpt
	l.marks = l.marks[:i]
	for len(l.batches) > 0 && l.batches[len(l.batches)-1].Header.Seq >= seq {
		l.batches = l.batches[:len(l.batches)-1]
	}
	l.nextSeq = seq
	return nil
}

// PruneMarks drops rollback marks with seq < before; batches that have
// committed globally no longer need to be undoable.
func (l *Ledger) PruneMarks(before uint64) {
	l.store.PruneMarks(before)
	keep := l.marks[:0]
	for _, m := range l.marks {
		if m.seq >= before {
			keep = append(keep, m)
		}
	}
	l.marks = keep
}

// WriteBatches serializes a batch stream: count, then each batch's header
// and entries in the wire codec.
func WriteBatches(w io.Writer, batches []*Batch) error {
	ww := wire.NewWriter(w)
	ww.Uint32(uint32(len(batches)))
	for _, b := range batches {
		b.Header.writeSignedFields(ww)
		ww.Bytes(b.Header.Sig)
		ww.Uint32(uint32(len(b.Entries)))
		for i := range b.Entries {
			b.Entries[i].encodeTo(ww)
		}
	}
	return ww.Flush()
}

// ReadBatches parses a stream produced by WriteBatches.
func ReadBatches(r io.Reader) ([]*Batch, error) {
	rr := wire.NewReader(r)
	n := rr.Uint32()
	const maxBatches = 1 << 24
	if rr.Err() == nil && n > maxBatches {
		return nil, fmt.Errorf("%w: %d batches", ErrBadBatch, n)
	}
	// Preallocation hints are capped: counts are attacker-controlled, and a
	// tiny hostile stream must not drive a huge allocation before the first
	// decode error surfaces.
	batches := make([]*Batch, 0, min(n, 1024))
	for i := uint32(0); i < n && rr.Err() == nil; i++ {
		b := &Batch{}
		b.Header.readSignedFields(rr)
		b.Header.Sig = rr.Bytes(1 << 10)
		ne := rr.Uint32()
		const maxEntries = 1 << 20
		if rr.Err() == nil && ne > maxEntries {
			return nil, fmt.Errorf("%w: %d entries", ErrBadBatch, ne)
		}
		b.Entries = make([]Entry, 0, min(ne, 1024))
		for j := uint32(0); j < ne && rr.Err() == nil; j++ {
			b.Entries = append(b.Entries, decodeEntry(rr))
		}
		batches = append(batches, b)
	}
	rr.ExpectEOF()
	if err := rr.Err(); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadBatch, err)
	}
	return batches, nil
}
