package ledger

import (
	"bytes"
	"fmt"
	"math/rand"
	"runtime"
	"testing"
	"time"

	"iaccf/internal/hashsig"
	"iaccf/internal/kv"
	"iaccf/internal/wire"
)

func newShardedLedger(t testing.TB, ckptEvery uint64, shards uint32) *Ledger {
	t.Helper()
	l, err := New(Config{Key: testKey, App: KVApp{}, CheckpointEvery: ckptEvery, Shards: shards})
	if err != nil {
		t.Fatal(err)
	}
	return l
}

func TestShardedReceiptsVerify(t *testing.T) {
	for _, shards := range []uint32{1, 4, 16} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			l := newShardedLedger(t, 2, shards)
			pub := testKey.Public()
			for seq := uint64(1); seq <= 5; seq++ {
				reqs := []Request{
					putReq("alice", seq, fmt.Sprintf("a%d", seq), "1"),
					putReq("bob", seq, fmt.Sprintf("b%d", seq), "2"),
					putReq("carol", seq, "shared", fmt.Sprintf("s%d", seq)),
					{Governance: true, Author: hashsig.Sum([]byte("m")), Body: []byte("act")},
				}
				batch, receipts, err := l.ExecuteBatch(reqs)
				if err != nil {
					t.Fatal(err)
				}
				if batch.Header.Shards != shards {
					t.Fatalf("header shard count %d, want %d", batch.Header.Shards, shards)
				}
				if len(receipts) != 3 {
					t.Fatalf("%d receipts for 3 transactions", len(receipts))
				}
				for i, r := range receipts {
					if !r.Verify(pub) {
						t.Fatalf("seq %d receipt %d does not verify", seq, i)
					}
					if r.Shard >= shards {
						t.Fatalf("receipt shard %d out of range %d", r.Shard, shards)
					}
					if want := entryShard(&r.Entry, shards); r.Shard != want {
						t.Fatalf("receipt shard %d, deterministic placement says %d", r.Shard, want)
					}
				}
			}
			if v, ok := l.Get("shared"); !ok || string(v) != "s5" {
				t.Fatalf("executed state wrong: %q %v", v, ok)
			}
			if _, err := Replay(l.Batches(), testKey.Public(), KVApp{}, nil); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestShardedReceiptRejectsCrossShardReinterpretation(t *testing.T) {
	l := newShardedLedger(t, 0, 8)
	pub := testKey.Public()
	_, receipts, err := l.ExecuteBatch([]Request{
		putReq("alice", 1, "k1", "v1"),
		putReq("bob", 1, "k2", "v2"),
		putReq("carol", 1, "k3", "v3"),
	})
	if err != nil {
		t.Fatal(err)
	}
	r := receipts[0]
	tampered := r
	tampered.Shard = (r.Shard + 1) % 8
	if tampered.Verify(pub) {
		t.Fatal("receipt relocated to another shard verifies")
	}
	tampered = r
	tampered.Entry.Payload = EncodeOps([]Op{{Key: "k1", Val: []byte("evil")}})
	if tampered.Verify(pub) {
		t.Fatal("tampered payload verifies under sharding")
	}
	tampered = r
	tampered.Header.GRoot = hashsig.Sum([]byte("forged"))
	if tampered.Verify(pub) {
		t.Fatal("forged combined root verifies")
	}
	if !r.Verify(pub) {
		t.Fatal("untampered sharded receipt stopped verifying")
	}
}

// The sharded end-to-end guarantee: under every shard count, replay
// reproduces the primary's roots, and tampering with any entry, result, or
// header — including the shard count itself — is rejected.
func TestShardedReplayRejectsTampering(t *testing.T) {
	for _, shards := range []uint32{4, 16} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			l := newShardedLedger(t, 2, shards)
			for seq := uint64(1); seq <= 4; seq++ {
				if _, _, err := l.ExecuteBatch([]Request{
					putReq("alice", seq, fmt.Sprintf("a%d", seq), "x"),
					putReq("bob", seq, fmt.Sprintf("b%d", seq), "y"),
				}); err != nil {
					t.Fatal(err)
				}
			}
			pub := testKey.Public()

			res, err := Replay(l.Batches(), pub, KVApp{}, nil)
			if err != nil {
				t.Fatal(err)
			}
			if res.Shards != shards {
				t.Fatalf("replay saw %d shards, want %d", res.Shards, shards)
			}
			if res.HistRoot != l.HistRoot() || res.StateDigest != l.StateDigest() {
				t.Fatal("sharded replay diverged from primary")
			}

			// Tampered payload.
			tampered := deepCopyBatches(l.Batches())
			tampered[1].Entries[0].Payload = append(tampered[1].Entries[0].Payload, 0xEE)
			if _, err := Replay(tampered, pub, KVApp{}, nil); err == nil {
				t.Fatal("tampered payload replayed cleanly under sharding")
			}

			// Forged result.
			tampered = deepCopyBatches(l.Batches())
			tampered[2].Entries[0].Result = hashsig.Sum([]byte("forged"))
			if _, err := Replay(tampered, pub, KVApp{}, nil); err == nil {
				t.Fatal("forged result replayed cleanly under sharding")
			}

			// A replica lying about its shard count, with re-signed headers:
			// the combined ¯G and the checkpoint digests were both built
			// under the true partition, so replay under the claimed one
			// diverges.
			tampered = deepCopyBatches(l.Batches())
			for _, b := range tampered {
				b.Header.Shards = shards + 1
				b.Header.Sig = testKey.MustSign(b.Header.SigningDigest())
			}
			if _, err := Replay(tampered, pub, KVApp{}, nil); err == nil {
				t.Fatal("re-signed shard-count lie replayed cleanly")
			}

			// Inconsistent shard counts mid-stream.
			tampered = deepCopyBatches(l.Batches())
			tampered[3].Header.Shards = shards + 1
			tampered[3].Header.Sig = testKey.MustSign(tampered[3].Header.SigningDigest())
			if _, err := Replay(tampered, pub, KVApp{}, nil); err == nil {
				t.Fatal("mixed shard counts replayed cleanly")
			}

			// Control.
			if _, err := Replay(l.Batches(), pub, KVApp{}, nil); err != nil {
				t.Fatalf("control replay failed: %v", err)
			}
		})
	}
}

func TestShardedBatchStreamRoundTrip(t *testing.T) {
	l := newShardedLedger(t, 2, 8)
	for seq := uint64(1); seq <= 4; seq++ {
		if _, _, err := l.ExecuteBatch([]Request{
			putReq("alice", seq, fmt.Sprintf("k%d", seq), "v"),
			{Governance: true, Author: hashsig.Sum([]byte("m")), Body: []byte("act")},
		}); err != nil {
			t.Fatal(err)
		}
	}
	var buf bytes.Buffer
	if err := WriteBatches(&buf, l.Batches()); err != nil {
		t.Fatal(err)
	}
	decoded, err := ReadBatches(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(decoded) != 4 || decoded[0].Header.Shards != 8 {
		t.Fatalf("decoded %d batches, shards %d", len(decoded), decoded[0].Header.Shards)
	}
	if _, err := Replay(decoded, testKey.Public(), KVApp{}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestWriteBatchesRejectsMixedShardCounts(t *testing.T) {
	a := newShardedLedger(t, 0, 2)
	b := newShardedLedger(t, 0, 4)
	if _, _, err := a.ExecuteBatch([]Request{putReq("c", 1, "k", "v")}); err != nil {
		t.Fatal(err)
	}
	if _, _, err := b.ExecuteBatch([]Request{putReq("c", 1, "k", "v")}); err != nil {
		t.Fatal(err)
	}
	mixed := append(a.Batches(), b.Batches()...)
	if err := WriteBatches(&bytes.Buffer{}, mixed); err == nil {
		t.Fatal("mixed-shard stream serialized")
	}
}

func TestReadBatchesRejectsShardMismatchAndLegacy(t *testing.T) {
	l := newShardedLedger(t, 0, 4)
	if _, _, err := l.ExecuteBatch([]Request{putReq("c", 1, "k", "v")}); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteBatches(&buf, l.Batches()); err != nil {
		t.Fatal(err)
	}
	// The stream header's shard count lives in bytes [8,12) (magic,
	// version, shards); flipping it must be caught against the batch
	// headers even though both fields decode cleanly.
	forged := append([]byte(nil), buf.Bytes()...)
	forged[11] = 7
	if _, err := ReadBatches(bytes.NewReader(forged)); err == nil {
		t.Fatal("stream/batch shard-count mismatch accepted")
	}
	// An unknown stream version is rejected up front with a clear error.
	var unknown bytes.Buffer
	w := wire.NewWriter(&unknown)
	w.Uint32(wire.StreamMagic)
	w.Uint32(wire.StreamVCurrent + 1)
	w.Uint32(4) // shard count
	w.Uint32(0) // batch count
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadBatches(&unknown); err == nil {
		t.Fatal("unknown stream version accepted")
	}
	// Garbage magic.
	if _, err := ReadBatches(bytes.NewReader([]byte("not a ledger stream"))); err == nil {
		t.Fatal("foreign bytes accepted")
	}
}

// Satellite: Batches used to return the internal slice; callers could
// mutate retained history the ledger (and later audits) depend on.
func TestBatchesReturnsDefensiveCopy(t *testing.T) {
	l := newTestLedger(t, 0)
	for seq := uint64(1); seq <= 3; seq++ {
		if _, _, err := l.ExecuteBatch([]Request{putReq("c", seq, "k", "v")}); err != nil {
			t.Fatal(err)
		}
	}
	got := l.Batches()
	got[0] = nil
	got[1] = nil
	clean := l.Batches()
	if clean[0] == nil || clean[1] == nil {
		t.Fatal("mutating the returned slice clobbered retained history")
	}
	if _, err := Replay(clean, testKey.Public(), KVApp{}, nil); err != nil {
		t.Fatalf("history corrupted through Batches: %v", err)
	}
}

// Satellite: configuration is validated once in New.
func TestConfigValidatedInNew(t *testing.T) {
	// Shard count beyond the store limit is a construction error, not a
	// panic at first execution.
	if _, err := New(Config{Key: testKey, App: KVApp{}, Shards: kv.MaxShards + 1}); err == nil {
		t.Fatal("oversized shard count accepted")
	}
	// CheckpointEvery 0 still means "every batch" after normalization.
	l := newShardedLedger(t, 0, 2)
	batch, _, err := l.ExecuteBatch([]Request{putReq("c", 1, "k", "v")})
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, e := range batch.Entries {
		if e.Kind == KindCheckpoint {
			found = true
		}
	}
	if !found {
		t.Fatal("CheckpointEvery=0 did not checkpoint the first batch")
	}
}

// Satellite: rollback across checkpoint boundaries interacting with
// PruneMarks, at the ledger layer, under sharding.
func TestShardedRollbackAcrossCheckpointsWithPrune(t *testing.T) {
	l := newShardedLedger(t, 2, 4)
	stateAt := map[uint64]hashsig.Digest{}
	ckptAt := map[uint64]hashsig.Digest{}
	for seq := uint64(1); seq <= 6; seq++ {
		if _, _, err := l.ExecuteBatch([]Request{putReq("c", seq, fmt.Sprintf("k%d", seq), "v")}); err != nil {
			t.Fatal(err)
		}
		stateAt[seq+1] = l.StateDigest() // state entering batch seq+1
		b := l.Batches()[len(l.Batches())-1]
		ckptAt[seq] = b.Header.CkptDigest
	}
	l.PruneMarks(3)
	if err := l.RollbackTo(2); err == nil {
		t.Fatal("pruned mark usable")
	}
	// Roll back across the seq-4 checkpoint boundary to just before batch 5.
	if err := l.RollbackTo(5); err != nil {
		t.Fatal(err)
	}
	if got := l.StateDigest(); got != stateAt[5] {
		t.Fatal("rollback across checkpoint boundary lost state")
	}
	// Diverge: the re-executed batch 5 references the seq-4 checkpoint.
	batch, _, err := l.ExecuteBatch([]Request{putReq("c", 5, "divergent", "yes")})
	if err != nil {
		t.Fatal(err)
	}
	if batch.Header.CkptDigest != ckptAt[5] {
		t.Fatal("re-executed batch references the wrong checkpoint")
	}
	if _, err := Replay(l.Batches(), testKey.Public(), KVApp{}, nil); err != nil {
		t.Fatalf("post-prune post-rollback history does not replay: %v", err)
	}
	// A second rollback to a still-marked boundary works after pruning.
	if err := l.RollbackTo(4); err != nil {
		t.Fatal(err)
	}
	if got := l.StateDigest(); got != stateAt[4] {
		t.Fatal("second rollback lost state")
	}
}

// The randomized end-to-end scenario under sharding mirrors
// TestEndToEndProperty with shard counts > 1.
func TestShardedEndToEndProperty(t *testing.T) {
	for _, shards := range []uint32{4, 16} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			rng := rand.New(rand.NewSource(int64(shards)))
			l := newShardedLedger(t, uint64(1+rng.Intn(3)), shards)
			pub := testKey.Public()
			randomBatch := func(seq uint64) []Request {
				reqs := make([]Request, 1+rng.Intn(5))
				for i := range reqs {
					if rng.Intn(8) == 0 {
						reqs[i] = Request{Governance: true, Author: hashsig.Sum([]byte{byte(rng.Intn(3))}), Body: []byte{byte(rng.Int())}}
						continue
					}
					ops := make([]Op, 1+rng.Intn(3))
					for j := range ops {
						k := fmt.Sprintf("k%d", rng.Intn(30))
						if rng.Intn(5) == 0 {
							ops[j] = Op{Key: k, Delete: true}
						} else {
							ops[j] = Op{Key: k, Val: []byte{byte(rng.Int())}}
						}
					}
					reqs[i] = Request{Author: hashsig.Sum([]byte{byte(rng.Intn(6))}), ReqNo: seq, Body: EncodeOps(ops)}
				}
				return reqs
			}
			const n = 8
			for seq := uint64(1); seq <= n; seq++ {
				_, receipts, err := l.ExecuteBatch(randomBatch(seq))
				if err != nil {
					t.Fatal(err)
				}
				for i, r := range receipts {
					if !r.Verify(pub) {
						t.Fatalf("seq %d receipt %d does not verify", seq, i)
					}
				}
			}
			back := uint64(2 + rng.Intn(n-2))
			if err := l.RollbackTo(back); err != nil {
				t.Fatal(err)
			}
			for seq := back; seq <= n; seq++ {
				if _, _, err := l.ExecuteBatch(randomBatch(seq)); err != nil {
					t.Fatal(err)
				}
			}
			var buf bytes.Buffer
			if err := WriteBatches(&buf, l.Batches()); err != nil {
				t.Fatal(err)
			}
			decoded, err := ReadBatches(&buf)
			if err != nil {
				t.Fatal(err)
			}
			res, err := Replay(decoded, pub, KVApp{}, nil)
			if err != nil {
				t.Fatal(err)
			}
			if res.HistRoot != l.HistRoot() || res.StateDigest != l.StateDigest() {
				t.Fatal("sharded replay diverged after rollback")
			}
			// Tamper one random entry; replay must reject.
			victim := deepCopyBatches(l.Batches())
			bi := rng.Intn(len(victim))
			for len(victim[bi].Entries) == 0 {
				bi = rng.Intn(len(victim))
			}
			ei := rng.Intn(len(victim[bi].Entries))
			victim[bi].Entries[ei].Payload = append(victim[bi].Entries[ei].Payload, 0xEE)
			if _, err := Replay(victim, pub, KVApp{}, nil); err == nil {
				t.Fatal("tampered sharded stream replayed cleanly")
			}
		})
	}
}

// panicApp executes normally until armed, then panics mid-batch — modeling
// a buggy application — so the pipeline's panic path can be exercised.
type panicApp struct {
	arm bool
}

func (p *panicApp) Execute(tx *kv.Tx, request []byte) error {
	if p.arm {
		panic("app bug")
	}
	return KVApp{}.Execute(tx, request)
}

// A panicking App must not leak the hashing goroutine, and the mark pushed
// at batch start must let the caller roll the half-executed batch back and
// continue.
func TestExecuteBatchPanicIsRecoverable(t *testing.T) {
	app := &panicApp{}
	l, err := New(Config{Key: testKey, App: app, CheckpointEvery: 2, Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := l.ExecuteBatch([]Request{putReq("c", 1, "k1", "v")}); err != nil {
		t.Fatal(err)
	}
	before := runtime.NumGoroutine()
	app.arm = true
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("panicking app did not propagate")
			}
		}()
		l.ExecuteBatch([]Request{putReq("c", 2, "k2", "v")})
	}()
	app.arm = false
	// The hashing goroutine drains and exits via the deferred close.
	for i := 0; i < 100 && runtime.NumGoroutine() > before; i++ {
		time.Sleep(10 * time.Millisecond)
	}
	if got := runtime.NumGoroutine(); got > before {
		t.Fatalf("hashing goroutine leaked: %d goroutines, baseline %d", got, before)
	}
	// Recover by undoing the poisoned batch, then continue normally.
	if err := l.RollbackTo(2); err != nil {
		t.Fatal(err)
	}
	if _, _, err := l.ExecuteBatch([]Request{putReq("c", 2, "k2", "v")}); err != nil {
		t.Fatal(err)
	}
	if _, err := Replay(l.Batches(), testKey.Public(), KVApp{}, nil); err != nil {
		t.Fatalf("post-recovery history does not replay: %v", err)
	}
}
