package ledger

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"

	"iaccf/internal/hashsig"
	"iaccf/internal/pool"
)

// genSkewedBatch layers author skew over genBatch: hotTenths/10 of the
// requests are re-authored by one hot client, so that fraction of the
// batch routes to a single per-shard batch tree (entries shard by author).
// ReqNos stay unique within the batch, so re-authoring never collides.
func genSkewedBatch(rng *rand.Rand, n, keyPool, hotTenths int) []Request {
	out := genBatch(rng, n, keyPool)
	hot := hashsig.Sum([]byte("hot-client"))
	for i := range out {
		if rng.Intn(10) < hotTenths {
			out[i].Author = hot
		}
	}
	return out
}

// TestParallelMatchesSequentialUnderAuthorSkew extends the core
// parallel-vs-sequential property across shard-placement skew: with 90% of
// entries landing in one shard tree, the arena'd proof builder, the shared
// per-shard top path, and the parallel leaf hashing must still emit
// byte-identical headers and receipts, and identical post-state. Header
// equality is checked via SigningDigest, which covers ¯M, ¯G, and d_C —
// so checkpoint digests are compared batch by batch, not just at the end.
func TestParallelMatchesSequentialUnderAuthorSkew(t *testing.T) {
	forceParallel(t)
	for _, shards := range []uint32{1, 4, 16} {
		for _, hotTenths := range []int{0, 9} {
			label := fmt.Sprintf("shards=%d/hot=%d0%%", shards, hotTenths)
			t.Run(label, func(t *testing.T) {
				rng := rand.New(rand.NewSource(int64(shards)*100 + int64(hotTenths)))
				par, err := New(Config{Key: testKey, App: KVApp{}, Shards: shards, CheckpointEvery: 2})
				if err != nil {
					t.Fatal(err)
				}
				seqL, err := New(Config{Key: testKey, App: hiddenFootprint{KVApp{}}, Shards: shards, CheckpointEvery: 2})
				if err != nil {
					t.Fatal(err)
				}
				for batch := 0; batch < 4; batch++ {
					reqs := genSkewedBatch(rng, minParallelBatch+rng.Intn(100), 512, hotTenths)
					pb, pr, err := par.ExecuteBatch(reqs)
					if err != nil {
						t.Fatal(err)
					}
					sb, sr, err := seqL.ExecuteBatch(reqs)
					if err != nil {
						t.Fatal(err)
					}
					assertBatchesEqual(t, fmt.Sprintf("%s/batch=%d", label, batch), pb, sb, pr, sr)
					if par.StateDigest() != seqL.StateDigest() {
						t.Fatalf("%s: post-state digests diverge after batch %d", label, batch)
					}
					for _, r := range pr {
						if !r.Verify(testKey.Public()) {
							t.Fatalf("%s: receipt does not verify", label)
						}
					}
				}
			})
		}
	}
}

// receiptSnap deep-copies everything a client retains from a receipt.
type receiptSnap struct {
	header  hashsig.Digest
	payload []byte
	path    []hashsig.Digest
}

// TestBatchAndReceiptsSurvivePoolReuse is the aliasing property for the
// execution path: nothing ExecuteBatch returns may share backing memory
// with the ledger's pooled scratch or batch-to-batch arenas. Poison mode
// overwrites every buffer as it re-enters a pool, and the ledger's own
// scratch is reused by the subsequent batches, so any leaked alias turns
// into a visible corruption in the retained batch or receipts. Run under
// -race, concurrent reuse by the hashing workers is caught as well.
func TestBatchAndReceiptsSurvivePoolReuse(t *testing.T) {
	defer pool.SetPoison(pool.SetPoison(true))
	forceParallel(t)
	rng := rand.New(rand.NewSource(42))
	l, err := New(Config{Key: testKey, App: KVApp{}, Shards: 8, CheckpointEvery: 2})
	if err != nil {
		t.Fatal(err)
	}

	first := genBatch(rng, minParallelBatch+40, 256)
	b1, r1, err := l.ExecuteBatch(first)
	if err != nil {
		t.Fatal(err)
	}
	headerDigest := b1.Header.SigningDigest()
	payloads := make([][]byte, len(b1.Entries))
	digests := make([]hashsig.Digest, len(b1.Entries))
	for i := range b1.Entries {
		payloads[i] = append([]byte(nil), b1.Entries[i].Payload...)
		digests[i] = b1.Entries[i].Digest()
	}
	snaps := make([]receiptSnap, len(r1))
	for i := range r1 {
		snaps[i] = receiptSnap{
			header:  r1[i].Header.SigningDigest(),
			payload: append([]byte(nil), r1[i].Entry.Payload...),
			path:    append([]hashsig.Digest(nil), r1[i].Path...),
		}
	}

	// Six more batches cycle every pooled buffer and the ledger's
	// batch-to-batch scratch several times over.
	for i := 0; i < 6; i++ {
		if _, _, err := l.ExecuteBatch(genBatch(rng, minParallelBatch+40, 256)); err != nil {
			t.Fatal(err)
		}
	}

	if got := b1.Header.SigningDigest(); got != headerDigest {
		t.Fatal("batch header mutated after pool reuse")
	}
	for i := range b1.Entries {
		if !bytes.Equal(b1.Entries[i].Payload, payloads[i]) {
			t.Fatalf("entry %d payload mutated after pool reuse", i)
		}
		if b1.Entries[i].Digest() != digests[i] {
			t.Fatalf("entry %d digest changed after pool reuse", i)
		}
	}
	for i := range r1 {
		if r1[i].Header.SigningDigest() != snaps[i].header {
			t.Fatalf("receipt %d header mutated after pool reuse", i)
		}
		if !bytes.Equal(r1[i].Entry.Payload, snaps[i].payload) {
			t.Fatalf("receipt %d entry payload mutated after pool reuse", i)
		}
		if len(r1[i].Path) != len(snaps[i].path) {
			t.Fatalf("receipt %d path length changed after pool reuse", i)
		}
		for j := range r1[i].Path {
			if r1[i].Path[j] != snaps[i].path[j] {
				t.Fatalf("receipt %d path element %d mutated after pool reuse", i, j)
			}
		}
		if !r1[i].Verify(testKey.Public()) {
			t.Fatalf("receipt %d no longer verifies after pool reuse", i)
		}
	}
}
