package ledger

import (
	"fmt"

	"iaccf/internal/hashsig"
	"iaccf/internal/kv"
	"iaccf/internal/merkle"
)

// Checkpoint is the retained materialization of one checkpoint boundary:
// everything a replica needs to serve chunked state transfer for that
// boundary, or to resume execution from it. The store snapshot is a
// copy-on-write clone (O(shards), shares the immutable tries), the shard
// digest vector is the one d_C commits to (chunk i verifies by hashing
// SerializeShard(i)'s bytes against element i), and the frontier is the
// history tree's compact state at the boundary, so a restored tree appends
// onward to the same roots ¯M.
type Checkpoint struct {
	Seq          uint64
	Store        *kv.ShardedStore
	ShardDigests []hashsig.Digest
	Frontier     merkle.Frontier
	Digest       hashsig.Digest // d_C at Seq
}

// captureCheckpoint records the checkpoint materialization for seq. Called
// at the success tail of ExecuteBatch/ApplyBatch when seq is a checkpoint
// boundary — after the batch's entries landed in the history tree, so the
// frontier matches the signed header's (HistSize, ¯M). All shards are clean
// at this point (CheckpointDigest just ran), so the digest vector copy does
// no hashing.
func (l *Ledger) captureCheckpoint(seq uint64) {
	f, err := l.hist.Frontier()
	if err != nil {
		// The frontier of the tree's own current size cannot be out of range.
		panic(err)
	}
	l.ckpts = append(l.ckpts, &Checkpoint{
		Seq:          seq,
		Store:        l.store.Clone(),
		ShardDigests: l.store.ShardDigests(),
		Frontier:     f,
		Digest:       l.lastCkpt,
	})
}

// CheckpointAt returns the latest retained checkpoint with Seq <= upTo, or
// nil. Consensus serves state transfer from CheckpointAt(committed): a
// speculative checkpoint beyond the committed boundary is never handed out
// (it could still roll back), and the prune policy keeps every batch above
// the latest committed checkpoint, so the suffix a laggard needs is always
// available alongside it.
func (l *Ledger) CheckpointAt(upTo uint64) *Checkpoint {
	for i := len(l.ckpts) - 1; i >= 0; i-- {
		if l.ckpts[i].Seq <= upTo {
			return l.ckpts[i]
		}
	}
	return nil
}

// FirstRetainedSeq returns the lowest batch sequence number still retained;
// BatchAt below it returns nil. Before any pruning this is 1.
func (l *Ledger) FirstRetainedSeq() uint64 { return l.baseSeq + 1 }

// RetainedBatches returns how many batches the ledger currently retains —
// the quantity the bounded-memory invariant caps at
// window + checkpoint interval.
func (l *Ledger) RetainedBatches() int { return len(l.batches) }

// Prune drops retained batches with seq < before, compacts the history
// tree past their leaves, and discards rollback marks and checkpoint
// records below the new boundary. The caller (consensus) must only prune
// below its committed watermark and at or below the latest checkpoint
// boundary plus one — pruned batches can never be rolled back to
// (RollbackTo returns ErrPruned) and can no longer be served to laggards,
// who instead sync from the retained checkpoint. Pruning to an unexecuted
// boundary is a caller bug and panics.
func (l *Ledger) Prune(before uint64) {
	if before <= l.baseSeq+1 {
		return // nothing below the boundary is retained
	}
	if before > l.nextSeq {
		panic(fmt.Sprintf("ledger: prune to %d beyond next seq %d", before, l.nextSeq))
	}
	anchor := l.BatchAt(before - 1)
	if anchor == nil {
		panic(fmt.Sprintf("ledger: prune boundary %d not retained", before))
	}
	// Compact M first: the anchor batch's header pins the leaf count at the
	// boundary. Leaves below it survive only as the peak summary, which is
	// all a frontier-restored auditor or laggard ever needs.
	if err := l.hist.Compact(anchor.Header.HistSize); err != nil {
		panic(err)
	}
	// Copy the tail into a fresh slice so the dropped batches' backing
	// array is actually released — re-slicing would pin every pruned batch.
	l.batches = append([]*Batch(nil), l.batches[before-1-l.baseSeq:]...)
	l.baseSeq = before - 1
	l.PruneMarks(before)
	keep := l.ckpts[:0]
	for _, ck := range l.ckpts {
		if ck.Seq >= l.baseSeq {
			keep = append(keep, ck)
		}
	}
	// Nil out the dropped records so the retained slice does not pin them.
	for i := len(keep); i < len(l.ckpts); i++ {
		l.ckpts[i] = nil
	}
	l.ckpts = keep
}

// NewFromCheckpoint returns a ledger resuming execution from a verified
// checkpoint: the store is a clone of the checkpoint snapshot, the history
// tree is restored from the frontier (appends onward reproduce ¯M; paths
// and rollback below the boundary are unavailable), and the next batch has
// sequence number ck.Seq+1. The caller must have verified the checkpoint
// against a signed d_C before trusting it; this constructor only checks
// structural coherence with the configuration.
func NewFromCheckpoint(cfg Config, ck *Checkpoint) (*Ledger, error) {
	l, err := New(cfg)
	if err != nil {
		return nil, err
	}
	if got := ck.Store.ShardCount(); got != l.cfg.Shards {
		return nil, fmt.Errorf("%w: checkpoint has %d shards, config wants %d", ErrConfig, got, l.cfg.Shards)
	}
	hist, err := merkle.FromFrontier(ck.Frontier)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrConfig, err)
	}
	l.store = ck.Store.Clone()
	l.hist = hist
	l.nextSeq = ck.Seq + 1
	l.lastCkpt = ck.Digest
	l.baseSeq = ck.Seq
	l.ckpts = []*Checkpoint{ck}
	return l, nil
}
