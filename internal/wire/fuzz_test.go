package wire

import (
	"bytes"
	"testing"
)

// streamHeaderCorpus seeds FuzzDecodeStreamHeader; the entries also run as
// plain tests under `go test` (the testing package executes f.Add seeds
// without -fuzz), so the corpus doubles as a regression table.
func streamHeaderCorpus() [][]byte {
	var valid bytes.Buffer
	w := NewWriter(&valid)
	(&StreamHeader{Version: StreamVCurrent, Shards: 4}).EncodeTo(w)
	if err := w.Flush(); err != nil {
		panic(err)
	}
	v := valid.Bytes()
	return [][]byte{
		v,
		v[:len(v)-1],                      // truncated shard count
		v[:4],                             // magic only
		{},                                // empty
		{0xde, 0xad, 0xbe, 0xef},          // foreign magic
		append(append([]byte{}, v...), 0), // trailing byte (caller's concern)
		{0x69, 0x61, 0x63, 0x63, 0, 0, 0, 1, 0, 0, 0, 1},             // legacy version 1
		{0x69, 0x61, 0x63, 0x63, 0, 0, 0, 2, 0, 0, 0, 0},             // zero shards
		{0x69, 0x61, 0x63, 0x63, 0, 0, 0, 2, 0xff, 0xff, 0xff, 0xff}, // huge shards
	}
}

func FuzzDecodeStreamHeader(f *testing.F) {
	for _, seed := range streamHeaderCorpus() {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		r := NewReader(bytes.NewReader(data))
		h, err := DecodeStreamHeader(r)
		if err != nil {
			return
		}
		// Whatever decodes must satisfy the documented invariants and
		// re-encode to the exact bytes consumed.
		if h.Version != StreamVCurrent {
			t.Fatalf("decoded unsupported version %d", h.Version)
		}
		if h.Shards < 1 || h.Shards > MaxStreamShards {
			t.Fatalf("decoded out-of-range shard count %d", h.Shards)
		}
		var buf bytes.Buffer
		w := NewWriter(&buf)
		h.EncodeTo(w)
		if err := w.Flush(); err != nil {
			t.Fatal(err)
		}
		if !bytes.HasPrefix(data, buf.Bytes()) {
			t.Fatalf("re-encoding %+v diverges from input", h)
		}
	})
}

// FuzzReaderBytes drives the length-prefixed primitives: no input may cause
// a panic or an allocation beyond the declared limit.
func FuzzReaderBytes(f *testing.F) {
	f.Add([]byte{0, 0, 0, 3, 'a', 'b', 'c'}, uint32(16))
	f.Add([]byte{0xff, 0xff, 0xff, 0xff}, uint32(16))
	f.Add([]byte{0, 0, 0, 5, 'x'}, uint32(4))
	f.Fuzz(func(t *testing.T, data []byte, max uint32) {
		if max > 1<<20 {
			max = 1 << 20 // keep hostile limits from masking hostile data
		}
		r := NewReader(bytes.NewReader(data))
		b := r.Bytes(max)
		if uint32(len(b)) > max {
			t.Fatalf("Bytes returned %d > limit %d", len(b), max)
		}
		if r.Err() != nil && b != nil {
			t.Fatal("failed read returned data")
		}
	})
}
