// Package wire is the deterministic binary codec shared by every IA-CCF
// serialization surface: key-value checkpoints, ledger entries, batch
// headers, and receipts. All integers are big-endian; variable-length byte
// strings are length-prefixed with a uint32. Two encoders given the same
// logical value always produce identical bytes, which is what lets replicas
// compare checkpoint digests d_C and lets auditors re-derive entry digests
// during replay (paper §3.1, §3.4).
//
// The package offers two styles:
//
//   - Append* functions build small messages in memory (ledger entries,
//     signing preimages) without an intermediate writer.
//   - Writer/Reader stream large structures (checkpoints) with sticky error
//     handling, so call sites stay free of per-field error plumbing.
package wire

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"iaccf/internal/hashsig"
	"iaccf/internal/pool"
)

// ErrCorrupt reports a malformed or hostile input stream.
var ErrCorrupt = errors.New("wire: corrupt input")

// Limits on variable-length fields, enforced on decode so a hostile stream
// cannot drive huge allocations. Encoding never checks: producers are
// trusted to stay within them.
const (
	// MaxKeyLen bounds key-value store keys.
	MaxKeyLen = 1 << 20
	// MaxValueLen bounds key-value store values and ledger entry payloads.
	MaxValueLen = 1 << 24
	// MaxChunkLen bounds one state-transfer chunk payload: a single shard's
	// canonical serialization or one batch's encoding, framed as an opaque
	// byte field in sync messages.
	MaxChunkLen = 1 << 26
)

// Batch-stream framing. Every serialized batch stream opens with a
// StreamHeader so readers reject foreign or stale bytes early and so the
// format can evolve behind the version field. The version count starts at
// 2: the pre-sharding stream ("version 1") had no header at all — its
// first bytes were the raw batch count — so any unframed legacy stream
// fails the magic check rather than mis-decoding. Version 2 carries the
// execution shard count that sharded checkpoint digests and per-shard
// batch trees depend on (paper §6).
const (
	// StreamMagic opens every batch stream ("iacc").
	StreamMagic = 0x69616363
	// StreamVCurrent is the only version current readers decode; writers
	// always emit it. Future format changes bump it and gate their fields
	// on it.
	StreamVCurrent = 2
	// MaxStreamShards bounds the shard count accepted from a stream. It is
	// the definition kv.MaxShards aliases, so the wire and store limits
	// cannot drift.
	MaxStreamShards = 1 << 10
)

// StreamHeader is the versioned opening of a batch stream.
type StreamHeader struct {
	Version uint32
	// Shards is the execution shard count the stream's batches were built
	// under. Always >= 1.
	Shards uint32
}

// EncodeTo writes the header: magic, version, shard count.
func (h *StreamHeader) EncodeTo(w *Writer) {
	w.Uint32(StreamMagic)
	w.Uint32(h.Version)
	w.Uint32(h.Shards)
}

// DecodeStreamHeader reads and validates a stream header. Foreign magic,
// versions other than StreamVCurrent, and out-of-range shard counts are
// all rejected.
func DecodeStreamHeader(r *Reader) (StreamHeader, error) {
	if m := r.Uint32(); r.Err() == nil && m != StreamMagic {
		return StreamHeader{}, fmt.Errorf("%w: bad stream magic %#x", ErrCorrupt, m)
	}
	h := StreamHeader{Version: r.Uint32()}
	if r.Err() == nil && h.Version != StreamVCurrent {
		return StreamHeader{}, fmt.Errorf("%w: unsupported stream version %d", ErrCorrupt, h.Version)
	}
	h.Shards = r.Uint32()
	if r.Err() == nil && (h.Shards < 1 || h.Shards > MaxStreamShards) {
		return StreamHeader{}, fmt.Errorf("%w: stream shard count %d", ErrCorrupt, h.Shards)
	}
	if err := r.Err(); err != nil {
		return StreamHeader{}, err
	}
	return h, nil
}

// AppendUint32 appends v big-endian.
func AppendUint32(dst []byte, v uint32) []byte {
	var b [4]byte
	binary.BigEndian.PutUint32(b[:], v)
	return append(dst, b[:]...)
}

// AppendUint64 appends v big-endian.
func AppendUint64(dst []byte, v uint64) []byte {
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], v)
	return append(dst, b[:]...)
}

// AppendBytes appends b with a uint32 length prefix.
func AppendBytes(dst, b []byte) []byte {
	dst = AppendUint32(dst, uint32(len(b)))
	return append(dst, b...)
}

// AppendString appends s with a uint32 length prefix.
func AppendString(dst []byte, s string) []byte {
	dst = AppendUint32(dst, uint32(len(s)))
	return append(dst, s...)
}

// AppendDigest appends the raw digest bytes (fixed size, no prefix).
func AppendDigest(dst []byte, d hashsig.Digest) []byte {
	return append(dst, d[:]...)
}

// Writer streams wire-encoded fields to a sink. The first error sticks:
// subsequent writes are no-ops and Flush reports it. Three sinks exist,
// chosen by constructor:
//
//   - NewWriter buffers onto an io.Writer through bufio — for real streams
//     (files, sockets) where syscall batching matters.
//   - NewDirectWriter writes straight to an io.Writer with no intermediate
//     buffer — for in-memory sinks like hash states, where bufio would only
//     add an allocation and a copy. It never fails between the underlying
//     writer's own errors, and Flush is a no-op check.
//   - NewAppendWriter appends to a caller-provided byte slice — for
//     building signing preimages and message frames in memory, typically on
//     pooled scratch. AppendedBytes returns the accumulated encoding; the
//     backing array is still the caller's (the Writer retains nothing after
//     AppendedBytes, so the caller may pool it).
type Writer struct {
	bw  *bufio.Writer
	out io.Writer // direct mode sink (nil otherwise)
	buf []byte    // append mode storage (nil unless append mode)
	app bool      // append mode flag (buf may legitimately be nil/empty)
	err error
}

// NewWriter returns a Writer buffering onto w.
func NewWriter(w io.Writer) *Writer {
	return &Writer{bw: bufio.NewWriter(w)}
}

// NewDirectWriter returns a Writer that writes to w without buffering.
// Intended for in-memory sinks (hash states): every field write goes
// straight through, so there is no bufio allocation per encode.
func NewDirectWriter(w io.Writer) *Writer {
	return &Writer{out: w}
}

// NewAppendWriter returns a Writer that appends to buf (which may be nil).
// Call AppendedBytes to retrieve the result. Writing never fails.
func NewAppendWriter(buf []byte) *Writer {
	return &Writer{buf: buf, app: true}
}

// AppendedBytes returns everything written so far in append mode. The
// returned slice is the accumulated buffer itself; ownership stays with the
// caller of NewAppendWriter.
func (w *Writer) AppendedBytes() []byte { return w.buf }

func (w *Writer) write(p []byte) {
	if w.err != nil {
		return
	}
	switch {
	case w.app:
		w.buf = append(w.buf, p...)
	case w.out != nil:
		_, w.err = w.out.Write(p)
	default:
		_, w.err = w.bw.Write(p)
	}
}

// Uint32 writes v big-endian.
func (w *Writer) Uint32(v uint32) {
	var b [4]byte
	binary.BigEndian.PutUint32(b[:], v)
	w.write(b[:])
}

// Uint64 writes v big-endian.
func (w *Writer) Uint64(v uint64) {
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], v)
	w.write(b[:])
}

// Bytes writes b with a uint32 length prefix.
func (w *Writer) Bytes(b []byte) {
	w.Uint32(uint32(len(b)))
	w.write(b)
}

// String writes s with a uint32 length prefix.
func (w *Writer) String(s string) {
	w.Uint32(uint32(len(s)))
	if w.err != nil {
		return
	}
	switch {
	case w.app:
		w.buf = append(w.buf, s...)
	case w.out != nil:
		_, w.err = io.WriteString(w.out, s)
	default:
		_, w.err = w.bw.WriteString(s)
	}
}

// Digest writes the raw digest bytes.
func (w *Writer) Digest(d hashsig.Digest) {
	w.write(d[:])
}

// Nonce writes the raw nonce bytes (fixed size, no prefix). Consensus
// commit messages reveal nonce preimages on the wire (paper §3.1).
func (w *Writer) Nonce(n hashsig.Nonce) {
	w.write(n[:])
}

// Err returns the first error encountered.
func (w *Writer) Err() error { return w.err }

// Flush drains the buffer and returns the first error encountered. In
// append and direct modes there is no buffer to drain; Flush just reports
// the sticky error.
func (w *Writer) Flush() error {
	if w.err != nil || w.bw == nil {
		return w.err
	}
	return w.bw.Flush()
}

// Reader streams wire-encoded fields from a source. The first error
// sticks: subsequent reads return zero values and Err reports it. Two
// sources exist:
//
//   - NewReader buffers from an io.Reader — for real streams.
//   - NewBytesReader decodes directly from a byte slice with no bufio
//     buffer and no copy per field read. Decoding entries, requests, and
//     consensus frames — all already fully in memory — through NewReader
//     used to be the single largest allocation source on the commit path
//     (one 4KB bufio buffer per decode).
type Reader struct {
	br   *bufio.Reader
	data []byte // bytes mode source (nil unless bytes mode)
	pos  int    // bytes mode cursor
	err  error
}

// NewReader returns a Reader buffering from r.
func NewReader(r io.Reader) *Reader {
	return &Reader{br: bufio.NewReader(r)}
}

// NewBytesReader returns a Reader decoding directly from b. The Reader
// never mutates b; the caller must not mutate it while decoding. Fields
// returned by Bytes/String are copies, so decoded values outlive b — only
// BytesView hands out aliases.
func NewBytesReader(b []byte) *Reader {
	return &Reader{data: b}
}

// take returns the next n bytes of a bytes-mode reader without copying.
func (r *Reader) take(n int) ([]byte, bool) {
	if r.err != nil {
		return nil, false
	}
	if len(r.data)-r.pos < n {
		r.err = fmt.Errorf("%w: unexpected EOF", ErrCorrupt)
		return nil, false
	}
	b := r.data[r.pos : r.pos+n]
	r.pos += n
	return b, true
}

func (r *Reader) read(p []byte) bool {
	if r.err != nil {
		return false
	}
	if r.br == nil {
		b, ok := r.take(len(p))
		if !ok {
			return false
		}
		copy(p, b)
		return true
	}
	if _, err := io.ReadFull(r.br, p); err != nil {
		r.err = fmt.Errorf("%w: %v", ErrCorrupt, err)
		return false
	}
	return true
}

// Byte reads a single byte (type tags, flags).
func (r *Reader) Byte() byte {
	var b [1]byte
	if !r.read(b[:]) {
		return 0
	}
	return b[0]
}

// Uint32 reads a big-endian uint32.
func (r *Reader) Uint32() uint32 {
	var b [4]byte
	if !r.read(b[:]) {
		return 0
	}
	return binary.BigEndian.Uint32(b[:])
}

// Uint64 reads a big-endian uint64.
func (r *Reader) Uint64() uint64 {
	var b [8]byte
	if !r.read(b[:]) {
		return 0
	}
	return binary.BigEndian.Uint64(b[:])
}

// Bytes reads a length-prefixed byte string of at most max bytes. The
// result is freshly allocated and owned by the caller, in every mode.
func (r *Reader) Bytes(max uint32) []byte {
	n := r.Uint32()
	if r.err != nil {
		return nil
	}
	if n > max {
		r.err = fmt.Errorf("%w: field length %d exceeds limit %d", ErrCorrupt, n, max)
		return nil
	}
	b := make([]byte, n)
	if !r.read(b) {
		return nil
	}
	return b
}

// BytesView reads a length-prefixed byte string of at most max bytes and,
// in bytes mode, returns a view aliasing the input slice — zero copies,
// zero allocations. The view is only valid while the input slice is; a
// caller that retains the data beyond that must copy it. In stream mode it
// falls back to Bytes (an owned copy), so callers need no mode check.
func (r *Reader) BytesView(max uint32) []byte {
	if r.br != nil {
		return r.Bytes(max)
	}
	n := r.Uint32()
	if r.err != nil {
		return nil
	}
	if n > max {
		r.err = fmt.Errorf("%w: field length %d exceeds limit %d", ErrCorrupt, n, max)
		return nil
	}
	b, ok := r.take(int(n))
	if !ok {
		return nil
	}
	return b
}

// String reads a length-prefixed string of at most max bytes. The string
// conversion copies, so BytesView is safe as the source in bytes mode.
func (r *Reader) String(max uint32) string {
	return string(r.BytesView(max))
}

// Digest reads raw digest bytes.
func (r *Reader) Digest() hashsig.Digest {
	var d hashsig.Digest
	r.read(d[:])
	return d
}

// Nonce reads raw nonce bytes.
func (r *Reader) Nonce() hashsig.Nonce {
	var n hashsig.Nonce
	r.read(n[:])
	return n
}

// Err returns the first error encountered.
func (r *Reader) Err() error { return r.err }

// ExpectEOF fails the reader if any input remains. Decoders of fixed-shape
// messages call it so that two distinct byte strings can never decode to
// the same value (canonical encodings are what make entry digests binding).
func (r *Reader) ExpectEOF() {
	if r.err != nil {
		return
	}
	if r.br == nil {
		if r.pos != len(r.data) {
			r.err = fmt.Errorf("%w: trailing data", ErrCorrupt)
		}
		return
	}
	if _, err := r.br.ReadByte(); err == nil {
		r.err = fmt.Errorf("%w: trailing data", ErrCorrupt)
	} else if err != io.EOF {
		r.err = fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
}

// Fail records an error discovered by the caller (for example a bad type
// tag) so it surfaces through Err like any codec error. The first recorded
// error wins.
func (r *Reader) Fail(err error) {
	if r.err == nil {
		r.err = err
	}
}

// Annotate wraps an already-recorded error with frame-position context
// ("shard 3: entry 17 key: …"), preserving the wrapped chain so sentinel
// checks like errors.Is(err, ErrCorrupt) keep working. A clean reader is
// left untouched, so decoders can annotate unconditionally after each
// frame boundary.
func (r *Reader) Annotate(format string, args ...any) {
	if r.err != nil {
		r.err = fmt.Errorf("%s: %w", fmt.Sprintf(format, args...), r.err)
	}
}

// scratch is the shared pool behind GetScratch/PutScratch: encode buffers
// for signing preimages, entry encodings, and message frames assembled in
// memory on the commit critical path.
var scratch pool.Bytes

// GetScratch returns a pooled zero-length buffer with at least the given
// capacity, for building an encoding in memory (typically through
// NewAppendWriter or the Append* functions). Ownership rule: the buffer is
// the caller's until PutScratch; nothing the caller returns or retains may
// alias it — hash it, copy it out, then release it.
func GetScratch(capacity int) []byte { return scratch.Get(capacity) }

// PutScratch returns a buffer obtained from GetScratch to the pool. After
// the call the slice (and anything aliasing its backing array) is dead.
func PutScratch(b []byte) { scratch.Put(b) }
