package wire

import (
	"bytes"
	"testing"

	"iaccf/internal/hashsig"
)

func TestAppendMatchesWriter(t *testing.T) {
	d := hashsig.Sum([]byte("digest"))

	var appended []byte
	appended = AppendUint32(appended, 7)
	appended = AppendUint64(appended, 1<<40)
	appended = AppendBytes(appended, []byte("payload"))
	appended = AppendString(appended, "key")
	appended = AppendDigest(appended, d)

	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.Uint32(7)
	w.Uint64(1 << 40)
	w.Bytes([]byte("payload"))
	w.String("key")
	w.Digest(d)
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(appended, buf.Bytes()) {
		t.Fatal("Append* and Writer disagree on encoding")
	}
}

func TestRoundTrip(t *testing.T) {
	d := hashsig.Sum([]byte("digest"))
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.Uint32(42)
	w.Uint64(1 << 50)
	w.Bytes([]byte("hello"))
	w.Bytes(nil)
	w.String("world")
	w.Digest(d)
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}

	r := NewReader(&buf)
	if got := r.Uint32(); got != 42 {
		t.Fatalf("Uint32 = %d", got)
	}
	if got := r.Uint64(); got != 1<<50 {
		t.Fatalf("Uint64 = %d", got)
	}
	if got := r.Bytes(MaxValueLen); string(got) != "hello" {
		t.Fatalf("Bytes = %q", got)
	}
	if got := r.Bytes(MaxValueLen); len(got) != 0 {
		t.Fatalf("empty Bytes = %q", got)
	}
	if got := r.String(MaxKeyLen); got != "world" {
		t.Fatalf("String = %q", got)
	}
	if got := r.Digest(); got != d {
		t.Fatal("Digest mismatch")
	}
	if err := r.Err(); err != nil {
		t.Fatal(err)
	}
}

func TestReaderTruncated(t *testing.T) {
	r := NewReader(bytes.NewReader([]byte{0, 0}))
	r.Uint32()
	if r.Err() == nil {
		t.Fatal("truncated uint32 not reported")
	}
	// Sticky: further reads stay failed and return zero values.
	if got := r.Uint64(); got != 0 {
		t.Fatalf("read after error = %d", got)
	}
}

func TestReaderLengthLimit(t *testing.T) {
	var b []byte
	b = AppendUint32(b, MaxValueLen+1)
	r := NewReader(bytes.NewReader(b))
	if got := r.Bytes(MaxValueLen); got != nil {
		t.Fatal("oversized field decoded")
	}
	if r.Err() == nil {
		t.Fatal("oversized field not reported")
	}
}

func TestReaderFail(t *testing.T) {
	r := NewReader(bytes.NewReader([]byte{1, 2, 3, 4}))
	r.Fail(ErrCorrupt)
	if r.Err() != ErrCorrupt {
		t.Fatal("Fail did not stick")
	}
	if got := r.Uint32(); got != 0 {
		t.Fatal("read after Fail succeeded")
	}
}

func TestWriterStickyError(t *testing.T) {
	w := NewWriter(failWriter{})
	for i := 0; i < 2000; i++ {
		w.Uint64(uint64(i)) // overflow the bufio buffer to force the write
	}
	if w.Flush() == nil {
		t.Fatal("writer error not reported")
	}
}

type failWriter struct{}

func (failWriter) Write(p []byte) (int, error) { return 0, ErrCorrupt }

func TestStreamHeaderRoundTrip(t *testing.T) {
	for _, h := range []StreamHeader{
		{Version: StreamVCurrent, Shards: 1},
		{Version: StreamVCurrent, Shards: 16},
		{Version: StreamVCurrent, Shards: MaxStreamShards},
	} {
		var buf bytes.Buffer
		w := NewWriter(&buf)
		h.EncodeTo(w)
		if err := w.Flush(); err != nil {
			t.Fatal(err)
		}
		r := NewReader(&buf)
		got, err := DecodeStreamHeader(r)
		if err != nil {
			t.Fatalf("%+v: %v", h, err)
		}
		if got != h {
			t.Fatalf("round trip %+v -> %+v", h, got)
		}
	}
}

func TestStreamHeaderRejects(t *testing.T) {
	encode := func(fields ...uint32) *Reader {
		var buf bytes.Buffer
		w := NewWriter(&buf)
		for _, f := range fields {
			w.Uint32(f)
		}
		if err := w.Flush(); err != nil {
			t.Fatal(err)
		}
		return NewReader(&buf)
	}
	if _, err := DecodeStreamHeader(encode(0xdeadbeef, StreamVCurrent, 4)); err == nil {
		t.Fatal("bad magic accepted")
	}
	if _, err := DecodeStreamHeader(encode(StreamMagic, StreamVCurrent+1, 4)); err == nil {
		t.Fatal("future version accepted")
	}
	// The unframed pre-sharding format had no header, so "version 1" only
	// ever appears in a crafted stream; it is rejected like any unknown.
	if _, err := DecodeStreamHeader(encode(StreamMagic, 1, 4)); err == nil {
		t.Fatal("version 1 accepted")
	}
	if _, err := DecodeStreamHeader(encode(StreamMagic, 0)); err == nil {
		t.Fatal("version 0 accepted")
	}
	if _, err := DecodeStreamHeader(encode(StreamMagic, StreamVCurrent, 0)); err == nil {
		t.Fatal("zero shard count accepted")
	}
	if _, err := DecodeStreamHeader(encode(StreamMagic, StreamVCurrent, MaxStreamShards+1)); err == nil {
		t.Fatal("oversized shard count accepted")
	}
	if _, err := DecodeStreamHeader(encode(StreamMagic)); err == nil {
		t.Fatal("truncated header accepted")
	}
}
