package wire

import (
	"bytes"
	"strings"
	"testing"

	"iaccf/internal/hashsig"
)

// TestAppendWriterMatchesStreamWriter proves the in-memory writer modes are
// byte-identical to the buffered stream writer for every field type.
func TestAppendWriterMatchesStreamWriter(t *testing.T) {
	emit := func(w *Writer) {
		w.Uint32(7)
		w.Uint64(1 << 40)
		w.Bytes([]byte("payload"))
		w.String("key")
		w.Digest(hashsig.Sum([]byte("d")))
		w.Nonce(hashsig.NonceFromSeed("n"))
	}
	var buf bytes.Buffer
	sw := NewWriter(&buf)
	emit(sw)
	if err := sw.Flush(); err != nil {
		t.Fatal(err)
	}

	aw := NewAppendWriter(nil)
	emit(aw)
	if err := aw.Flush(); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), aw.AppendedBytes()) {
		t.Fatalf("append writer diverges from stream writer:\n%x\n%x", buf.Bytes(), aw.AppendedBytes())
	}

	var direct bytes.Buffer
	dw := NewDirectWriter(&direct)
	emit(dw)
	if err := dw.Flush(); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), direct.Bytes()) {
		t.Fatalf("direct writer diverges from stream writer:\n%x\n%x", buf.Bytes(), direct.Bytes())
	}
}

// TestBytesReaderMatchesStreamReader decodes the same encoding through both
// reader modes and checks every field and the EOF discipline agree.
func TestBytesReaderMatchesStreamReader(t *testing.T) {
	w := NewAppendWriter(nil)
	w.Uint32(42)
	w.Bytes([]byte("hello"))
	w.String("world")
	w.Uint64(99)
	w.Digest(hashsig.Sum([]byte("x")))
	enc := w.AppendedBytes()

	check := func(r *Reader, name string) {
		t.Helper()
		if got := r.Uint32(); got != 42 {
			t.Fatalf("%s: Uint32 = %d", name, got)
		}
		if got := r.Bytes(1 << 10); string(got) != "hello" {
			t.Fatalf("%s: Bytes = %q", name, got)
		}
		if got := r.String(1 << 10); got != "world" {
			t.Fatalf("%s: String = %q", name, got)
		}
		if got := r.Uint64(); got != 99 {
			t.Fatalf("%s: Uint64 = %d", name, got)
		}
		if got := r.Digest(); got != hashsig.Sum([]byte("x")) {
			t.Fatalf("%s: Digest = %v", name, got)
		}
		r.ExpectEOF()
		if err := r.Err(); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
	check(NewReader(bytes.NewReader(enc)), "stream")
	check(NewBytesReader(enc), "bytes")
}

func TestBytesReaderTrailingData(t *testing.T) {
	w := NewAppendWriter(nil)
	w.Uint32(1)
	enc := append(w.AppendedBytes(), 0xFF)
	r := NewBytesReader(enc)
	r.Uint32()
	r.ExpectEOF()
	if r.Err() == nil {
		t.Fatal("trailing data not rejected in bytes mode")
	}
}

func TestBytesReaderTruncation(t *testing.T) {
	w := NewAppendWriter(nil)
	w.Bytes([]byte("hello"))
	enc := w.AppendedBytes()
	for cut := 0; cut < len(enc); cut++ {
		r := NewBytesReader(enc[:cut])
		r.Bytes(1 << 10)
		if r.Err() == nil {
			t.Fatalf("truncation at %d not detected", cut)
		}
	}
}

// TestBytesOwnedCopy: Bytes must return an owned copy even in bytes mode —
// decoded values may be retained past the input buffer's lifetime.
func TestBytesOwnedCopy(t *testing.T) {
	w := NewAppendWriter(nil)
	w.Bytes([]byte("retain-me"))
	enc := w.AppendedBytes()
	r := NewBytesReader(enc)
	got := r.Bytes(1 << 10)
	for i := range enc {
		enc[i] = 0xDB
	}
	if string(got) != "retain-me" {
		t.Fatalf("Bytes aliased the input: %q", got)
	}
}

// TestBytesViewAliases: BytesView is documented to alias in bytes mode.
func TestBytesViewAliases(t *testing.T) {
	w := NewAppendWriter(nil)
	w.Bytes([]byte("view"))
	enc := w.AppendedBytes()
	r := NewBytesReader(enc)
	got := r.BytesView(1 << 10)
	if string(got) != "view" {
		t.Fatalf("BytesView = %q", got)
	}
	enc[len(enc)-1] ^= 0xFF
	if string(got) == "view" {
		t.Fatal("BytesView copied in bytes mode; expected an alias")
	}
	// Stream mode: falls back to an owned copy.
	r2 := NewReader(strings.NewReader(string(AppendBytes(nil, []byte("view")))))
	if got := r2.BytesView(1 << 10); string(got) != "view" {
		t.Fatalf("stream BytesView = %q", got)
	}
}

func TestBytesViewLimit(t *testing.T) {
	w := NewAppendWriter(nil)
	w.Bytes(make([]byte, 100))
	r := NewBytesReader(w.AppendedBytes())
	if got := r.BytesView(10); got != nil || r.Err() == nil {
		t.Fatal("BytesView over limit not rejected")
	}
}

func TestScratchPoolRoundTrip(t *testing.T) {
	b := GetScratch(64)
	if len(b) != 0 || cap(b) < 64 {
		t.Fatalf("GetScratch(64): len=%d cap=%d", len(b), cap(b))
	}
	b = AppendUint64(b, 7)
	PutScratch(b)
}
