// Fixture loaded under the real hashsig import path: the crypto/rand
// allowlist keys on the package path, so this import must NOT fire even
// though the package is deterministic-scoped.
package hashsig

import "crypto/rand"

func keyBytes() []byte {
	b := make([]byte, 32)
	_, _ = rand.Read(b)
	return b
}
