// Fixture proving the exemption is an exact subtree, not a string prefix:
// "transportx" is not "transport" or below it, so the deterministic scope
// still applies and the wall clock fires.
package transportx

import "time"

func stamp() int64 {
	return time.Now().UnixNano() // want `time\.Now in deterministic package`
}
