// Fixture loaded under the real transport import path: the package is
// carved out of the deterministic scope (sockets and reconnect backoff
// are wall-clock by nature), so none of these may fire.
package transport

import (
	"math/rand"
	"time"
)

func deadline() time.Time {
	return time.Now().Add(10 * time.Second)
}

func jitter(d time.Duration) time.Duration {
	return d + time.Duration(rand.Int63n(int64(d)))
}
