// Fixture loaded under the real node import path: the node runtime owns
// the wall clock (tick cadence, stall detection) and is exempt from the
// deterministic scope, so this must not fire.
package node

import "time"

func stalled(last time.Time, patience time.Duration) bool {
	return time.Since(last) > patience
}
