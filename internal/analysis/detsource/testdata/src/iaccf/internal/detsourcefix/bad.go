// Fixture for the detsource analyzer: wall clocks, the global math/rand
// generator, and off-allowlist crypto/rand imports all fire.
package detsourcefix

import (
	crand "crypto/rand" // want `crypto/rand imported in deterministic package`
	"math/rand"
	"time"
)

func stamp() int64 {
	return time.Now().UnixNano() // want `time\.Now in deterministic package`
}

func elapsed(t0 time.Time) time.Duration {
	return time.Since(t0) // want `time\.Since in deterministic package`
}

func pick(n int) int {
	return rand.Intn(n) // want `rand\.Intn draws from the global unseeded generator`
}

func nonce() []byte {
	b := make([]byte, 32)
	_, _ = crand.Read(b)
	return b
}
