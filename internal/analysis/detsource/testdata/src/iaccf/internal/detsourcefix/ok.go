package detsourcefix

import "math/rand"

// Explicitly seeded generators replay bit-for-bit from the seed (the sim
// package's pattern) and must not fire.
func shuffled(seed int64, n int) []int {
	r := rand.New(rand.NewSource(seed))
	out := make([]int, n)
	for i := range out {
		out[i] = r.Intn(i + 1)
	}
	return out
}
