// Package detsource forbids nondeterminism sources in the deterministic
// core (see analysis.Deterministic): wall-clock reads (time.Now, Since,
// Until) and the global math/rand generators, whose process-local state
// makes re-execution irreproducible — an auditor replaying the ledger
// would derive different bytes and wrongly blame an honest replica
// (PAPER.md §3; "The Availability-Accountability Dilemma").
//
// Exemptions are encoded here as data, not as suppression comments in the
// checked code:
//
//   - Seeded generators stay legal everywhere: rand.New, rand.NewSource
//     (and the v2 PCG/ChaCha8 constructors) take an explicit seed, so the
//     consensus simulation's schedule derives from its run seed and
//     replays bit-for-bit. Only the package-level convenience functions,
//     which draw from the ambient global source, are flagged.
//   - crypto/rand is allowed only in the packages listed in randAllow:
//     hashsig draws key material and nonce commitments there, which is
//     replica-local secret state, never replicated state. Any other
//     deterministic package importing crypto/rand is flagged at the
//     import, keeping the randomness boundary auditable in one table.
package detsource

import (
	"go/ast"
	"go/types"
	"strconv"

	"iaccf/internal/analysis"
	"iaccf/internal/analysis/taint"
)

// Analyzer is the detsource pass.
var Analyzer = &analysis.Analyzer{
	Name: "detsource",
	Doc: "forbid wall clocks and unseeded randomness in the deterministic " +
		"packages; seeded rand.New and the hashsig crypto/rand boundary are exempt",
	Run: run,
}

// randAllow is the randomness allowlist: deterministic packages that may
// import crypto/rand, with the reason on record.
var randAllow = map[string]string{
	// Key generation and nonce-commitment draws: replica-local secrets,
	// never part of replicated state (paper §3.1, Lemma 3).
	"iaccf/internal/hashsig": "key material and nonce commitments",
}

// seededConstructors are the math/rand entry points that take an explicit
// seed (or return a source to seed); everything else at package level
// draws from the global generator and is flagged.
var seededConstructors = map[string]bool{
	"New":        true,
	"NewSource":  true,
	"NewZipf":    true, // takes a *Rand the caller already seeded
	"NewPCG":     true, // math/rand/v2
	"NewChaCha8": true, // math/rand/v2
}

func run(pass *analysis.Pass) error {
	if !analysis.Deterministic(pass.Pkg.Path()) {
		return nil
	}
	for _, file := range pass.Files {
		if pass.InTestFile(file.Pos()) {
			continue
		}
		checkImports(pass, file)
		checkCalls(pass, file)
	}
	return nil
}

// checkImports flags crypto/rand imports outside the allowlist.
func checkImports(pass *analysis.Pass, file *ast.File) {
	for _, imp := range file.Imports {
		path, err := strconv.Unquote(imp.Path.Value)
		if err != nil || path != "crypto/rand" {
			continue
		}
		if _, ok := randAllow[pass.Pkg.Path()]; ok {
			continue
		}
		pass.Reportf(imp.Pos(), "crypto/rand imported in deterministic package %s; randomness enters the system only through the audited allowlist (currently hashsig) — derive values from seeded state or move the draw behind hashsig", pass.Pkg.Path())
	}
}

func checkCalls(pass *analysis.Pass, file *ast.File) {
	info := pass.TypesInfo
	ast.Inspect(file, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := taint.Callee(info, call)
		if fn == nil || fn.Pkg() == nil {
			return true
		}
		switch fn.Pkg().Path() {
		case "time":
			switch fn.Name() {
			case "Now", "Since", "Until":
				pass.Reportf(call.Pos(), "time.%s in deterministic package %s; replicas cannot reproduce wall-clock reads — thread a logical clock or take the value as an input", fn.Name(), pass.Pkg.Path())
			}
		case "math/rand", "math/rand/v2":
			if isMethod(fn) {
				return true // methods run on a *Rand the caller seeded
			}
			if !seededConstructors[fn.Name()] {
				pass.Reportf(call.Pos(), "%s.%s draws from the global unseeded generator in deterministic package %s; construct a seeded source (rand.New(rand.NewSource(seed))) so re-execution reproduces it", shortPkg(fn.Pkg().Path()), fn.Name(), pass.Pkg.Path())
			}
		}
		return true
	})
}

// isMethod reports whether fn has a receiver (e.g. (*rand.Rand).Intn).
func isMethod(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	return ok && sig.Recv() != nil
}

func shortPkg(path string) string {
	for i := len(path) - 1; i >= 0; i-- {
		if path[i] == '/' {
			return path[i+1:]
		}
	}
	return path
}
