package detsource_test

import (
	"testing"

	"iaccf/internal/analysis/analysistest"
	"iaccf/internal/analysis/detsource"
)

func TestDetSource(t *testing.T) {
	// The second fixture is loaded under the real hashsig import path to
	// exercise the crypto/rand allowlist (no expectations: it must be clean).
	analysistest.Run(t, detsource.Analyzer,
		"iaccf/internal/detsourcefix",
		"iaccf/internal/hashsig",
	)
}
