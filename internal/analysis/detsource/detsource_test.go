package detsource_test

import (
	"testing"

	"iaccf/internal/analysis/analysistest"
	"iaccf/internal/analysis/detsource"
)

func TestDetSource(t *testing.T) {
	// The second fixture is loaded under the real hashsig import path to
	// exercise the crypto/rand allowlist (no expectations: it must be clean).
	// transport and node are loaded under their real import paths to
	// exercise the non-deterministic carve-out (no expectations: both must
	// be clean); transportx proves the carve-out is an exact subtree, not
	// a string prefix.
	analysistest.Run(t, detsource.Analyzer,
		"iaccf/internal/detsourcefix",
		"iaccf/internal/hashsig",
		"iaccf/internal/transport",
		"iaccf/internal/node",
		"iaccf/internal/transportx",
	)
}
