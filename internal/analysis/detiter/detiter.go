// Package detiter flags map iteration whose order can leak into replicated
// state. In the deterministic core (every package under iaccf/internal/
// except the analysis tooling — see analysis.Deterministic), the bytes fed
// to hash writers, signers, and wire encoders must be identical on every
// replica; Go's map iteration order is deliberately randomized, so a
// `range` over a map that reaches one of those sinks makes an honest
// replica blameable (PAPER.md §3, §6). Two shapes are reported:
//
//   - a sink call — hashing (iaccf/internal/hashsig, crypto/sha*),
//     signing, wire encoding (iaccf/internal/wire append functions and
//     Writer methods), or merkle tree appends — anywhere inside the body
//     of a map-range loop;
//   - an append inside a map-range body to a slice declared outside the
//     loop ("collect"), unless the slice is passed to a sort call
//     (sort.* / slices.Sort*) after the loop. Collect-then-sort is the
//     sanctioned pattern (kv.Tx.WriteSetDigest, consensus sortedKeys);
//     a collect that escapes unsorted preserves map order.
//
// The fix is champ.RangeCanonical / RangeSorted for store contents, or
// the collect-then-sort idiom for protocol maps.
package detiter

import (
	"go/ast"
	"go/token"
	"go/types"

	"iaccf/internal/analysis"
	"iaccf/internal/analysis/taint"
)

// Analyzer is the detiter pass.
var Analyzer = &analysis.Analyzer{
	Name: "detiter",
	Doc: "flag map iteration feeding hashes, signatures, or wire encodings in " +
		"the deterministic packages; iterate canonically or collect-then-sort",
	Run: run,
}

// sinks are the order-sensitive calls: bytes that reach them must arrive
// in the same order on every replica.
var sinks = []taint.FuncMatch{
	{PkgPath: "iaccf/internal/hashsig", Name: "Sum"},
	{PkgPath: "iaccf/internal/hashsig", Name: "SumMany"},
	{PkgPath: "iaccf/internal/hashsig", Name: "SignAsync"},
	{PkgPath: "iaccf/internal/hashsig", Recv: "Signer", Name: "Sign"},
	{PkgPath: "iaccf/internal/wire", Name: "AppendUint32"},
	{PkgPath: "iaccf/internal/wire", Name: "AppendUint64"},
	{PkgPath: "iaccf/internal/wire", Name: "AppendBytes"},
	{PkgPath: "iaccf/internal/wire", Name: "AppendString"},
	{PkgPath: "iaccf/internal/wire", Name: "AppendDigest"},
	{PkgPath: "iaccf/internal/wire", Recv: "Writer", Name: "Uint32"},
	{PkgPath: "iaccf/internal/wire", Recv: "Writer", Name: "Uint64"},
	{PkgPath: "iaccf/internal/wire", Recv: "Writer", Name: "Bytes"},
	{PkgPath: "iaccf/internal/wire", Recv: "Writer", Name: "String"},
	{PkgPath: "iaccf/internal/wire", Recv: "Writer", Name: "Digest"},
	{PkgPath: "iaccf/internal/wire", Recv: "Writer", Name: "Nonce"},
	{PkgPath: "iaccf/internal/merkle", Recv: "Tree", Name: "Append"},
	{PkgPath: "iaccf/internal/merkle", Recv: "Tree", Name: "AppendLeafHash"},
	{PkgPath: "iaccf/internal/merkle", Recv: "Tree", Name: "AppendAndProve"},
	{PkgPath: "iaccf/internal/merkle", Recv: "Tree", Name: "AppendAndProveLeafHashes"},
	{PkgPath: "iaccf/internal/merkle", Name: "LeafHash"},
	{PkgPath: "crypto/sha256", Name: "Sum256"},
	{PkgPath: "crypto/sha512", Name: "Sum512"},
}

// sorters make a collected slice order-independent again.
var sorters = []taint.FuncMatch{
	{PkgPath: "sort", Name: "Strings"},
	{PkgPath: "sort", Name: "Ints"},
	{PkgPath: "sort", Name: "Float64s"},
	{PkgPath: "sort", Name: "Slice"},
	{PkgPath: "sort", Name: "SliceStable"},
	{PkgPath: "sort", Name: "Sort"},
	{PkgPath: "sort", Name: "Stable"},
	{PkgPath: "slices", Name: "Sort"},
	{PkgPath: "slices", Name: "SortFunc"},
	{PkgPath: "slices", Name: "SortStableFunc"},
}

func run(pass *analysis.Pass) error {
	if !analysis.Deterministic(pass.Pkg.Path()) {
		return nil
	}
	for _, file := range pass.Files {
		if pass.InTestFile(file.Pos()) {
			continue
		}
		for _, decl := range file.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				checkFunc(pass, fd)
			}
		}
	}
	return nil
}

func checkFunc(pass *analysis.Pass, fn *ast.FuncDecl) {
	info := pass.TypesInfo
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		rng, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		t := info.TypeOf(rng.X)
		if t == nil {
			return true
		}
		if _, isMap := t.Underlying().(*types.Map); !isMap {
			return true
		}
		checkMapRange(pass, fn, rng)
		return true
	})
}

func checkMapRange(pass *analysis.Pass, fn *ast.FuncDecl, rng *ast.RangeStmt) {
	info := pass.TypesInfo
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		// Direct order-sensitive sink inside the loop body.
		if m, hit := matchAny(info, call, sinks); hit {
			pass.Reportf(call.Pos(), "map iteration order reaches %s; identical replicas would hash/sign/encode in different orders — iterate with champ.RangeCanonical or sort the keys first", describe(m))
			return true
		}
		// Collect: append into a slice declared outside the loop.
		if id, isApp := appendDst(info, call); isApp {
			obj := info.Uses[id]
			if obj == nil || insideRange(rng, obj.Pos()) {
				return true
			}
			if !sortedAfter(info, fn, rng, obj) {
				pass.Reportf(call.Pos(), "append inside map iteration collects keys/values in map order into %q, which escapes the loop unsorted; sort it after the loop (sortedKeys / sort.Strings) or iterate canonically", id.Name)
			}
		}
		return true
	})
}

// appendDst returns the destination variable of `dst = append(dst, ...)`
// shapes — the first argument of a builtin append call, when it is a plain
// identifier.
func appendDst(info *types.Info, call *ast.CallExpr) (*ast.Ident, bool) {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != "append" {
		return nil, false
	}
	if b, ok := info.Uses[id].(*types.Builtin); !ok || b.Name() != "append" {
		return nil, false
	}
	if len(call.Args) == 0 {
		return nil, false
	}
	dst, ok := ast.Unparen(call.Args[0]).(*ast.Ident)
	return dst, ok
}

func insideRange(rng *ast.RangeStmt, pos token.Pos) bool {
	return pos >= rng.Pos() && pos < rng.End()
}

// sortedAfter reports whether obj is passed to a sort call positioned
// after the range loop within the function.
func sortedAfter(info *types.Info, fn *ast.FuncDecl, rng *ast.RangeStmt, obj types.Object) bool {
	found := false
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rng.End() {
			return true
		}
		if _, hit := matchAny(info, call, sorters); !hit {
			return true
		}
		for _, arg := range call.Args {
			if id, ok := ast.Unparen(arg).(*ast.Ident); ok && info.Uses[id] == obj {
				found = true
			}
		}
		return true
	})
	return found
}

func matchAny(info *types.Info, call *ast.CallExpr, ms []taint.FuncMatch) (taint.FuncMatch, bool) {
	fn := taint.Callee(info, call)
	if fn == nil || fn.Pkg() == nil {
		return taint.FuncMatch{}, false
	}
	recv := ""
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		t := sig.Recv().Type()
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
		}
		if named, ok := t.(*types.Named); ok {
			recv = named.Obj().Name()
		}
	}
	for _, m := range ms {
		if fn.Pkg().Path() == m.PkgPath && fn.Name() == m.Name && recv == m.Recv {
			return m, true
		}
	}
	return taint.FuncMatch{}, false
}

func describe(m taint.FuncMatch) string {
	short := m.PkgPath
	for i := len(short) - 1; i >= 0; i-- {
		if short[i] == '/' {
			short = short[i+1:]
			break
		}
	}
	if m.Recv != "" {
		return short + "." + m.Recv + "." + m.Name
	}
	return short + "." + m.Name
}
