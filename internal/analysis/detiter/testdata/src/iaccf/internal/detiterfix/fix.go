// Fixture for the detiter analyzer: map-iteration order reaching an
// order-sensitive sink (or escaping via an unsorted collect) fires; the
// collect-then-sort idiom and ordered iteration stay silent.
package detiterfix

import (
	"sort"

	"iaccf/internal/hashsig"
	"iaccf/internal/wire"
)

// --- violations ---

func hashInMapOrder(m map[string][]byte) hashsig.Digest {
	var d hashsig.Digest
	for _, v := range m {
		d = hashsig.Sum(v) // want `map iteration order reaches hashsig\.Sum`
	}
	return d
}

func encodeInMapOrder(m map[string]uint64) []byte {
	var b []byte
	for k, v := range m {
		b = wire.AppendString(b, k) // want `map iteration order reaches wire\.AppendString`
		b = wire.AppendUint64(b, v) // want `map iteration order reaches wire\.AppendUint64`
	}
	return b
}

func writerInMapOrder(m map[string]uint64, w *wire.Writer) {
	for _, v := range m {
		w.Uint64(v) // want `map iteration order reaches wire\.Writer\.Uint64`
	}
}

func keysEscapeUnsorted(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k) // want `escapes the loop unsorted`
	}
	return keys
}

// --- sanctioned idioms (must not fire) ---

// Collect-then-sort: the kv.WriteSetDigest / consensus sortedKeys pattern.
func keysSorted(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Slice iteration is ordered; sinks inside it are fine.
func hashSlice(items [][]byte) []hashsig.Digest {
	out := make([]hashsig.Digest, 0, len(items))
	for _, v := range items {
		out = append(out, hashsig.Sum(v))
	}
	return out
}

// Order-insensitive aggregation over a map is fine.
func countMap(m map[string]int) int {
	n := 0
	for _, v := range m {
		n += v
	}
	return n
}

// Appends into a loop-local scratch never observe map order outside the
// iteration.
func localScratch(m map[string][]byte) int {
	total := 0
	for _, v := range m {
		var tmp []byte
		tmp = append(tmp, v...)
		total += len(tmp)
	}
	return total
}
