package detiter_test

import (
	"testing"

	"iaccf/internal/analysis/analysistest"
	"iaccf/internal/analysis/detiter"
)

func TestDetIter(t *testing.T) {
	analysistest.Run(t, detiter.Analyzer, "iaccf/internal/detiterfix")
}
