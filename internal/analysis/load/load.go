// Package load type-checks packages of this module (and analyzer test
// fixtures) without golang.org/x/tools. It leans on two standard
// mechanisms: `go list -export -deps -json` resolves import paths to
// compiled export data through the build cache (works offline), and
// go/importer's gc mode reads those files back. Source is parsed and
// type-checked only for the packages under analysis; every dependency —
// including in-module ones — is imported from export data, which keeps a
// whole-repo load to well under a second.
package load

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one parsed, type-checked package ready for analysis.
type Package struct {
	PkgPath string
	Fset    *token.FileSet
	Files   []*ast.File
	Types   *types.Package
	Info    *types.Info
}

// listed is the subset of `go list -json` output the loader consumes.
type listed struct {
	ImportPath string
	Dir        string
	Export     string
	Standard   bool
	DepOnly    bool
	GoFiles    []string
	Module     *struct{ Path string }
	Error      *struct{ Err string }
}

// goList runs `go list -export -deps -json` in dir over the patterns and
// decodes the package stream.
func goList(dir string, patterns ...string) ([]*listed, error) {
	args := append([]string{"list", "-export", "-deps", "-json=ImportPath,Dir,Export,Standard,DepOnly,GoFiles,Module,Error"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %s: %v\n%s", strings.Join(patterns, " "), err, stderr.String())
	}
	var pkgs []*listed
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		p := new(listed)
		if err := dec.Decode(p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list: decoding output: %v", err)
		}
		if p.Error != nil {
			return nil, fmt.Errorf("go list: %s: %s", p.ImportPath, p.Error.Err)
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// Exports maps each listed package (dependencies included) to its export
// data file. Extra std roots can be named alongside relative patterns so
// fixture-only imports resolve too.
func Exports(dir string, patterns ...string) (map[string]string, error) {
	pkgs, err := goList(dir, patterns...)
	if err != nil {
		return nil, err
	}
	exports := make(map[string]string, len(pkgs))
	for _, p := range pkgs {
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
	}
	return exports, nil
}

// Importer returns a types.Importer that resolves import paths through the
// exports map (import path -> gc export data file).
func Importer(fset *token.FileSet, exports map[string]string) types.Importer {
	return importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		f, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(f)
	})
}

// newInfo allocates the types.Info maps the analyzers rely on.
func newInfo() *types.Info {
	return &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
		Instances:  map[*ast.Ident]types.Instance{},
	}
}

func check(fset *token.FileSet, pkgPath string, files []*ast.File, imp types.Importer) (*Package, error) {
	info := newInfo()
	conf := types.Config{
		Importer: imp,
		Sizes:    types.SizesFor("gc", build.Default.GOARCH),
	}
	tpkg, err := conf.Check(pkgPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("type-checking %s: %v", pkgPath, err)
	}
	return &Package{PkgPath: pkgPath, Fset: fset, Files: files, Types: tpkg, Info: info}, nil
}

// Packages loads every in-module package matched by the patterns (run from
// dir, typically the repo root), parsed from source and type-checked
// against export data for all dependencies. Test files are not included —
// the analyzers skip them anyway, and `go vet` covers them separately.
func Packages(dir string, patterns ...string) ([]*Package, error) {
	pkgs, err := goList(dir, patterns...)
	if err != nil {
		return nil, err
	}
	exports := make(map[string]string, len(pkgs))
	for _, p := range pkgs {
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
	}
	fset := token.NewFileSet()
	imp := Importer(fset, exports)
	var out []*Package
	for _, p := range pkgs {
		if p.Standard || p.DepOnly || p.Module == nil || len(p.GoFiles) == 0 {
			continue
		}
		var files []*ast.File
		for _, name := range p.GoFiles {
			f, err := parser.ParseFile(fset, filepath.Join(p.Dir, name), nil, parser.ParseComments)
			if err != nil {
				return nil, err
			}
			files = append(files, f)
		}
		pkg, err := check(fset, p.ImportPath, files, imp)
		if err != nil {
			return nil, err
		}
		out = append(out, pkg)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].PkgPath < out[j].PkgPath })
	return out, nil
}

// Dir parses every non-test .go file in dir and type-checks the result as
// package pkgPath, resolving imports through the exports map. This is the
// fixture loader: a fixture directory under testdata/src/<pkgPath> becomes
// a package whose path the analyzers' package-scoping rules see.
func Dir(dir, pkgPath string, exports map[string]string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	var files []*ast.File
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("no Go files in %s", dir)
	}
	return check(fset, pkgPath, files, Importer(fset, exports))
}

// RepoRoot walks up from dir to the directory containing go.mod.
func RepoRoot(dir string) (string, error) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod above %s", dir)
		}
		dir = parent
	}
}
