// Package taint is the intra-procedural alias-escape engine behind the
// poolown and viewretain analyzers. Both enforce the same shape of rule —
// "this call hands you a slice you may use here but must not retain" — so
// both are expressed as a Rule over this engine: calls matching Sources
// taint the value they return, taint propagates through the aliasing
// operations Go offers for slices (assignment, sub-slicing, append to the
// same backing array, composite literals, range), and retention sinks
// (returns, stores into fields or globals, channel sends, goroutine
// captures) on tainted values are reported. Calls are trusted boundaries:
// passing a tainted value as an argument is always allowed, because every
// audited sink — hashing, verification, tx.Put, copy — is a call, and the
// callee's documented contract governs what it may keep.
//
// The engine is deliberately flow-insensitive about aliasing (a taint
// fact, once established for a variable, holds for the whole function)
// and position-based about release: a value released by a Release call
// (pool Put) must not be used at any later source position inside the
// release's enclosing block. That approximation matches how the commit
// path actually writes this code — straight-line Get ... Put, or
// defer-Put — and deferred releases are exempt by construction. What the
// engine cannot see is documented in internal/analysis/README.md.
package taint

import (
	"go/ast"
	"go/token"
	"go/types"

	"iaccf/internal/analysis"
)

// FuncMatch identifies a function or method by package path, receiver type
// name (empty for package-level functions), and name.
type FuncMatch struct {
	PkgPath string
	Recv    string // named type of the receiver, pointer stripped; "" = none
	Name    string
}

// Rule configures one run of the engine over a package.
type Rule struct {
	// Sources taint the value their call returns.
	Sources []FuncMatch
	// Release marks calls that end the tainted value's lifetime (pool
	// Put): subsequent uses of the value in the same block are reported.
	// Deferred releases do not arm the check.
	Release []FuncMatch
	// Kind names the tainted thing in diagnostics, e.g. "pooled buffer".
	Kind string
}

// Callee resolves the called function or method, or nil.
func Callee(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := info.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			fn, _ := sel.Obj().(*types.Func)
			return fn
		}
		fn, _ := info.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}

// matches reports whether call resolves to one of the FuncMatches.
func matches(info *types.Info, call *ast.CallExpr, ms []FuncMatch) (FuncMatch, bool) {
	fn := Callee(info, call)
	if fn == nil {
		return FuncMatch{}, false
	}
	return match(fn, ms)
}

// matchesFunc reports whether fn is one of the FuncMatches.
func matchesFunc(fn *types.Func, ms []FuncMatch) bool {
	_, ok := match(fn, ms)
	return ok
}

func match(fn *types.Func, ms []FuncMatch) (FuncMatch, bool) {
	if fn.Pkg() == nil {
		return FuncMatch{}, false
	}
	recv := ""
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		t := sig.Recv().Type()
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
		}
		if n, ok := t.(*types.Named); ok {
			recv = n.Obj().Name()
		}
	}
	for _, m := range ms {
		if fn.Pkg().Path() == m.PkgPath && fn.Name() == m.Name && recv == m.Recv {
			return m, true
		}
	}
	return FuncMatch{}, false
}

// source is one taint origin: a matched Source call site.
type source struct {
	pos  token.Pos // the Get/BytesView call, for diagnostics
	desc string    // "pool.Bytes.Get" etc.
}

// release is one armed use-after-release window.
type release struct {
	src      *source
	after    token.Pos // uses past this position are dead
	until    token.Pos // ... up to the end of the release's enclosing block
	callPos  token.Pos
	callEnd  token.Pos
	origDesc string
}

// Check runs the rule over every function in the pass's package.
func Check(pass *analysis.Pass, rule Rule) {
	for _, file := range pass.Files {
		if pass.InTestFile(file.Pos()) {
			continue
		}
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			// A function that is itself a declared Source or Release of this
			// rule (wire.GetScratch wrapping pool.Bytes.Get) transfers
			// ownership by design; its body is the boundary, not a leak.
			if fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func); ok {
				if matchesFunc(fn, rule.Sources) || matchesFunc(fn, rule.Release) {
					continue
				}
			}
			checkFunc(pass, rule, fd)
		}
	}
}

type checker struct {
	pass    *analysis.Pass
	rule    Rule
	fn      *ast.FuncDecl
	tainted map[types.Object]*source
	// retaints records positions where an object is re-tainted by a fresh
	// Source call, closing any earlier use-after-release window for it.
	retaints map[types.Object][]token.Pos
}

func checkFunc(pass *analysis.Pass, rule Rule, fn *ast.FuncDecl) {
	c := &checker{
		pass:     pass,
		rule:     rule,
		fn:       fn,
		tainted:  map[types.Object]*source{},
		retaints: map[types.Object][]token.Pos{},
	}
	// Propagate taint to a fixpoint: each pass can extend an alias chain by
	// one assignment, so the statement count bounds the iterations.
	for i := 0; ; i++ {
		if !c.propagate() || i > 1000 {
			break
		}
	}
	// reportSinks must run even with no tainted variables: a Source call
	// can flow straight into a sink (`return r.BytesView(n)`).
	c.reportSinks()
	c.reportUseAfterRelease()
}

// localVar returns the local variable object an identifier denotes, nil
// for package-level names, fields, and non-variables.
func (c *checker) localVar(id *ast.Ident) types.Object {
	obj := c.pass.TypesInfo.Defs[id]
	if obj == nil {
		obj = c.pass.TypesInfo.Uses[id]
	}
	v, ok := obj.(*types.Var)
	if !ok || v.IsField() {
		return nil
	}
	if v.Parent() == c.pass.Pkg.Scope() {
		return nil // package-level: a store there is a sink, not propagation
	}
	return v
}

// taintOf resolves the taint source an expression carries, if any.
// Conversions that copy (to string, to array) launder taint; conversions
// between slice/pointer types and sub-slicing do not.
func (c *checker) taintOf(e ast.Expr) *source {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		if v := c.localVar(e); v != nil {
			return c.tainted[v]
		}
	case *ast.SliceExpr:
		return c.taintOf(e.X)
	case *ast.IndexExpr:
		// Element read from a tainted container, or generic instantiation.
		// Only reference-like elements (slices, pointers, ...) alias the
		// container; b[0] on a []byte reads a value copy.
		if tv, ok := c.pass.TypesInfo.Types[e]; ok {
			if _, basic := tv.Type.Underlying().(*types.Basic); basic {
				return nil
			}
		}
		return c.taintOf(e.X)
	case *ast.StarExpr:
		return c.taintOf(e.X)
	case *ast.UnaryExpr:
		if e.Op == token.AND {
			return c.taintOf(e.X)
		}
	case *ast.CompositeLit:
		for _, el := range e.Elts {
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				el = kv.Value
			}
			if s := c.taintOf(el); s != nil {
				return s
			}
		}
	case *ast.CallExpr:
		if src, ok := matches(c.pass.TypesInfo, e, c.rule.Sources); ok {
			return &source{pos: e.Pos(), desc: srcDesc(src)}
		}
		if tv, ok := c.pass.TypesInfo.Types[e.Fun]; ok && tv.IsType() {
			// Conversion: slice->slice and pointerish conversions keep the
			// backing array; string(...) and [N]T(...) copy.
			switch tv.Type.Underlying().(type) {
			case *types.Slice, *types.Pointer:
				if len(e.Args) == 1 {
					return c.taintOf(e.Args[0])
				}
			}
			return nil
		}
		if id, ok := ast.Unparen(e.Fun).(*ast.Ident); ok && id.Name == "append" {
			if b, ok := c.pass.TypesInfo.Uses[id].(*types.Builtin); ok && b.Name() == "append" && len(e.Args) > 0 {
				// append(tainted, ...) may alias the tainted backing array.
				if s := c.taintOf(e.Args[0]); s != nil {
					return s
				}
				// append(dst, tainted...) copies the *contents* — that is
				// the sanctioned copy-out idiom — but appending a tainted
				// *element* (a view inside a struct, a sub-slice) stores an
				// alias into dst.
				if e.Ellipsis == token.NoPos {
					for _, a := range e.Args[1:] {
						if s := c.taintOf(a); s != nil {
							return s
						}
					}
				}
			}
		}
	}
	return nil
}

func srcDesc(m FuncMatch) string {
	short := m.PkgPath
	if i := lastSlash(short); i >= 0 {
		short = short[i+1:]
	}
	if m.Recv != "" {
		return short + "." + m.Recv + "." + m.Name
	}
	return short + "." + m.Name
}

func lastSlash(s string) int {
	for i := len(s) - 1; i >= 0; i-- {
		if s[i] == '/' {
			return i
		}
	}
	return -1
}

// propagate runs one pass over assignments, declarations, and range
// statements, extending the taint set. It reports whether anything new was
// learned.
func (c *checker) propagate() bool {
	changed := false
	mark := func(id *ast.Ident, s *source) {
		if s == nil {
			return
		}
		v := c.localVar(id)
		if v == nil || c.tainted[v] == s && c.tainted[v] != nil {
			return
		}
		if c.tainted[v] == nil {
			c.tainted[v] = s
			changed = true
		}
	}
	ast.Inspect(c.fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if len(n.Lhs) == len(n.Rhs) {
				for i, rhs := range n.Rhs {
					s := c.taintOf(rhs)
					if s == nil {
						continue
					}
					switch lhs := ast.Unparen(n.Lhs[i]).(type) {
					case *ast.Ident:
						mark(lhs, s)
						if v := c.localVar(lhs); v != nil {
							if call, ok := ast.Unparen(rhs).(*ast.CallExpr); ok {
								if _, isSrc := matches(c.pass.TypesInfo, call, c.rule.Sources); isSrc {
									// The whole assignment (LHS included) is the
									// start of the renewed lifetime.
									c.noteRetaint(v, n.Pos())
								}
							}
						}
					case *ast.IndexExpr:
						// localArr[i] = tainted: the container now holds an
						// alias. Stores into non-local containers are sinks.
						if base, ok := ast.Unparen(lhs.X).(*ast.Ident); ok {
							mark(base, s)
						}
					}
				}
			}
		case *ast.ValueSpec:
			for i, name := range n.Names {
				if i < len(n.Values) {
					mark(name, c.taintOf(n.Values[i]))
				}
			}
		case *ast.RangeStmt:
			// Ranging over a tainted container taints the iteration vars.
			if s := c.taintOf(n.X); s != nil {
				if id, ok := n.Value.(*ast.Ident); ok {
					mark(id, s)
				}
				if id, ok := n.Key.(*ast.Ident); ok {
					mark(id, s)
				}
			}
		}
		return true
	})
	return changed
}

// noteRetaint records that obj was freshly assigned from a Source call at
// pos, which closes any earlier release window for it.
func (c *checker) noteRetaint(obj types.Object, pos token.Pos) {
	for _, p := range c.retaints[obj] {
		if p == pos {
			return
		}
	}
	c.retaints[obj] = append(c.retaints[obj], pos)
}

// funcLits returns the position intervals of function literals within the
// body, so returns inside closures are not confused with the function's
// own returns.
func (c *checker) funcLits() [][2]token.Pos {
	var spans [][2]token.Pos
	ast.Inspect(c.fn.Body, func(n ast.Node) bool {
		if fl, ok := n.(*ast.FuncLit); ok {
			spans = append(spans, [2]token.Pos{fl.Pos(), fl.End()})
		}
		return true
	})
	return spans
}

func within(spans [][2]token.Pos, pos token.Pos) bool {
	for _, s := range spans {
		if pos >= s[0] && pos < s[1] {
			return true
		}
	}
	return false
}

// reportSinks flags retention of tainted values: returns, stores into
// fields/globals/non-local containers, channel sends, goroutine captures.
func (c *checker) reportSinks() {
	info := c.pass.TypesInfo
	lits := c.funcLits()
	ast.Inspect(c.fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.ReturnStmt:
			if within(lits, n.Pos()) {
				return true // a closure's return; the closure rules differ
			}
			for _, res := range n.Results {
				if s := c.taintOf(res); s != nil {
					c.pass.Reportf(n.Pos(), "%s from %s is returned; the caller would retain memory this function does not own — copy it out first", c.rule.Kind, s.desc)
				}
			}
		case *ast.AssignStmt:
			if len(n.Lhs) != len(n.Rhs) {
				return true
			}
			for i, rhs := range n.Rhs {
				s := c.taintOf(rhs)
				if s == nil {
					continue
				}
				switch lhs := ast.Unparen(n.Lhs[i]).(type) {
				case *ast.SelectorExpr:
					if sel, ok := info.Selections[lhs]; ok && sel.Kind() == types.FieldVal {
						c.pass.Reportf(n.Pos(), "%s from %s is stored into field %s; it outlives the scope that owns the memory — copy it first", c.rule.Kind, s.desc, sel.Obj().Name())
					}
				case *ast.Ident:
					if obj := info.Uses[lhs]; obj != nil && obj.Parent() == c.pass.Pkg.Scope() {
						c.pass.Reportf(n.Pos(), "%s from %s is stored into package-level variable %s", c.rule.Kind, s.desc, lhs.Name)
					}
				case *ast.IndexExpr:
					if base, ok := ast.Unparen(lhs.X).(*ast.Ident); ok {
						if c.localVar(base) != nil {
							continue // container-taints the local; handled in propagate
						}
						c.pass.Reportf(n.Pos(), "%s from %s is stored into non-local container %s", c.rule.Kind, s.desc, base.Name)
					} else {
						c.pass.Reportf(n.Pos(), "%s from %s is stored into retained state", c.rule.Kind, s.desc)
					}
				case *ast.StarExpr:
					c.pass.Reportf(n.Pos(), "%s from %s is stored through a pointer; the pointee may outlive the owning scope", c.rule.Kind, s.desc)
				}
			}
		case *ast.SendStmt:
			if s := c.taintOf(n.Value); s != nil {
				c.pass.Reportf(n.Pos(), "%s from %s is sent on a channel; the receiver would use memory this goroutine no longer owns", c.rule.Kind, s.desc)
			}
		case *ast.GoStmt:
			for _, arg := range n.Call.Args {
				if s := c.taintOf(arg); s != nil {
					c.pass.Reportf(n.Pos(), "%s from %s is passed to a goroutine; its lifetime is unbounded relative to the owner's", c.rule.Kind, s.desc)
				}
			}
			if fl, ok := ast.Unparen(n.Call.Fun).(*ast.FuncLit); ok {
				ast.Inspect(fl.Body, func(m ast.Node) bool {
					id, ok := m.(*ast.Ident)
					if !ok {
						return true
					}
					if v := c.localVar(id); v != nil {
						if s := c.tainted[v]; s != nil {
							c.pass.Reportf(id.Pos(), "%s from %s is captured by a goroutine; its lifetime is unbounded relative to the owner's", c.rule.Kind, s.desc)
							return false
						}
					}
					return true
				})
			}
		}
		return true
	})
}

// reportUseAfterRelease flags uses of a tainted variable after a matched
// Release call in the same block (deferred releases excluded).
func (c *checker) reportUseAfterRelease() {
	if len(c.rule.Release) == 0 {
		return
	}
	info := c.pass.TypesInfo
	var releases []release
	// Blocks are tracked so a release only kills uses up to its enclosing
	// block's end: a Put in one branch says nothing about the other branch.
	var blocks []*ast.BlockStmt
	var visit func(n ast.Node) bool
	deferred := map[*ast.CallExpr]bool{}
	ast.Inspect(c.fn.Body, func(n ast.Node) bool {
		if d, ok := n.(*ast.DeferStmt); ok {
			deferred[d.Call] = true
		}
		return true
	})
	visit = func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.BlockStmt:
			blocks = append(blocks, n)
			for _, st := range n.List {
				ast.Inspect(st, visit)
			}
			blocks = blocks[:len(blocks)-1]
			return false
		case *ast.CallExpr:
			if deferred[n] {
				return true
			}
			if _, ok := matches(info, n, c.rule.Release); !ok {
				return true
			}
			if len(n.Args) == 0 {
				return true
			}
			s := c.taintOf(n.Args[0])
			if s == nil {
				return true
			}
			until := c.fn.Body.End()
			if len(blocks) > 0 {
				until = blocks[len(blocks)-1].End()
			}
			releases = append(releases, release{src: s, after: n.End(), until: until, callPos: n.Pos(), callEnd: n.End()})
		}
		return true
	}
	ast.Inspect(c.fn.Body, visit)
	if len(releases) == 0 {
		return
	}
	ast.Inspect(c.fn.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v := c.localVar(id)
		if v == nil {
			return true
		}
		s := c.tainted[v]
		if s == nil {
			return true
		}
		for _, rel := range releases {
			if rel.src != s || id.Pos() <= rel.after || id.Pos() >= rel.until {
				continue
			}
			// A fresh Source assignment to this variable after the release
			// opens a new lifetime; uses from that point on are fine.
			renewed := false
			for _, rp := range c.retaints[v] {
				if rp > rel.after && rp <= id.Pos() {
					renewed = true
					break
				}
			}
			if !renewed {
				c.pass.Reportf(id.Pos(), "%s %q is used after its release at %s; after Put the memory belongs to the pool", c.rule.Kind, id.Name, c.pass.Fset.Position(rel.callPos))
			}
			break
		}
		return true
	})
}
