// Package analysistest runs an analyzer over fixture packages under its
// testdata directory and diffs the diagnostics against `// want` comments,
// mirroring golang.org/x/tools/go/analysis/analysistest with the standard
// library only.
//
// A fixture lives at testdata/src/<importPath>/ relative to the analyzer's
// package directory, and is loaded *as* that import path — which matters
// here, because the analyzers scope themselves by package path
// (analysis.Deterministic, the detsource allowlist). Expectations are
// line-anchored comments:
//
//	x.field = buf // want `stored into field`
//
// The quoted text (backquotes or double quotes) is a regexp matched
// against diagnostics reported on that line; several expectations may
// share one comment. Lines with diagnostics but no matching want, and
// wants with no diagnostic, both fail the test.
package analysistest

import (
	"fmt"
	"go/token"
	"path/filepath"
	"regexp"
	"runtime"
	"strings"
	"testing"

	"iaccf/internal/analysis"
	"iaccf/internal/analysis/load"
)

// exports caches the import-path → export-data mapping for the whole
// repo plus the std packages fixtures may import; `go list` is not cheap
// enough to rerun per test.
var (
	exportsCache map[string]string
	exportsErr   error
	exportsOnce  = make(chan struct{}, 1)
	exportsDone  bool
)

// stdRoots are std packages fixtures may import beyond what the module
// itself depends on. Extending a fixture with a new std import means
// adding it here.
var stdRoots = []string{
	"time", "math/rand", "math/rand/v2", "crypto/rand",
	"crypto/sha256", "crypto/sha512", "sort", "slices", "fmt", "bytes",
}

func exports() (map[string]string, error) {
	exportsOnce <- struct{}{}
	defer func() { <-exportsOnce }()
	if exportsDone {
		return exportsCache, exportsErr
	}
	exportsDone = true
	_, file, _, _ := runtime.Caller(0)
	root, err := load.RepoRoot(filepath.Dir(file))
	if err != nil {
		exportsErr = err
		return nil, err
	}
	exportsCache, exportsErr = load.Exports(root, append([]string{"./..."}, stdRoots...)...)
	return exportsCache, exportsErr
}

// Run loads each fixture package from testdata/src/<importPath> under the
// caller's directory, applies the analyzer, and checks expectations.
func Run(t *testing.T, a *analysis.Analyzer, importPaths ...string) {
	t.Helper()
	_, callerFile, _, ok := runtime.Caller(1)
	if !ok {
		t.Fatal("analysistest: cannot locate caller")
	}
	exp, err := exports()
	if err != nil {
		t.Fatalf("analysistest: resolving export data: %v", err)
	}
	for _, ip := range importPaths {
		dir := filepath.Join(filepath.Dir(callerFile), "testdata", "src", filepath.FromSlash(ip))
		pkg, err := load.Dir(dir, ip, exp)
		if err != nil {
			t.Errorf("loading fixture %s: %v", ip, err)
			continue
		}
		diags, err := analysis.RunAnalyzers(pkg.Fset, pkg.Files, pkg.Types, pkg.Info, []*analysis.Analyzer{a})
		if err != nil {
			t.Errorf("%s on %s: %v", a.Name, ip, err)
			continue
		}
		checkExpectations(t, pkg, diags)
	}
}

// want is one expectation: a regexp that must match a diagnostic on line.
type want struct {
	file string
	line int
	re   *regexp.Regexp
	text string
	hit  bool
}

// wantRE pulls the quoted regexps out of a `// want ...` comment.
var wantRE = regexp.MustCompile("`([^`]*)`|\"((?:[^\"\\\\]|\\\\.)*)\"")

func parseWants(t *testing.T, pkg *load.Package) []*want {
	t.Helper()
	var wants []*want
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				text = strings.TrimSpace(text)
				if !strings.HasPrefix(text, "want ") && text != "want" {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				for _, m := range wantRE.FindAllStringSubmatch(text[len("want"):], -1) {
					lit := m[1]
					if lit == "" {
						lit = m[2]
					}
					re, err := regexp.Compile(lit)
					if err != nil {
						t.Errorf("%s: bad want regexp %q: %v", pos, lit, err)
						continue
					}
					wants = append(wants, &want{file: pos.Filename, line: pos.Line, re: re, text: lit})
				}
			}
		}
	}
	return wants
}

func checkExpectations(t *testing.T, pkg *load.Package, diags []analysis.Diagnostic) {
	t.Helper()
	wants := parseWants(t, pkg)
	for _, d := range diags {
		pos := pkg.Fset.Position(d.Pos)
		matched := false
		for _, w := range wants {
			if w.hit || w.file != pos.Filename || w.line != pos.Line {
				continue
			}
			if w.re.MatchString(d.Message) {
				w.hit = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("%s: unexpected diagnostic: %s", fmtPos(pos), d.Message)
		}
	}
	for _, w := range wants {
		if !w.hit {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", filepath.Base(w.file), w.line, w.text)
		}
	}
}

func fmtPos(pos token.Position) string {
	return fmt.Sprintf("%s:%d:%d", filepath.Base(pos.Filename), pos.Line, pos.Column)
}
