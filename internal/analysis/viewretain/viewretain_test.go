package viewretain_test

import (
	"testing"

	"iaccf/internal/analysis/analysistest"
	"iaccf/internal/analysis/viewretain"
)

func TestViewRetain(t *testing.T) {
	analysistest.Run(t, viewretain.Analyzer, "iaccf/internal/viewretainfix")
}
