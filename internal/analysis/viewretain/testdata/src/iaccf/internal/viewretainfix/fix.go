// Fixture for the viewretain analyzer: BytesView aliases the input frame,
// so retention sinks fire while the decode-scope idioms from the real
// consensus/ledger decoders stay silent.
package viewretainfix

import (
	"iaccf/internal/hashsig"
	"iaccf/internal/wire"
)

type msg struct {
	payload []byte
	digest  hashsig.Digest
}

// --- violations ---

func decodeRetains(r *wire.Reader) *msg {
	m := &msg{}
	v := r.BytesView(1024)
	m.payload = v // want `frame view from wire\.Reader\.BytesView is stored into field payload`
	return m
}

func decodeReturnsView(r *wire.Reader) []byte {
	return r.BytesView(64) // want `frame view from wire\.Reader\.BytesView is returned`
}

func decodeSendsView(r *wire.Reader, ch chan []byte) {
	v := r.BytesView(64)
	ch <- v // want `sent on a channel`
}

// --- sanctioned idioms (must not fire) ---

// Hashing or verifying the view inside the decode scope is the point of
// BytesView; calls are trusted boundaries.
func decodeHashes(r *wire.Reader) hashsig.Digest {
	v := r.BytesView(1024)
	return hashsig.Sum(v)
}

// Copy-then-retain is the documented escape hatch.
func decodeCopies(r *wire.Reader) *msg {
	m := &msg{}
	v := r.BytesView(1024)
	m.payload = append([]byte(nil), v...)
	m.digest = hashsig.Sum(v)
	return m
}

// Reader.Bytes copies; retaining its result is the sanctioned API.
func decodeBytes(r *wire.Reader) []byte {
	return r.Bytes(1024)
}

// string(view) copies.
func decodeString(r *wire.Reader) string {
	v := r.BytesView(64)
	return string(v)
}

// Views held in a local container that never escapes the function
// (the ledger exec-scope ops pattern).
func decodeLocalOps(r *wire.Reader) int {
	type op struct{ val []byte }
	var ops []op
	for i := 0; i < 4; i++ {
		ops = append(ops, op{val: r.BytesView(16)})
	}
	n := 0
	for _, o := range ops {
		n += len(o.val)
	}
	return n
}
