// Package viewretain enforces the decode-aliasing rule from
// internal/wire/wire.go and internal/consensus/README.md: the slice
// returned by wire.Reader.BytesView aliases the input frame, so inside
// the decode scope it may flow into hashing, verification, or any copying
// call — but never into retained state. Everything a decoded message
// keeps must come through wire.Reader.Bytes (which copies) or through an
// explicit copy such as `append([]byte(nil), view...)` or `string(view)`.
// The engine's call-boundary rule encodes the allowed flows: argument
// positions are fine, retention sinks (returns, field stores, channel
// sends, goroutine captures) are not.
package viewretain

import (
	"iaccf/internal/analysis"
	"iaccf/internal/analysis/taint"
)

// Analyzer is the viewretain pass.
var Analyzer = &analysis.Analyzer{
	Name: "viewretain",
	Doc: "enforce wire.Reader.BytesView aliasing rules: a view into the input " +
		"frame must not outlive the decode scope — use Bytes (a copy) for " +
		"anything retained",
	Run: run,
}

func run(pass *analysis.Pass) error {
	taint.Check(pass, taint.Rule{
		Kind: "frame view",
		Sources: []taint.FuncMatch{
			{PkgPath: "iaccf/internal/wire", Recv: "Reader", Name: "BytesView"},
		},
	})
	return nil
}
