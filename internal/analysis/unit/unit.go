// Package unit implements the `go vet -vettool` driver protocol (the role
// golang.org/x/tools/go/analysis/unitchecker plays for upstream analyzers)
// from the standard library alone. The go command invokes the tool three
// ways:
//
//   - `tool -V=full` — print an identifying line the go command hashes
//     into its action cache key, so editing the tool invalidates cached
//     vet results. The line embeds a digest of the tool binary itself.
//   - `tool -flags` — print a JSON description of the tool's flags, so
//     `go vet -<flag>` knows what to forward.
//   - `tool [flags] <file>.cfg` — analyze one package. The cfg file (JSON)
//     carries the package's file list plus, crucially, ImportMap and
//     PackageFile: the go command has already compiled every dependency
//     and points the tool at their gc export data, which go/importer
//     reads back. No source re-typechecking of dependencies happens.
//
// The go command also schedules dependency packages in VetxOnly mode so
// fact-passing analyzers can see upstream facts. This suite's invariants
// are all intra-package (exemptions are tables in the analyzers, not
// facts), so VetxOnly invocations just write an empty facts file and
// exit — which is what keeps `go vet -vettool=iaccfvet ./...` cheap: the
// standard library is skipped in O(1) per package.
package unit

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"sort"
	"strings"

	"iaccf/internal/analysis"
)

// Config mirrors the vet configuration JSON emitted by the go command
// (cmd/go/internal/work's vetConfig); unknown fields are ignored.
type Config struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ModulePath                string
	ModuleVersion             string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// flagDesc is the JSON shape `go vet` expects from `tool -flags`.
type flagDesc struct {
	Name  string `json:"Name"`
	Bool  bool   `json:"Bool"`
	Usage string `json:"Usage"`
}

// Main is the tool entry point: it interprets the driver protocol and
// runs the enabled analyzers over the package in the cfg file. It does
// not return.
func Main(progname string, analyzers []*analysis.Analyzer) {
	args := os.Args[1:]
	enabled := map[string]bool{}
	for _, a := range analyzers {
		enabled[a.Name] = true
	}
	var cfgFile string
	for _, arg := range args {
		switch {
		case arg == "-V=full" || arg == "--V=full":
			fmt.Println(versionLine(progname))
			os.Exit(0)
		case arg == "-flags" || arg == "--flags":
			var fds []flagDesc
			for _, a := range analyzers {
				fds = append(fds, flagDesc{Name: a.Name, Bool: true, Usage: "enable the " + a.Name + " analyzer (default true): " + firstLine(a.Doc)})
			}
			out, _ := json.Marshal(fds)
			fmt.Println(string(out))
			os.Exit(0)
		case strings.HasSuffix(arg, ".cfg"):
			cfgFile = arg
		case strings.HasPrefix(arg, "-"):
			name, val, _ := strings.Cut(strings.TrimLeft(arg, "-"), "=")
			if _, ok := enabled[name]; ok {
				enabled[name] = val != "false" && val != "0"
			}
			// Unknown flags are ignored rather than fatal: the go command
			// only forwards flags this tool declared, but being lenient
			// here costs nothing and survives protocol drift.
		}
	}
	if cfgFile == "" {
		fmt.Fprintf(os.Stderr, "%s: no .cfg file argument (this binary is a `go vet -vettool`; run it through go vet, `make lint`, or standalone with package patterns)\n", progname)
		os.Exit(2)
	}
	var active []*analysis.Analyzer
	for _, a := range analyzers {
		if enabled[a.Name] {
			active = append(active, a)
		}
	}
	diags, err := runCfg(cfgFile, active)
	if err != nil {
		fmt.Fprintf(os.Stderr, "%s: %v\n", progname, err)
		os.Exit(2)
	}
	if len(diags) > 0 {
		for _, d := range diags {
			fmt.Fprintln(os.Stderr, d)
		}
		os.Exit(1)
	}
	os.Exit(0)
}

// versionLine satisfies the go command's `-V=full` contract: at least
// three fields, the second literally "version", and a value that changes
// whenever the tool binary changes so stale cached vet results die.
func versionLine(progname string) string {
	h := sha256.New()
	if exe, err := os.Executable(); err == nil {
		if f, err := os.Open(exe); err == nil {
			_, _ = io.Copy(h, f)
			f.Close()
		}
	}
	return fmt.Sprintf("%s version v0-%x", progname, h.Sum(nil)[:12])
}

func firstLine(s string) string {
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		return s[:i]
	}
	return s
}

// RunCfgForTest exposes the cfg path for tests.
func RunCfgForTest(cfgFile string, analyzers []*analysis.Analyzer) ([]string, error) {
	return runCfg(cfgFile, analyzers)
}

// runCfg analyzes the one package described by the cfg file and returns
// formatted diagnostics.
func runCfg(cfgFile string, analyzers []*analysis.Analyzer) ([]string, error) {
	data, err := os.ReadFile(cfgFile)
	if err != nil {
		return nil, err
	}
	cfg := new(Config)
	if err := json.Unmarshal(data, cfg); err != nil {
		return nil, fmt.Errorf("%s: bad vet config: %v", cfgFile, err)
	}
	// The facts file must exist even when empty: the go command caches it
	// as this package's vet output. This suite passes no facts between
	// packages (exemptions are tables in the analyzers), so it is always
	// empty — and writing it first means every early exit below is valid.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, nil, 0o666); err != nil {
			return nil, err
		}
	}
	// Dependencies (VetxOnly) contribute no diagnostics and no facts, and
	// packages outside this module cannot trip invariants written against
	// iaccf's own APIs: skip without parsing. This is the short-circuit
	// that keeps whole-tree vet runs fast.
	if cfg.VetxOnly || cfg.Standard[cfg.ImportPath] || !strings.HasPrefix(cfg.ImportPath, "iaccf") {
		return nil, nil
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				return nil, nil
			}
			return nil, err
		}
		files = append(files, f)
	}
	compilerImp := importer.ForCompiler(fset, cfg.Compiler, func(path string) (io.ReadCloser, error) {
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
	// Import paths in source resolve through ImportMap (vendoring, test
	// variants) before hitting export data.
	imp := importerFunc(func(path string) (*types.Package, error) {
		if mapped, ok := cfg.ImportMap[path]; ok {
			path = mapped
		}
		if path == "unsafe" {
			return types.Unsafe, nil
		}
		return compilerImp.Import(path)
	})
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
		Instances:  map[*ast.Ident]types.Instance{},
	}
	conf := types.Config{
		Importer:  imp,
		Sizes:     types.SizesFor(cfg.Compiler, build.Default.GOARCH),
		GoVersion: cfg.GoVersion,
	}
	tpkg, err := conf.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return nil, nil
		}
		return nil, err
	}
	diags, err := analysis.RunAnalyzers(fset, files, tpkg, info, analyzers)
	if err != nil {
		return nil, err
	}
	out := make([]string, 0, len(diags))
	for _, d := range diags {
		out = append(out, fmt.Sprintf("%s: %s", fset.Position(d.Pos), d.Message))
	}
	sort.Strings(out)
	return out, nil
}

type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }
