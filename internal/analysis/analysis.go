// Package analysis is a self-contained static-analysis framework plus the
// iaccfvet analyzer suite: build-time enforcement of the invariants this
// repository otherwise states in prose and checks at runtime.
//
// IA-CCF's safety argument needs every replica to reproduce byte-identical
// headers, receipts, and checkpoint digests (PAPER.md §3, §6), and — since
// the allocation-lean commit path landed — it also needs hand-written
// memory-ownership rules for pooled buffers and decode-time aliases to
// hold everywhere. Poison mode and -race property tests catch violations
// that a test happens to execute; the analyzers here catch the whole
// pattern at vet time. See README.md in this directory for the mapping
// from each analyzer to the prose rule it enforces.
//
// The framework deliberately mirrors a small subset of
// golang.org/x/tools/go/analysis (Analyzer, Pass, Diagnostic) so the
// analyzers port to the upstream driver mechanically if the dependency
// ever becomes available; only the standard library is used.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// An Analyzer is one named check over a type-checked package.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and as its enable/disable
	// flag on cmd/iaccfvet.
	Name string
	// Doc is a one-paragraph description; the first line is the summary.
	Doc string
	// Run applies the analyzer to one package, reporting findings through
	// pass.Report.
	Run func(*Pass) error
}

// A Pass presents one type-checked package to an analyzer.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	Report    func(Diagnostic)
}

// A Diagnostic is one finding.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// InTestFile reports whether pos lies in a _test.go file. All analyzers in
// the suite skip test files: the aliasing property tests deliberately
// retain pooled buffers and views across pool cycles to prove the poison
// mode works, and test-local nondeterminism is harmless.
func (p *Pass) InTestFile(pos token.Pos) bool {
	f := p.Fset.File(pos)
	return f == nil || strings.HasSuffix(f.Name(), "_test.go")
}

// RunAnalyzers applies every analyzer to the package and returns the
// diagnostics sorted by position. Analyzer errors (not findings) abort.
func RunAnalyzers(fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info, analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:  a,
			Fset:      fset,
			Files:     files,
			Pkg:       pkg,
			TypesInfo: info,
			Report: func(d Diagnostic) {
				d.Message = a.Name + ": " + d.Message
				diags = append(diags, d)
			},
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s: %s: %w", a.Name, pkg.Path(), err)
		}
	}
	sort.Slice(diags, func(i, j int) bool { return diags[i].Pos < diags[j].Pos })
	return diags, nil
}

// deterministicExempt lists package subtrees under iaccf/internal/ that the
// determinism analyzers (detiter, detsource) do not apply to. Everything
// else under internal/ is covered automatically, so the transport and
// state-transfer packages on the roadmap inherit enforcement the moment
// they exist, with no registration step.
var deterministicExempt = []string{
	// The analysis tooling itself: drivers shell out, fixtures exercise the
	// very patterns the analyzers forbid.
	"iaccf/internal/analysis",
	// The network transport: sockets, reconnect backoff, and write
	// deadlines are wall-clock by nature. Nothing the transport computes
	// feeds a replicated digest — frames are opaque bytes produced and
	// consumed by the deterministic layers above it.
	"iaccf/internal/transport",
	// The node runtime: it owns the real clock (tick cadence, stall
	// detection) and injects time into consensus only through the counted
	// Tick/OnTimeout seam, so replica state stays a pure function of the
	// delivered message sequence.
	"iaccf/internal/node",
	// The load generator: a client-side workload driver that measures
	// wall-clock throughput and paces retries. It runs outside the
	// replicas entirely; nothing it computes is replicated.
	"iaccf/internal/loadgen",
}

// Deterministic reports whether pkgPath is part of the replicated
// deterministic core: the packages whose outputs (headers, receipts,
// digests, wire bytes) every replica must reproduce byte-identically.
func Deterministic(pkgPath string) bool {
	if pkgPath != "iaccf/internal" && !strings.HasPrefix(pkgPath, "iaccf/internal/") {
		return false
	}
	for _, ex := range deterministicExempt {
		if pkgPath == ex || strings.HasPrefix(pkgPath, ex+"/") {
			return false
		}
	}
	return true
}
