// Fixture for the poolown analyzer: every retention sink fires, every
// sanctioned idiom from the real commit path stays silent.
package poolownfix

import (
	"iaccf/internal/pool"
	"iaccf/internal/wire"
)

var bufPool pool.Bytes

var global []byte

type holder struct{ buf []byte }

// --- violations ---

func returnsPooled() []byte {
	b := bufPool.Get(64)
	return b // want `pooled buffer from pool\.Bytes\.Get is returned`
}

func returnsAlias() []byte {
	b := bufPool.Get(64)
	c := b[:16]
	return c // want `pooled buffer from pool\.Bytes\.Get is returned`
}

func storesField(h *holder) {
	b := wire.GetScratch(32)
	h.buf = b // want `pooled buffer from wire\.GetScratch is stored into field buf`
}

func storesGlobal() {
	b := bufPool.Get(8)
	global = b // want `stored into package-level variable global`
}

func sendsOnChannel(ch chan []byte) {
	b := bufPool.Get(16)
	ch <- b // want `sent on a channel`
}

func goroutineArg(sink func([]byte)) {
	b := bufPool.Get(16)
	go sink(b) // want `passed to a goroutine`
}

func goroutineCapture() {
	b := bufPool.Get(16)
	go func() {
		_ = b[0] // want `captured by a goroutine`
	}()
}

func useAfterPut() byte {
	b := bufPool.Get(64)
	b = append(b, 1, 2, 3)
	bufPool.Put(b)
	return b[0] // want `used after its release`
}

// --- sanctioned idioms (must not fire) ---

// Copy-then-retain: append([]byte(nil), b...) is the documented copy-out.
func copyOut() []byte {
	b := bufPool.Get(64)
	b = append(b, 'x')
	out := append([]byte(nil), b...)
	bufPool.Put(b)
	return out
}

// Deferred Put does not arm the use-after-release check; uses between the
// defer and function exit are the whole point of the pattern.
func deferPut() []byte {
	b := wire.GetScratch(64)
	defer wire.PutScratch(b)
	b = append(b, 'x')
	return append([]byte(nil), b...)
}

// Calls are trusted boundaries: hashing, encoding, copying from the
// buffer are all calls and all legal.
func passToCall() {
	b := bufPool.Get(64)
	use(b)
	bufPool.Put(b)
}

// A fresh Get after the Put opens a new lifetime for the variable.
func regetAfterPut() byte {
	b := bufPool.Get(64)
	bufPool.Put(b)
	b = bufPool.Get(128)
	v := b[0]
	bufPool.Put(b)
	return v
}

// string(b) copies, so the result may be retained.
func stringCopy() string {
	b := bufPool.Get(8)
	s := string(b)
	bufPool.Put(b)
	return s
}

func use([]byte) {}
