package poolown_test

import (
	"testing"

	"iaccf/internal/analysis/analysistest"
	"iaccf/internal/analysis/poolown"
)

func TestPoolOwn(t *testing.T) {
	analysistest.Run(t, poolown.Analyzer, "iaccf/internal/poolownfix")
}
