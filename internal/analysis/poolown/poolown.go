// Package poolown enforces the ownership discipline documented in
// internal/pool/pool.go and the "Slice ownership and pooling" section of
// internal/consensus/README.md: a slice obtained from pool.Bytes.Get,
// pool.Slice.Get, or wire.GetScratch is the caller's only until the
// matching Put, and in between it must not leak into anything that
// outlives the call — no returns, no stores into fields or globals, no
// channel sends, no goroutine captures — and must not be touched after
// the Put. The sanctioned escapes remain invisible to the analyzer on
// purpose: passing the buffer to a call (hashing it, copying it out,
// encoding from it) is always allowed, and `append([]byte(nil), buf...)`
// produces an untainted copy the caller may keep.
package poolown

import (
	"iaccf/internal/analysis"
	"iaccf/internal/analysis/taint"
)

// Analyzer is the poolown pass.
var Analyzer = &analysis.Analyzer{
	Name: "poolown",
	Doc: "enforce pooled-buffer ownership: values from pool Get/wire.GetScratch " +
		"must not be retained (returned, stored into fields, sent, or captured) " +
		"and must not be used after the matching Put",
	Run: run,
}

const poolPath = "iaccf/internal/pool"
const wirePath = "iaccf/internal/wire"

func run(pass *analysis.Pass) error {
	taint.Check(pass, taint.Rule{
		Kind: "pooled buffer",
		Sources: []taint.FuncMatch{
			{PkgPath: poolPath, Recv: "Bytes", Name: "Get"},
			{PkgPath: poolPath, Recv: "Slice", Name: "Get"},
			{PkgPath: wirePath, Name: "GetScratch"},
		},
		Release: []taint.FuncMatch{
			{PkgPath: poolPath, Recv: "Bytes", Name: "Put"},
			{PkgPath: poolPath, Recv: "Slice", Name: "Put"},
			{PkgPath: wirePath, Name: "PutScratch"},
		},
	})
	return nil
}
