// Package suite assembles the iaccfvet analyzer set. Both drivers — the
// cmd/iaccfvet vet tool and the repo-wide regression test next to the
// analyzers — use this one list, so they can never drift apart on what
// "the suite" means.
package suite

import (
	"iaccf/internal/analysis"
	"iaccf/internal/analysis/detiter"
	"iaccf/internal/analysis/detsource"
	"iaccf/internal/analysis/poolown"
	"iaccf/internal/analysis/viewretain"
)

// Analyzers returns the full iaccfvet suite in reporting order.
func Analyzers() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		poolown.Analyzer,
		viewretain.Analyzer,
		detiter.Analyzer,
		detsource.Analyzer,
	}
}
