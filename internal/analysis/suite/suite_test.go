package suite_test

import (
	"testing"

	"iaccf/internal/analysis"
	"iaccf/internal/analysis/load"
	"iaccf/internal/analysis/suite"
)

// TestRepoIsClean is the regression gate for the whole suite: every
// package in the module must produce zero diagnostics. A failure here
// means either a real invariant violation landed or an analyzer grew a
// false positive — both block the tree, which is the point.
func TestRepoIsClean(t *testing.T) {
	root, err := load.RepoRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := load.Packages(root, "./...")
	if err != nil {
		t.Fatalf("loading module packages: %v", err)
	}
	if len(pkgs) < 10 {
		t.Fatalf("loaded only %d packages; the loader is silently missing most of the module", len(pkgs))
	}
	analyzers := suite.Analyzers()
	for _, pkg := range pkgs {
		diags, err := analysis.RunAnalyzers(pkg.Fset, pkg.Files, pkg.Types, pkg.Info, analyzers)
		if err != nil {
			t.Errorf("%s: %v", pkg.PkgPath, err)
			continue
		}
		for _, d := range diags {
			t.Errorf("%s: %s", pkg.Fset.Position(d.Pos), d.Message)
		}
	}
}
