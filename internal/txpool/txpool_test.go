package txpool

import (
	"errors"
	"fmt"
	"sync"
	"testing"

	"iaccf/internal/hashsig"
	"iaccf/internal/ledger"
)

func req(author hashsig.Digest, n uint64) ledger.Request {
	return ledger.Request{Author: author, ReqNo: n, Body: []byte(fmt.Sprintf("body-%d", n))}
}

// TestPerSenderOrdering adds one sender's requests out of order and checks
// the drain sees them in ascending ReqNo.
func TestPerSenderOrdering(t *testing.T) {
	p := New(Config{})
	a := hashsig.Sum([]byte("a"))
	for _, n := range []uint64{3, 1, 5, 2, 4} {
		if err := p.Add(req(a, n)); err != nil {
			t.Fatal(err)
		}
	}
	got := p.NextBatch(10)
	if len(got) != 5 {
		t.Fatalf("drained %d, want 5", len(got))
	}
	for i, rq := range got {
		if rq.ReqNo != uint64(i+1) {
			t.Fatalf("position %d has ReqNo %d; order not ascending", i, rq.ReqNo)
		}
	}
}

// TestRoundRobinFairness checks one chatty sender cannot starve another:
// a batch drawn from two active senders interleaves them.
func TestRoundRobinFairness(t *testing.T) {
	p := New(Config{})
	a, b := hashsig.Sum([]byte("a")), hashsig.Sum([]byte("b"))
	for n := uint64(1); n <= 8; n++ {
		if err := p.Add(req(a, n)); err != nil {
			t.Fatal(err)
		}
	}
	if err := p.Add(req(b, 1)); err != nil {
		t.Fatal(err)
	}
	got := p.NextBatch(4)
	var sawB bool
	for _, rq := range got {
		if rq.Author == b {
			sawB = true
		}
	}
	if !sawB {
		t.Fatal("sender b starved out of a 4-request batch by sender a's backlog")
	}
}

// TestDedupAndSeenMemo: a pooled duplicate and a retry of a drained
// request are both rejected; Observe suppresses externally committed
// hashes too.
func TestDedupAndSeenMemo(t *testing.T) {
	p := New(Config{})
	a := hashsig.Sum([]byte("a"))
	r1 := req(a, 1)
	if err := p.Add(r1); err != nil {
		t.Fatal(err)
	}
	if err := p.Add(r1); !errors.Is(err, ErrDuplicate) {
		t.Fatalf("pooled duplicate: %v", err)
	}
	p.NextBatch(1)
	if err := p.Add(r1); !errors.Is(err, ErrDuplicate) {
		t.Fatalf("retry of drained request: %v", err)
	}
	r2 := req(a, 2)
	p.Observe(Hash(&r2))
	if err := p.Add(r2); !errors.Is(err, ErrDuplicate) {
		t.Fatalf("retry of observed request: %v", err)
	}
	// A genuinely new request is still accepted.
	if err := p.Add(req(a, 3)); err != nil {
		t.Fatal(err)
	}
}

// TestBoundedBackpressure: the pool stops at capacity with ErrFull and
// frees space as batches drain.
func TestBoundedBackpressure(t *testing.T) {
	p := New(Config{Capacity: 3})
	a := hashsig.Sum([]byte("a"))
	for n := uint64(1); n <= 3; n++ {
		if err := p.Add(req(a, n)); err != nil {
			t.Fatal(err)
		}
	}
	if err := p.Add(req(a, 4)); !errors.Is(err, ErrFull) {
		t.Fatalf("over capacity: %v", err)
	}
	if got := p.NextBatch(2); len(got) != 2 {
		t.Fatalf("drained %d, want 2", len(got))
	}
	if err := p.Add(req(a, 4)); err != nil {
		t.Fatalf("add after drain: %v", err)
	}
	if p.Len() != 2 {
		t.Fatalf("len %d, want 2", p.Len())
	}
}

// TestTooLarge: bodies over the ledger ingress cap never enter the pool.
func TestTooLarge(t *testing.T) {
	p := New(Config{})
	a := hashsig.Sum([]byte("a"))
	big := ledger.Request{Author: a, ReqNo: 1, Body: make([]byte, ledger.MaxRequestLen+1)}
	if err := p.Add(big); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("oversized body: %v", err)
	}
}

// TestConcurrentAddDrain races adders against a drainer under -race and
// checks conservation: every accepted request is drained exactly once.
func TestConcurrentAddDrain(t *testing.T) {
	p := New(Config{Capacity: 10000})
	const senders, perSender = 8, 200
	var wg sync.WaitGroup
	var accepted sync.Map
	for s := 0; s < senders; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			author := hashsig.Sum([]byte{byte(s)})
			for n := uint64(1); n <= perSender; n++ {
				rq := req(author, n)
				if err := p.Add(rq); err == nil {
					accepted.Store(Hash(&rq), false)
				}
			}
		}(s)
	}
	doneAdd := make(chan struct{})
	done := make(chan struct{})
	var drained []ledger.Request
	go func() {
		defer close(done)
		for {
			b := p.NextBatch(64)
			drained = append(drained, b...)
			if len(b) == 0 {
				select {
				case <-doneAdd:
					if p.Len() == 0 {
						return
					}
				default:
				}
			}
		}
	}()
	wg.Wait()
	close(doneAdd)
	<-done
	var want int
	accepted.Range(func(k, v any) bool { want++; return true })
	if len(drained) != want {
		t.Fatalf("drained %d, accepted %d", len(drained), want)
	}
	seen := make(map[hashsig.Digest]bool)
	for i := range drained {
		h := Hash(&drained[i])
		if seen[h] {
			t.Fatal("request drained twice")
		}
		seen[h] = true
	}
}
