// Package txpool is the batching transaction pool that sits between the
// client submission RPC and the primary's Propose loop. It accepts client
// requests concurrently, deduplicates them by request hash, keeps each
// sender's requests ordered by request number, and hands the proposer
// bounded batches. The pool is bounded: when it is full Add reports
// ErrFull, which the RPC surfaces to the client as backpressure rather
// than queueing without limit (the paper's clients resubmit with backoff).
//
// The pool never inspects request semantics — ordering is per sender
// ⟨author, reqno⟩, matching the ledger's uniqueness rule for client
// requests, so a client streaming pipelined submissions sees them proposed
// in the order it numbered them, even when RPC goroutines race.
package txpool

import (
	"errors"
	"sort"
	"sync"

	"iaccf/internal/hashsig"
	"iaccf/internal/ledger"
)

var (
	// ErrFull reports a pool at capacity; callers should apply backpressure.
	ErrFull = errors.New("txpool: pool full")
	// ErrDuplicate reports a request already pooled or recently drained.
	ErrDuplicate = errors.New("txpool: duplicate request")
	// ErrTooLarge reports a request body over the ledger ingress cap.
	ErrTooLarge = errors.New("txpool: request body exceeds cap")
)

// Config parameterizes a Pool.
type Config struct {
	// Capacity bounds pooled requests across all senders. 0 means
	// DefaultCapacity.
	Capacity int
}

// DefaultCapacity bounds the pool when the caller does not say otherwise:
// a few proposal windows' worth of full batches.
const DefaultCapacity = 4096

// seenBudget bounds the two-generation drained-request memo. Eviction only
// weakens duplicate suppression for very old retries — the ledger records
// the duplicate ⟨t,i⟩ visibly, it does not double-execute silently.
const seenBudget = 1 << 16

// Hash identifies a request for deduplication: the digest of its full wire
// encoding, so two requests differing in any field (author, reqno, body,
// governance flag) never collide.
func Hash(rq *ledger.Request) hashsig.Digest {
	return hashsig.Sum(ledger.EncodeRequest(nil, rq))
}

// sender is one author's pending queue, kept sorted by ReqNo ascending.
type sender struct {
	author hashsig.Digest
	reqs   []ledger.Request
}

// Pool is the batching transaction pool. Safe for concurrent use: RPC
// handler goroutines Add while the node's runtime loop drains NextBatch.
type Pool struct {
	mu       sync.Mutex
	cap      int
	n        int
	senders  map[hashsig.Digest]*sender
	order    []hashsig.Digest // round-robin arrival order of active senders
	next     int              // round-robin cursor into order
	pooled   map[hashsig.Digest]bool
	seenCur  map[hashsig.Digest]bool // drained/committed memo, current gen
	seenPrev map[hashsig.Digest]bool
}

// New builds an empty pool.
func New(cfg Config) *Pool {
	if cfg.Capacity <= 0 {
		cfg.Capacity = DefaultCapacity
	}
	return &Pool{
		cap:     cfg.Capacity,
		senders: make(map[hashsig.Digest]*sender),
		pooled:  make(map[hashsig.Digest]bool),
		seenCur: make(map[hashsig.Digest]bool),
	}
}

// Len reports pooled requests.
func (p *Pool) Len() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.n
}

// Add pools a request. It rejects oversized bodies (ErrTooLarge), exact
// duplicates of pooled or recently drained requests (ErrDuplicate), and
// everything when at capacity (ErrFull). The request is copied shallowly;
// the caller must not mutate rq.Body afterwards.
func (p *Pool) Add(rq ledger.Request) error {
	if len(rq.Body) > ledger.MaxRequestLen {
		return ErrTooLarge
	}
	h := Hash(&rq)
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.pooled[h] || p.seenCur[h] || p.seenPrev[h] {
		return ErrDuplicate
	}
	if p.n >= p.cap {
		return ErrFull
	}
	s := p.senders[rq.Author]
	if s == nil {
		s = &sender{author: rq.Author}
		p.senders[rq.Author] = s
		p.order = append(p.order, rq.Author)
	}
	// Insert keeping the sender's queue sorted by ReqNo: pipelined RPC
	// goroutines may land out of order, but the proposer must see each
	// sender's numbering ascend.
	i := sort.Search(len(s.reqs), func(i int) bool { return s.reqs[i].ReqNo >= rq.ReqNo })
	s.reqs = append(s.reqs, ledger.Request{})
	copy(s.reqs[i+1:], s.reqs[i:])
	s.reqs[i] = rq
	p.pooled[h] = true
	p.n++
	return nil
}

// NextBatch drains up to max requests for proposal, round-robin across
// senders, each sender's requests in ReqNo order. Drained requests move to
// the seen memo so a client retry of an in-flight request is suppressed.
// Returns nil when the pool is empty.
func (p *Pool) NextBatch(max int) []ledger.Request {
	if max <= 0 {
		return nil
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.n == 0 {
		return nil
	}
	var out []ledger.Request
	for len(out) < max && p.n > 0 {
		if p.next >= len(p.order) {
			p.next = 0
		}
		s := p.senders[p.order[p.next]]
		if s == nil || len(s.reqs) == 0 {
			// Compact a drained sender out of the rotation.
			delete(p.senders, p.order[p.next])
			p.order = append(p.order[:p.next], p.order[p.next+1:]...)
			continue
		}
		rq := s.reqs[0]
		s.reqs = s.reqs[1:]
		h := Hash(&rq)
		delete(p.pooled, h)
		p.markSeen(h)
		p.n--
		out = append(out, rq)
		p.next++
	}
	return out
}

// Observe records an externally committed request hash (e.g. a batch a
// backup executed from a pre-prepare) so client retries of it are
// suppressed like drained requests.
func (p *Pool) Observe(h hashsig.Digest) {
	p.mu.Lock()
	p.markSeen(h)
	p.mu.Unlock()
}

func (p *Pool) markSeen(h hashsig.Digest) {
	if len(p.seenCur) >= seenBudget/2 {
		p.seenPrev = p.seenCur
		p.seenCur = make(map[hashsig.Digest]bool)
	}
	p.seenCur[h] = true
}
