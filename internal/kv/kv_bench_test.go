package kv

import (
	"fmt"
	"io"
	"testing"
)

func benchStore(n int) *Store {
	s := NewStore()
	for i := 0; i < n; i++ {
		tx := s.Begin()
		tx.Put(fmt.Sprintf("account_%08d", i), []byte("0000000100"))
		tx.Commit()
	}
	return s
}

// BenchmarkCommit measures one transaction (SmallBank-style: read-modify-
// write of two keys) committing against stores of increasing size.
func BenchmarkCommit(b *testing.B) {
	for _, n := range []int{1000, 100000} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			s := benchStore(n)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				tx := s.Begin()
				src := fmt.Sprintf("account_%08d", i%n)
				dst := fmt.Sprintf("account_%08d", (i+1)%n)
				v, _ := tx.Get(src)
				tx.Put(src, v)
				tx.Put(dst, []byte("0000000200"))
				tx.Commit()
			}
		})
	}
}

// BenchmarkDigest measures checkpoint digest computation d_C over the full
// store: the cost a replica pays at each checkpoint interval.
func BenchmarkDigest(b *testing.B) {
	for _, n := range []int{1000, 10000, 100000} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			s := benchStore(n)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s.Digest()
			}
		})
	}
}

// BenchmarkSerialize measures streaming checkpoint serialization.
func BenchmarkSerialize(b *testing.B) {
	for _, n := range []int{1000, 100000} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			s := benchStore(n)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := s.Serialize(io.Discard); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkWriteSetDigest measures the per-transaction result digest o.
func BenchmarkWriteSetDigest(b *testing.B) {
	s := NewStore()
	tx := s.Begin()
	for i := 0; i < 8; i++ {
		tx.Put(fmt.Sprintf("k%d", i), []byte("value"))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tx.WriteSetDigest()
	}
	b.StopTimer()
	tx.Abort()
}

func benchShardedStore(n, shards int) *ShardedStore {
	s := NewSharded(shards)
	for i := 0; i < n; i++ {
		tx := s.Begin()
		tx.Put(fmt.Sprintf("account_%08d", i), []byte("0000000100"))
		tx.Commit()
	}
	return s
}

// BenchmarkCheckpointDigest is the perf target of the sharded refactor:
// checkpoint digest computation when only a small fraction of shards was
// touched since the last checkpoint. Each iteration commits writes into at
// most dirtyWrites shards (≤10% of 64) and recomputes d_C. The incremental
// path re-hashes only the touched shards; the full-rescan baselines re-hash
// everything, which is what the unsharded store did at every checkpoint.
func BenchmarkCheckpointDigest(b *testing.B) {
	const shards = 64
	const dirtyWrites = 6 // ≤ 6/64 ≈ 9.4% of shards dirty per checkpoint
	for _, n := range []int{10000, 100000, 1000000} {
		b.Run(fmt.Sprintf("incremental/n=%d", n), func(b *testing.B) {
			s := benchShardedStore(n, shards)
			s.CheckpointDigest() // warm the cache; steady state starts clean
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				tx := s.Begin()
				for j := 0; j < dirtyWrites; j++ {
					tx.Put(fmt.Sprintf("account_%08d", (i*dirtyWrites+j)%n), []byte("0000000200"))
				}
				tx.Commit()
				s.CheckpointDigest()
			}
		})
		b.Run(fmt.Sprintf("fullrescan-sharded/n=%d", n), func(b *testing.B) {
			s := benchShardedStore(n, shards)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				tx := s.Begin()
				for j := 0; j < dirtyWrites; j++ {
					tx.Put(fmt.Sprintf("account_%08d", (i*dirtyWrites+j)%n), []byte("0000000200"))
				}
				tx.Commit()
				s.FullRescanDigest()
			}
		})
		b.Run(fmt.Sprintf("fullrescan-flat/n=%d", n), func(b *testing.B) {
			s := benchStore(n)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				tx := s.Begin()
				for j := 0; j < dirtyWrites; j++ {
					tx.Put(fmt.Sprintf("account_%08d", (i*dirtyWrites+j)%n), []byte("0000000200"))
				}
				tx.Commit()
				s.Digest()
			}
		})
	}
}
