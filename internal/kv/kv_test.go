package kv

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"iaccf/internal/wire"
)

func TestBasicTx(t *testing.T) {
	s := NewStore()
	tx := s.Begin()
	tx.Put("alice", []byte("100"))
	tx.Put("bob", []byte("50"))
	if v, ok := tx.Get("alice"); !ok || string(v) != "100" {
		t.Fatal("tx does not see own write")
	}
	if _, ok := s.Get("alice"); ok {
		t.Fatal("uncommitted write visible in store")
	}
	tx.Commit()
	if v, ok := s.Get("alice"); !ok || string(v) != "100" {
		t.Fatal("committed write not visible")
	}
	if s.Len() != 2 {
		t.Fatalf("len %d", s.Len())
	}
}

func TestAbort(t *testing.T) {
	s := NewStore()
	tx := s.Begin()
	tx.Put("k", []byte("v"))
	tx.Abort()
	if _, ok := s.Get("k"); ok {
		t.Fatal("aborted write visible")
	}
}

func TestTxDeleteSemantics(t *testing.T) {
	s := NewStore()
	tx := s.Begin()
	tx.Put("k", []byte("v"))
	tx.Commit()

	tx = s.Begin()
	tx.Delete("k")
	if _, ok := tx.Get("k"); ok {
		t.Fatal("tx sees key it deleted")
	}
	tx.Put("k", []byte("v2"))
	if v, ok := tx.Get("k"); !ok || string(v) != "v2" {
		t.Fatal("put after delete not visible")
	}
	tx.Delete("k")
	tx.Commit()
	if _, ok := s.Get("k"); ok {
		t.Fatal("deleted key visible after commit")
	}
}

func TestTxFinishedPanics(t *testing.T) {
	s := NewStore()
	tx := s.Begin()
	tx.Commit()
	defer func() {
		if recover() == nil {
			t.Fatal("double finish did not panic")
		}
	}()
	tx.Abort()
}

func TestWriteSetDigestDeterministic(t *testing.T) {
	s := NewStore()
	tx1 := s.Begin()
	tx1.Put("b", []byte("2"))
	tx1.Put("a", []byte("1"))
	tx1.Delete("c")

	tx2 := s.Begin()
	tx2.Delete("c")
	tx2.Put("a", []byte("1"))
	tx2.Put("b", []byte("2"))

	if tx1.WriteSetDigest() != tx2.WriteSetDigest() {
		t.Fatal("write-set digest depends on operation order")
	}

	tx3 := s.Begin()
	tx3.Put("a", []byte("1"))
	tx3.Put("b", []byte("3")) // different value
	tx3.Delete("c")
	if tx1.WriteSetDigest() == tx3.WriteSetDigest() {
		t.Fatal("different write sets share a digest")
	}

	tx4 := s.Begin()
	tx4.Put("a", []byte("1"))
	tx4.Put("b", []byte("2"))
	tx4.Put("c", []byte{}) // put of empty vs delete must differ
	if tx1.WriteSetDigest() == tx4.WriteSetDigest() {
		t.Fatal("delete and empty put share a digest")
	}
	tx1.Abort()
	tx2.Abort()
	tx3.Abort()
	tx4.Abort()
}

func TestMarksAndRollback(t *testing.T) {
	s := NewStore()
	apply := func(k, v string) {
		tx := s.Begin()
		tx.Put(k, []byte(v))
		tx.Commit()
	}
	s.Mark(1)
	apply("a", "1")
	s.Mark(2)
	apply("b", "2")
	apply("a", "updated")
	s.Mark(3)
	apply("c", "3")

	if err := s.RollbackTo(3); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get("c"); ok {
		t.Fatal("rollback to 3 kept c")
	}
	if v, _ := s.Get("a"); string(v) != "updated" {
		t.Fatal("rollback to 3 lost batch-2 writes")
	}
	if err := s.RollbackTo(2); err != nil {
		t.Fatal(err)
	}
	if v, _ := s.Get("a"); string(v) != "1" {
		t.Fatal("rollback to 2 state wrong")
	}
	if _, ok := s.Get("b"); ok {
		t.Fatal("rollback to 2 kept b")
	}
	// Mark 3 was consumed by the first rollback, and rollback to 2 discarded
	// everything at or after 2.
	if err := s.RollbackTo(3); err == nil {
		t.Fatal("rollback to consumed mark succeeded")
	}
	if err := s.RollbackTo(1); err != nil {
		t.Fatal(err)
	}
	if s.Len() != 0 {
		t.Fatal("rollback to 1 should empty the store")
	}
}

func TestPruneMarks(t *testing.T) {
	s := NewStore()
	for i := uint64(1); i <= 5; i++ {
		s.Mark(i)
	}
	s.PruneMarks(3)
	if err := s.RollbackTo(2); err == nil {
		t.Fatal("pruned mark usable")
	}
	if err := s.RollbackTo(3); err != nil {
		t.Fatal(err)
	}
}

func TestDigestDeterminism(t *testing.T) {
	a, b := NewStore(), NewStore()
	// Apply the same logical content in different orders/histories.
	for i := 0; i < 200; i++ {
		tx := a.Begin()
		tx.Put(fmt.Sprintf("k%d", i), []byte(fmt.Sprintf("v%d", i)))
		tx.Commit()
	}
	for i := 199; i >= 0; i-- {
		tx := b.Begin()
		tx.Put(fmt.Sprintf("k%d", i), []byte("tmp"))
		tx.Commit()
	}
	for i := 0; i < 200; i++ {
		tx := b.Begin()
		tx.Put(fmt.Sprintf("k%d", i), []byte(fmt.Sprintf("v%d", i)))
		tx.Commit()
	}
	if a.Digest() != b.Digest() {
		t.Fatal("equal contents, different digests")
	}
	tx := b.Begin()
	tx.Put("k0", []byte("changed"))
	tx.Commit()
	if a.Digest() == b.Digest() {
		t.Fatal("different contents, same digest")
	}
}

func TestSerializeRestore(t *testing.T) {
	s := NewStore()
	for i := 0; i < 500; i++ {
		tx := s.Begin()
		tx.Put(fmt.Sprintf("key-%04d", i), bytes.Repeat([]byte{byte(i)}, i%32))
		tx.Commit()
	}
	var buf bytes.Buffer
	if err := s.Serialize(&buf); err != nil {
		t.Fatal(err)
	}
	restored, err := Restore(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if restored.Len() != s.Len() {
		t.Fatalf("restored len %d != %d", restored.Len(), s.Len())
	}
	if restored.Digest() != s.Digest() {
		t.Fatal("restored digest differs")
	}
	for i := 0; i < 500; i += 37 {
		k := fmt.Sprintf("key-%04d", i)
		v, ok := restored.Get(k)
		if !ok || !bytes.Equal(v, bytes.Repeat([]byte{byte(i)}, i%32)) {
			t.Fatalf("restored %s wrong", k)
		}
	}
}

func TestRestoreCorrupt(t *testing.T) {
	if _, err := Restore(bytes.NewReader(nil)); err == nil {
		t.Fatal("empty stream restored")
	}
	if _, err := Restore(bytes.NewReader([]byte{0, 0, 0, 0, 0, 0, 0, 5})); err == nil {
		t.Fatal("truncated stream restored")
	}
	// Unreasonable key length.
	bad := []byte{0, 0, 0, 0, 0, 0, 0, 1, 0xff, 0xff, 0xff, 0xff}
	if _, err := Restore(bytes.NewReader(bad)); err == nil {
		t.Fatal("hostile key length accepted")
	}
	// Trailing data after the declared entries.
	s := NewStore()
	tx := s.Begin()
	tx.Put("k", []byte("v"))
	tx.Commit()
	var buf bytes.Buffer
	if err := s.Serialize(&buf); err != nil {
		t.Fatal(err)
	}
	buf.WriteByte(0x00)
	if _, err := Restore(&buf); err == nil {
		t.Fatal("stream with trailing data restored")
	}
}

func TestClone(t *testing.T) {
	s := NewStore()
	tx := s.Begin()
	tx.Put("a", []byte("1"))
	tx.Commit()
	c := s.Clone()
	tx = c.Begin()
	tx.Put("a", []byte("2"))
	tx.Commit()
	if v, _ := s.Get("a"); string(v) != "1" {
		t.Fatal("clone mutation leaked into original")
	}
	if v, _ := c.Get("a"); string(v) != "2" {
		t.Fatal("clone did not take write")
	}
}

// Regression: Get used to return the slice stored inside the CHAMP map, so
// mutating the result corrupted every snapshot and mark sharing that node.
func TestGetReturnsDefensiveCopy(t *testing.T) {
	s := NewStore()
	tx := s.Begin()
	tx.Put("k", []byte("original"))
	tx.Commit()
	s.Mark(1)
	before := s.Digest()

	v, _ := s.Get("k")
	copy(v, "CLOBBER!")
	if got, _ := s.Get("k"); string(got) != "original" {
		t.Fatal("mutating Store.Get result corrupted the store")
	}
	if s.Digest() != before {
		t.Fatal("mutating Store.Get result changed the store digest")
	}

	tx = s.Begin()
	v, _ = tx.Get("k")
	copy(v, "CLOBBER!")
	if got, _ := tx.Get("k"); string(got) != "original" {
		t.Fatal("mutating Tx.Get snapshot result corrupted the snapshot")
	}
	tx.Put("pending", []byte("buffered"))
	v, _ = tx.Get("pending")
	copy(v, "CLOBBER!")
	tx.Commit()
	if got, _ := s.Get("pending"); string(got) != "buffered" {
		t.Fatal("mutating Tx.Get result corrupted the buffered write")
	}

	if err := s.RollbackTo(1); err != nil {
		t.Fatal(err)
	}
	if got, _ := s.Get("k"); string(got) != "original" {
		t.Fatal("marked snapshot was corrupted through a Get result")
	}
}

// The checkpoint stream is plain wire codec: count, then sorted
// (key, value) pairs, each parseable by wire.Reader.
func TestSerializeIsWireCodec(t *testing.T) {
	s := NewStore()
	tx := s.Begin()
	tx.Put("b", []byte("2"))
	tx.Put("a", []byte("1"))
	tx.Put("c", nil)
	tx.Commit()
	var buf bytes.Buffer
	if err := s.Serialize(&buf); err != nil {
		t.Fatal(err)
	}
	r := wire.NewReader(&buf)
	if n := r.Uint64(); n != 3 {
		t.Fatalf("count = %d", n)
	}
	wantKeys := []string{"a", "b", "c"}
	wantVals := []string{"1", "2", ""}
	for i := range wantKeys {
		if k := r.String(wire.MaxKeyLen); k != wantKeys[i] {
			t.Fatalf("key %d = %q, want %q (stream must be key-sorted)", i, k, wantKeys[i])
		}
		if v := r.Bytes(wire.MaxValueLen); string(v) != wantVals[i] {
			t.Fatalf("val %d = %q", i, v)
		}
	}
	r.ExpectEOF()
	if err := r.Err(); err != nil {
		t.Fatal(err)
	}
}

// Round trip through the wire codec preserves contents, digest, and the
// serialized byte stream itself.
func TestWireRoundTripCanonical(t *testing.T) {
	s := NewStore()
	for i := 0; i < 100; i++ {
		tx := s.Begin()
		tx.Put(fmt.Sprintf("key-%03d", i), bytes.Repeat([]byte{byte(i)}, i%17))
		tx.Commit()
	}
	var first bytes.Buffer
	if err := s.Serialize(&first); err != nil {
		t.Fatal(err)
	}
	restored, err := Restore(bytes.NewReader(first.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	var second bytes.Buffer
	if err := restored.Serialize(&second); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first.Bytes(), second.Bytes()) {
		t.Fatal("serialize -> restore -> serialize is not byte-identical")
	}
	if restored.Digest() != s.Digest() {
		t.Fatal("round trip changed the digest")
	}
}

func TestPutCopiesValue(t *testing.T) {
	s := NewStore()
	v := []byte("mutable")
	tx := s.Begin()
	tx.Put("k", v)
	v[0] = 'X'
	tx.Commit()
	got, _ := s.Get("k")
	if string(got) != "mutable" {
		t.Fatal("Put aliased caller's slice")
	}
}

// Property: a random batch of transactions followed by RollbackTo restores
// the exact prior digest.
func TestQuickRollbackRestoresDigest(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := NewStore()
		for i := 0; i < 50; i++ {
			tx := s.Begin()
			tx.Put(fmt.Sprintf("k%d", rng.Intn(30)), []byte{byte(rng.Int())})
			tx.Commit()
		}
		before := s.Digest()
		s.Mark(100)
		for i := 0; i < 30; i++ {
			tx := s.Begin()
			k := fmt.Sprintf("k%d", rng.Intn(40))
			if rng.Intn(4) == 0 {
				tx.Delete(k)
			} else {
				tx.Put(k, []byte{byte(rng.Int())})
			}
			tx.Commit()
		}
		if err := s.RollbackTo(100); err != nil {
			return false
		}
		return s.Digest() == before
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// Satellite regression: Get/Put/Delete/WriteSetDigest used to silently
// operate on a finished transaction while only Commit/Abort panicked. All
// post-finish use now panics consistently.
func TestTxUseAfterFinishPanics(t *testing.T) {
	ops := map[string]func(tx *Tx){
		"Get":            func(tx *Tx) { tx.Get("k") },
		"Put":            func(tx *Tx) { tx.Put("k", []byte("v")) },
		"Delete":         func(tx *Tx) { tx.Delete("k") },
		"WriteSetDigest": func(tx *Tx) { tx.WriteSetDigest() },
		"Commit":         func(tx *Tx) { tx.Commit() },
		"Abort":          func(tx *Tx) { tx.Abort() },
	}
	for name, op := range ops {
		for _, finish := range []string{"Commit", "Abort"} {
			t.Run(name+"-after-"+finish, func(t *testing.T) {
				for _, store := range []interface{ Begin() *Tx }{NewStore(), NewSharded(4)} {
					tx := store.Begin()
					tx.Put("seed", []byte("x"))
					if finish == "Commit" {
						tx.Commit()
					} else {
						tx.Abort()
					}
					func() {
						defer func() {
							if recover() == nil {
								t.Fatalf("%s after %s did not panic", name, finish)
							}
						}()
						op(tx)
					}()
				}
			})
		}
	}
}
