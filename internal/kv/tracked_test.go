package kv

import (
	"fmt"
	"math/bits"
	"testing"

	"iaccf/internal/champ"
)

func popcount(bs []uint64) int {
	n := 0
	for _, w := range bs {
		n += bits.OnesCount64(w)
	}
	return n
}

func hasShard(bs []uint64, s uint32) bool {
	return bs[s>>6]&(1<<(s&63)) != 0
}

func TestBeginTrackedRecordsTouchedShards(t *testing.T) {
	const shards = 16
	s := NewSharded(shards)
	tx := s.BeginTracked()
	if got := tx.TouchedShards(); popcount(got) != 0 {
		t.Fatalf("fresh tracked tx already touched %v", got)
	}
	want := map[uint32]bool{}
	for i := 0; i < 40; i++ {
		k := fmt.Sprintf("key-%d", i)
		want[champ.ShardOf(k, shards)] = true
		switch i % 3 {
		case 0:
			tx.Put(k, []byte("v"))
		case 1:
			tx.Get(k)
		case 2:
			tx.Delete(k)
		}
	}
	got := tx.TouchedShards()
	if popcount(got) != len(want) {
		t.Fatalf("touched %d shards, want %d", popcount(got), len(want))
	}
	for sh := range want {
		if !hasShard(got, sh) {
			t.Fatalf("shard %d accessed but not recorded", sh)
		}
	}
	tx.Commit()

	// Untracked transactions carry no bitset.
	tx2 := s.Begin()
	tx2.Put("k", []byte("v"))
	if tx2.TouchedShards() != nil {
		t.Fatal("untracked tx reports touched shards")
	}
	tx2.Abort()
}

func TestBeginTrackedWideShardCount(t *testing.T) {
	// Shard counts above 64 need multi-word bitsets.
	const shards = 200
	s := NewSharded(shards)
	tx := s.BeginTracked()
	k := "some-key"
	tx.Put(k, []byte("v"))
	got := tx.TouchedShards()
	if len(got) != (shards+63)/64 {
		t.Fatalf("bitset has %d words", len(got))
	}
	if popcount(got) != 1 || !hasShard(got, champ.ShardOf(k, shards)) {
		t.Fatalf("touched bitset %v, want only shard %d", got, champ.ShardOf(k, shards))
	}
	tx.Abort()
}
