package kv

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"iaccf/internal/champ"
)

func TestShardedBasic(t *testing.T) {
	s := NewSharded(8)
	if s.ShardCount() != 8 {
		t.Fatalf("shard count %d", s.ShardCount())
	}
	tx := s.Begin()
	tx.Put("alice", []byte("100"))
	tx.Put("bob", []byte("50"))
	if v, ok := tx.Get("alice"); !ok || string(v) != "100" {
		t.Fatal("tx does not see own write")
	}
	if _, ok := s.Get("alice"); ok {
		t.Fatal("uncommitted write visible")
	}
	tx.Commit()
	if v, ok := s.Get("alice"); !ok || string(v) != "100" {
		t.Fatal("committed write not visible")
	}
	if s.Len() != 2 {
		t.Fatalf("len %d", s.Len())
	}
	tx = s.Begin()
	tx.Delete("alice")
	tx.Commit()
	if _, ok := s.Get("alice"); ok {
		t.Fatal("deleted key visible")
	}
	if s.Len() != 1 {
		t.Fatalf("len %d after delete", s.Len())
	}
}

func TestShardedSnapshotIsolation(t *testing.T) {
	s := NewSharded(4)
	tx := s.Begin()
	tx.Put("k", []byte("v1"))
	tx.Commit()

	// A transaction begun now must not see writes committed after it began.
	reader := s.Begin()
	writer := s.Begin()
	writer.Put("k", []byte("v2"))
	writer.Commit()
	if v, _ := reader.Get("k"); string(v) != "v1" {
		t.Fatalf("snapshot read %q, want v1", v)
	}
	reader.Abort()
	if v, _ := s.Get("k"); string(v) != "v2" {
		t.Fatal("later commit lost")
	}
}

// applyRandom drives the same pseudo-random workload against any set of
// stores sharing the Begin/Tx interface.
type txStore interface {
	Begin() *Tx
}

func applyRandom(rng *rand.Rand, ops int, stores ...txStore) {
	for i := 0; i < ops; i++ {
		txs := make([]*Tx, len(stores))
		for j, s := range stores {
			txs[j] = s.Begin()
		}
		for k := 0; k < 1+rng.Intn(4); k++ {
			key := fmt.Sprintf("key-%d", rng.Intn(200))
			if rng.Intn(5) == 0 {
				for _, tx := range txs {
					tx.Delete(key)
				}
			} else {
				val := []byte(fmt.Sprintf("val-%d", rng.Int()))
				for _, tx := range txs {
					tx.Put(key, val)
				}
			}
		}
		for _, tx := range txs {
			tx.Commit()
		}
	}
}

// The satellite property: sharded and unsharded stores fed identical random
// workloads produce identical canonical digests, and the sharded store's
// incremental checkpoint digest always equals a from-scratch recomputation.
func TestQuickShardedMatchesUnsharded(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		flat := NewStore()
		counts := []int{1, 2, 7, 16}
		sharded := make([]*ShardedStore, len(counts))
		stores := []txStore{flat}
		for i, n := range counts {
			sharded[i] = NewSharded(n)
			stores = append(stores, sharded[i])
		}
		applyRandom(rng, 40, stores...)

		want := flat.Digest()
		for i, s := range sharded {
			if s.Len() != flat.Len() {
				t.Logf("shards=%d: len %d != %d", counts[i], s.Len(), flat.Len())
				return false
			}
			// Flat digest is partition-independent.
			if s.Digest() != want {
				t.Logf("shards=%d: flat digest diverges from unsharded store", counts[i])
				return false
			}
			// Incremental == full rescan.
			if s.CheckpointDigest() != s.FullRescanDigest() {
				t.Logf("shards=%d: incremental checkpoint digest != full rescan", counts[i])
				return false
			}
			// Identical state reached by a different history (restore) gives
			// an identical checkpoint digest.
			var buf bytes.Buffer
			if err := s.Serialize(&buf); err != nil {
				t.Log(err)
				return false
			}
			restored, err := RestoreSharded(&buf)
			if err != nil {
				t.Log(err)
				return false
			}
			if restored.CheckpointDigest() != s.CheckpointDigest() {
				t.Logf("shards=%d: restored checkpoint digest diverges", counts[i])
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 8}); err != nil {
		t.Fatal(err)
	}
}

func TestShardedCheckpointDigestBindsShardCount(t *testing.T) {
	a, b := NewSharded(4), NewSharded(8)
	for _, s := range []*ShardedStore{a, b} {
		tx := s.Begin()
		tx.Put("k", []byte("v"))
		tx.Commit()
	}
	if a.Digest() != b.Digest() {
		t.Fatal("flat digest must not depend on shard count")
	}
	if a.CheckpointDigest() == b.CheckpointDigest() {
		t.Fatal("checkpoint digest must commit to the shard count")
	}
}

func TestShardedDirtyTracking(t *testing.T) {
	s := NewSharded(16)
	for i := 0; i < 200; i++ {
		tx := s.Begin()
		tx.Put(fmt.Sprintf("key-%d", i), []byte("v"))
		tx.Commit()
	}
	d1 := s.CheckpointDigest()
	if got := s.DirtyShards(); got != 0 {
		t.Fatalf("%d dirty shards after checkpoint", got)
	}
	// An untouched store re-checkpoints to the same digest with zero work.
	if s.CheckpointDigest() != d1 {
		t.Fatal("checkpoint digest unstable with no writes")
	}
	// One write dirties exactly the owning shard.
	tx := s.Begin()
	tx.Put("key-0", []byte("changed"))
	tx.Commit()
	if got := s.DirtyShards(); got != 1 {
		t.Fatalf("one write dirtied %d shards", got)
	}
	d2 := s.CheckpointDigest()
	if d2 == d1 {
		t.Fatal("changed contents, same checkpoint digest")
	}
	if d2 != s.FullRescanDigest() {
		t.Fatal("incremental digest diverged from full rescan")
	}
	// Deleting restores the exact prior... no — contents differ (key-0
	// changed). Restore the original value and digests must converge again.
	tx = s.Begin()
	tx.Put("key-0", []byte("v"))
	tx.Commit()
	if s.CheckpointDigest() != d1 {
		t.Fatal("identical state, different checkpoint digest")
	}
}

func TestShardedMarksRollbackRestoresDigestCache(t *testing.T) {
	s := NewSharded(8)
	for i := 0; i < 50; i++ {
		tx := s.Begin()
		tx.Put(fmt.Sprintf("k%d", i), []byte("v"))
		tx.Commit()
	}
	d1 := s.CheckpointDigest()
	s.Mark(10)
	for i := 0; i < 50; i++ {
		tx := s.Begin()
		tx.Put(fmt.Sprintf("k%d", i), []byte("other"))
		tx.Commit()
	}
	if s.CheckpointDigest() == d1 {
		t.Fatal("mutated store kept the old digest")
	}
	if err := s.RollbackTo(10); err != nil {
		t.Fatal(err)
	}
	if got := s.CheckpointDigest(); got != d1 {
		t.Fatal("rollback did not restore the checkpoint digest")
	}
	if s.CheckpointDigest() != s.FullRescanDigest() {
		t.Fatal("post-rollback cache inconsistent with contents")
	}
	if err := s.RollbackTo(10); err == nil {
		t.Fatal("consumed mark usable")
	}
}

// Rollback across checkpoint boundaries interacting with PruneMarks: marks
// before the prune point die, later marks stay usable, and the digest cache
// survives the round trip (satellite of the sharded-execution issue).
func TestShardedRollbackAcrossCheckpointsWithPrune(t *testing.T) {
	s := NewSharded(4)
	digests := map[uint64][32]byte{}
	for seq := uint64(1); seq <= 6; seq++ {
		s.Mark(seq)
		tx := s.Begin()
		tx.Put(fmt.Sprintf("batch-%d", seq), []byte("x"))
		tx.Commit()
		if seq%2 == 0 { // checkpoint boundary every 2 batches
			digests[seq] = s.CheckpointDigest()
		}
	}
	s.PruneMarks(3)
	if err := s.RollbackTo(2); err == nil {
		t.Fatal("pruned mark usable")
	}
	if err := s.RollbackTo(5); err != nil {
		t.Fatal(err)
	}
	// State is now "just before batch 5", i.e. right after the seq-4
	// checkpoint: recomputing must reproduce that checkpoint's digest.
	if got := s.CheckpointDigest(); got != digests[4] {
		t.Fatal("rollback across checkpoint boundary lost the checkpointed state")
	}
	if err := s.RollbackTo(3); err != nil {
		t.Fatal(err)
	}
	if got, want := s.CheckpointDigest(), s.FullRescanDigest(); got != want {
		t.Fatal("digest cache corrupt after prune+rollback")
	}
}

func TestShardedSerializeRestore(t *testing.T) {
	s := NewSharded(8)
	for i := 0; i < 300; i++ {
		tx := s.Begin()
		tx.Put(fmt.Sprintf("key-%04d", i), bytes.Repeat([]byte{byte(i)}, i%16))
		tx.Commit()
	}
	var buf bytes.Buffer
	if err := s.Serialize(&buf); err != nil {
		t.Fatal(err)
	}
	restored, err := RestoreSharded(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if restored.Len() != s.Len() || restored.ShardCount() != s.ShardCount() {
		t.Fatal("restored shape differs")
	}
	if restored.CheckpointDigest() != s.CheckpointDigest() {
		t.Fatal("restored checkpoint digest differs")
	}
	if restored.Digest() != s.Digest() {
		t.Fatal("restored flat digest differs")
	}
	// Round trip is canonical.
	var again bytes.Buffer
	if err := restored.Serialize(&again); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), again.Bytes()) {
		t.Fatal("serialize -> restore -> serialize not byte-identical")
	}
}

func TestRestoreShardedRejectsCorrupt(t *testing.T) {
	if _, err := RestoreSharded(bytes.NewReader(nil)); err == nil {
		t.Fatal("empty stream restored")
	}
	// Zero shards.
	if _, err := RestoreSharded(bytes.NewReader([]byte{0, 0, 0, 0})); err == nil {
		t.Fatal("zero shard count accepted")
	}
	// Hostile shard count.
	if _, err := RestoreSharded(bytes.NewReader([]byte{0xff, 0xff, 0xff, 0xff})); err == nil {
		t.Fatal("huge shard count accepted")
	}
	s := NewSharded(4)
	tx := s.Begin()
	tx.Put("some-key", []byte("v"))
	tx.Commit()
	var buf bytes.Buffer
	if err := s.Serialize(&buf); err != nil {
		t.Fatal(err)
	}
	// Trailing data.
	bad := append(append([]byte(nil), buf.Bytes()...), 0x00)
	if _, err := RestoreSharded(bytes.NewReader(bad)); err == nil {
		t.Fatal("trailing data accepted")
	}
	// A key declared in the wrong shard: craft a 2-shard stream putting a
	// key into the shard it does not hash to.
	key := "some-key"
	wrong := 1 - champ.ShardOf(key, 2)
	var crafted bytes.Buffer
	crafted.Write([]byte{0, 0, 0, 2})
	for i := uint32(0); i < 2; i++ {
		if i == wrong {
			crafted.Write([]byte{0, 0, 0, 0, 0, 0, 0, 1}) // one entry
			crafted.Write([]byte{0, 0, 0, byte(len(key))})
			crafted.WriteString(key)
			crafted.Write([]byte{0, 0, 0, 1, 'v'})
		} else {
			crafted.Write([]byte{0, 0, 0, 0, 0, 0, 0, 0}) // empty shard
		}
	}
	if _, err := RestoreSharded(bytes.NewReader(crafted.Bytes())); err == nil {
		t.Fatal("key smuggled into the wrong shard accepted")
	}
}

func TestNewShardedFromStore(t *testing.T) {
	flat := NewStore()
	for i := 0; i < 400; i++ {
		tx := flat.Begin()
		tx.Put(fmt.Sprintf("k%d", i), []byte(fmt.Sprintf("v%d", i)))
		tx.Commit()
	}
	s := NewShardedFromStore(flat, 8)
	if s.Len() != flat.Len() {
		t.Fatalf("split lost keys: %d != %d", s.Len(), flat.Len())
	}
	if s.Digest() != flat.Digest() {
		t.Fatal("split changed the canonical digest")
	}
	// Migration equals native construction.
	native := NewSharded(8)
	flat.Snapshot().Range(func(k string, v []byte) bool {
		tx := native.Begin()
		tx.Put(k, v)
		tx.Commit()
		return true
	})
	if s.CheckpointDigest() != native.CheckpointDigest() {
		t.Fatal("migrated store diverges from natively built store")
	}
}

func TestShardedClone(t *testing.T) {
	s := NewSharded(4)
	tx := s.Begin()
	tx.Put("a", []byte("1"))
	tx.Commit()
	c := s.Clone()
	tx = c.Begin()
	tx.Put("a", []byte("2"))
	tx.Commit()
	if v, _ := s.Get("a"); string(v) != "1" {
		t.Fatal("clone mutation leaked into original")
	}
	if v, _ := c.Get("a"); string(v) != "2" {
		t.Fatal("clone did not take write")
	}
	if s.CheckpointDigest() == c.CheckpointDigest() {
		t.Fatal("diverged clones share a digest")
	}
}

func TestShardedGetReturnsDefensiveCopy(t *testing.T) {
	s := NewSharded(4)
	tx := s.Begin()
	tx.Put("k", []byte("original"))
	tx.Commit()
	before := s.CheckpointDigest()
	v, _ := s.Get("k")
	copy(v, "CLOBBER!")
	if got, _ := s.Get("k"); string(got) != "original" {
		t.Fatal("mutating Get result corrupted the store")
	}
	if s.FullRescanDigest() != before {
		t.Fatal("mutating Get result changed the digest")
	}
}

func TestNewShardedBounds(t *testing.T) {
	if got := NewSharded(0).ShardCount(); got != 1 {
		t.Fatalf("NewSharded(0) has %d shards", got)
	}
	if got := NewSharded(-3).ShardCount(); got != 1 {
		t.Fatalf("NewSharded(-3) has %d shards", got)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("oversized shard count did not panic")
		}
	}()
	NewSharded(MaxShards + 1)
}

// Shard-level cross-auditing: a flat store can compute any one shard's
// digest of its own contents and match the sharded replica's cached value,
// localizing a divergence to the shard that caused it.
func TestShardDigestCrossAudit(t *testing.T) {
	flat := NewStore()
	sharded := NewSharded(8)
	rng := rand.New(rand.NewSource(7))
	applyRandom(rng, 30, flat, sharded)
	for i := 0; i < 8; i++ {
		if flat.ShardDigest(uint32(i), 8) != sharded.ShardDigest(i) {
			t.Fatalf("shard %d digest diverges between flat and sharded views", i)
		}
	}
	// Diverge one key; exactly its owning shard's digest must differ.
	tx := sharded.Begin()
	tx.Put("poisoned", []byte("x"))
	tx.Commit()
	bad := int(ShardOfKey("poisoned", 8))
	for i := 0; i < 8; i++ {
		same := flat.ShardDigest(uint32(i), 8) == sharded.ShardDigest(i)
		if i == bad && same {
			t.Fatal("divergent shard not detected")
		}
		if i != bad && !same {
			t.Fatalf("clean shard %d flagged as divergent", i)
		}
	}
}

// Copy-on-write regression: a digest-cache fill between Mark and later
// writes mutates slices the mark shares by reference; that sharing must
// stay consistent because fills describe the same shard heads, while
// writes must never reach a mark's snapshot.
func TestShardedMarkSharesCacheSafely(t *testing.T) {
	s := NewSharded(8)
	for i := 0; i < 40; i++ {
		tx := s.Begin()
		tx.Put(fmt.Sprintf("k%d", i), []byte("v"))
		tx.Commit()
	}
	s.Mark(1)
	d1 := s.CheckpointDigest() // fills the cache the mark shares
	for i := 0; i < 40; i++ {
		tx := s.Begin()
		tx.Put(fmt.Sprintf("k%d", i), []byte("other"))
		tx.Commit()
	}
	if s.CheckpointDigest() == d1 {
		t.Fatal("writes invisible to the digest")
	}
	if err := s.RollbackTo(1); err != nil {
		t.Fatal(err)
	}
	if got := s.CheckpointDigest(); got != d1 {
		t.Fatal("mark snapshot was corrupted by post-mark writes or cache fills")
	}
	if s.CheckpointDigest() != s.FullRescanDigest() {
		t.Fatal("restored cache inconsistent with restored contents")
	}
	// Read-only and aborted transactions never trigger a copy; the
	// snapshot a reader captured before a commit stays frozen.
	reader := s.Begin()
	v1, _ := reader.Get("k0")
	w := s.Begin()
	w.Put("k0", []byte("newer"))
	w.Commit()
	if v2, _ := reader.Get("k0"); string(v2) != string(v1) {
		t.Fatal("reader snapshot observed a later commit")
	}
	reader.Abort()
}
