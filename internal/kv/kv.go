// Package kv implements the strictly-serializable transactional key-value
// store that IA-CCF replicas execute transactions against (paper §2). It
// supports rollback at transaction granularity (abort) and at batch
// granularity (marks), as L-PBFT's early execution requires (Lemma 1), and
// deterministic checkpoint serialization with content digests (§3.4).
//
// The store is backed by the persistent CHAMP map, so snapshots and
// rollback are O(1) pointer copies.
package kv

import (
	"errors"
	"fmt"
	"hash"
	"io"
	"sort"
	"sync"

	"iaccf/internal/champ"
	"iaccf/internal/hashsig"
	"iaccf/internal/wire"
)

// ErrNoMark reports a rollback to a batch boundary that was never marked or
// has been pruned.
var ErrNoMark = errors.New("kv: no mark for sequence number")

// Store is a transactional key-value store. Transactions execute serially
// (the replica's execution loop is single-threaded, which is what makes the
// history strictly serializable); Store itself is not safe for concurrent
// mutation.
type Store struct {
	cur   *champ.Map
	marks []mark
}

type mark struct {
	seq uint64
	m   *champ.Map
}

// NewStore returns an empty store.
func NewStore() *Store {
	return &Store{cur: champ.Empty()}
}

// Len returns the number of live keys.
func (s *Store) Len() int { return s.cur.Len() }

// Get reads a key outside any transaction. The returned slice is a copy:
// the stored value is shared by every snapshot and mark referencing the same
// CHAMP node, so handing it out directly would let a caller silently corrupt
// history that rollback depends on.
func (s *Store) Get(key string) ([]byte, bool) {
	v, ok := s.cur.Get(key)
	if !ok {
		return nil, false
	}
	return append([]byte(nil), v...), true
}

// Begin starts a transaction. Reads see the current state plus the
// transaction's own writes; nothing is visible to the store until Commit.
func (s *Store) Begin() *Tx {
	return newTx(&storeTxBackend{store: s, base: s.cur})
}

// storeTxBackend runs a transaction against an unsharded Store.
type storeTxBackend struct {
	store *Store
	base  *champ.Map
}

func (b *storeTxBackend) snapshotGet(key string) ([]byte, bool) {
	return b.base.Get(key)
}

func (b *storeTxBackend) apply(writes map[string][]byte, deletes map[string]bool) {
	cur := b.store.cur
	for k := range deletes {
		cur = cur.Delete(k)
	}
	for k, v := range writes {
		cur = cur.Set(k, v)
	}
	b.store.cur = cur
}

// Mark records a rollback point labelled seq, capturing the state before
// the batch with that sequence number executes. Marks are kept until
// PruneMarks.
func (s *Store) Mark(seq uint64) {
	s.marks = append(s.marks, mark{seq: seq, m: s.cur})
}

// RollbackTo restores the state captured by Mark(seq) and discards that
// mark and all later ones.
func (s *Store) RollbackTo(seq uint64) error {
	for i := len(s.marks) - 1; i >= 0; i-- {
		if s.marks[i].seq == seq {
			s.cur = s.marks[i].m
			s.marks = s.marks[:i]
			return nil
		}
	}
	return fmt.Errorf("%w: %d", ErrNoMark, seq)
}

// PruneMarks drops marks with seq < before; batches that have committed can
// no longer be rolled back.
func (s *Store) PruneMarks(before uint64) {
	keep := s.marks[:0]
	for _, m := range s.marks {
		if m.seq >= before {
			keep = append(keep, m)
		}
	}
	s.marks = keep
}

// txBackend is the store side of a transaction: a point-in-time snapshot
// for reads plus an atomic apply of the buffered effects. Store and
// ShardedStore both implement it, so application code always sees the same
// *Tx regardless of how the key space is partitioned.
type txBackend interface {
	snapshotGet(key string) ([]byte, bool)
	apply(writes map[string][]byte, deletes map[string]bool)
}

// Tx is a single transaction: buffered writes over a snapshot. A finished
// transaction (Commit or Abort) is dead: every further use panics, so a
// bug that retains a transaction past its batch is caught immediately
// instead of silently reading stale state or writing into the void.
type Tx struct {
	back    txBackend
	writes  map[string][]byte
	deletes map[string]bool
	done    bool

	// Shard-access tracking (BeginTracked): trackShards > 0 enables it, and
	// touched is a bitset over shard indices recording every key this
	// transaction read, wrote, or deleted. The parallel executor uses it to
	// validate an application's declared shard footprint after the fact.
	trackShards uint32
	touched     []uint64
}

func newTx(back txBackend) *Tx {
	return &Tx{back: back, writes: map[string][]byte{}, deletes: map[string]bool{}}
}

// touch records key's shard when tracking is enabled.
func (t *Tx) touch(key string) {
	if t.trackShards == 0 {
		return
	}
	s := champ.ShardOf(key, t.trackShards)
	t.touched[s>>6] |= 1 << (s & 63)
}

// TouchedShards returns the bitset of shards this transaction accessed
// (word i bit j covers shard i*64+j), or nil when the transaction was not
// started with tracking. The slice is the live bitset; callers must not
// mutate it.
func (t *Tx) TouchedShards() []uint64 { return t.touched }

// active panics if the transaction has already finished.
func (t *Tx) active(op string) {
	if t.done {
		panic("kv: " + op + " on finished transaction")
	}
}

// Get reads key, seeing the transaction's own writes first. Like Store.Get
// it returns a copy, both of snapshot values (shared with marks) and of
// buffered writes (mutating a buffered write through the returned slice
// would change what Commit publishes).
func (t *Tx) Get(key string) ([]byte, bool) {
	t.active("Get")
	t.touch(key)
	if t.deletes[key] {
		return nil, false
	}
	v, ok := t.writes[key]
	if !ok {
		v, ok = t.back.snapshotGet(key)
		if !ok {
			return nil, false
		}
	}
	return append([]byte(nil), v...), true
}

// Put buffers a write. The value is copied.
func (t *Tx) Put(key string, val []byte) {
	t.active("Put")
	t.touch(key)
	delete(t.deletes, key)
	t.writes[key] = append([]byte(nil), val...)
}

// Delete buffers a deletion.
func (t *Tx) Delete(key string) {
	t.active("Delete")
	t.touch(key)
	delete(t.writes, key)
	t.deletes[key] = true
}

// WriteSetDigest returns a deterministic digest of the transaction's write
// set (sorted puts and deletes). The paper stores this hash in each ledger
// transaction entry's result o (§3.1, Fig. 3) so auditors can compare
// replayed effects without serializing whole values into receipts.
func (t *Tx) WriteSetDigest() hashsig.Digest {
	t.active("WriteSetDigest")
	keys := make([]string, 0, len(t.writes)+len(t.deletes))
	for k := range t.writes {
		keys = append(keys, k)
	}
	for k := range t.deletes {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	h := wire.GetScratch(256)
	for _, k := range keys {
		h = wire.AppendString(h, k)
		if t.deletes[k] {
			h = append(h, 0x00)
		} else {
			h = append(h, 0x01)
			h = wire.AppendBytes(h, t.writes[k])
		}
	}
	d := hashsig.Sum(h)
	wire.PutScratch(h)
	return d
}

// Commit applies the buffered effects to the store.
func (t *Tx) Commit() {
	t.active("Commit")
	t.done = true
	t.back.apply(t.writes, t.deletes)
}

// Abort discards the transaction (rollback at transaction granularity).
func (t *Tx) Abort() {
	t.active("Abort")
	t.done = true
}

// Digest returns the deterministic digest of the full store contents. Two
// replicas with identical state produce identical digests regardless of the
// order operations were applied in; this is the key-value half of the
// checkpoint digest d_C that pre-prepare messages carry.
func (s *Store) Digest() hashsig.Digest {
	h := newDigestWriter()
	if err := s.writeSorted(wire.NewWriter(h)); err != nil {
		// digestWriter never fails.
		panic(err)
	}
	return h.sum()
}

// Serialize writes the full store deterministically (sorted by key):
// count, then (klen,key,vlen,val)* in the wire codec.
func (s *Store) Serialize(w io.Writer) error {
	return s.writeSorted(wire.NewWriter(w))
}

// ShardDigest returns the canonical digest of the subset of this store's
// keys that the given shard of a shards-way partition owns — the same value
// ShardedStore.ShardDigest reports for that shard when its contents match.
// An auditor holding a flat replay of the state can thereby pinpoint which
// shard of a sharded replica diverged, shard by shard, without ever
// materializing a sharded copy of the whole store. RangeShard yields keys in
// canonical order already, so the collected entries stream with no sort pass
// (they are collected only because the count is not known up front).
func (s *Store) ShardDigest(shard, shards uint32) hashsig.Digest {
	var entries []sortedEntry
	s.cur.RangeShard(shard, shards, func(k string, v []byte) bool {
		entries = append(entries, sortedEntry{key: k, val: v})
		return true
	})
	return digestOfEntries(entries)
}

func (s *Store) writeSorted(w *wire.Writer) error {
	encodeEntriesSorted(w, collectEntries(make([]sortedEntry, 0, s.cur.Len()), s.cur))
	return w.Flush()
}

// sortedEntry is a (key, value) reference collected while walking a trie,
// for streaming in a deterministic order. Values are never copied.
type sortedEntry struct {
	key string
	val []byte
}

// encodeEntriesSorted sorts entries by key and streams them in the flat
// checkpoint form: count, then (key, value) pairs in ascending key order.
// The flat stream (Store.Serialize, the partition-independent Digest) is
// key-sorted so that it stays a plain wire codec any party can produce
// without knowing champ's hash; per-shard streams use encodeMapCanonical
// instead, which needs no sort pass.
func encodeEntriesSorted(w *wire.Writer, entries []sortedEntry) {
	sort.Slice(entries, func(i, j int) bool { return entries[i].key < entries[j].key })
	w.Uint64(uint64(len(entries)))
	for _, e := range entries {
		w.String(e.key)
		w.Bytes(e.val)
		if w.Err() != nil {
			return
		}
	}
}

// collectEntries gathers one map's contents as sortedEntry references.
func collectEntries(dst []sortedEntry, m *champ.Map) []sortedEntry {
	m.Range(func(k string, v []byte) bool {
		dst = append(dst, sortedEntry{key: k, val: v})
		return true
	})
	return dst
}

// encodeMapCanonical streams one map in the per-shard checkpoint form:
// count, then (key, value) pairs in champ's canonical iteration order. One
// pass over the trie, no intermediate collection and no sort — this is what
// per-dirty-shard digest recomputation pays at every checkpoint, so it is
// the hot half of d_C.
func encodeMapCanonical(w *wire.Writer, m *champ.Map) {
	w.Uint64(uint64(m.Len()))
	m.RangeCanonical(func(k string, v []byte) bool {
		w.String(k)
		w.Bytes(v)
		return w.Err() == nil
	})
}

// digestOfEntries returns the digest of the per-shard serialization of the
// given entries, which must already be in canonical order (as RangeShard
// yields them). The serialization streams straight into a borrowed hasher
// through an unbuffered writer: no bufio buffer, no hasher allocation.
func digestOfEntries(entries []sortedEntry) hashsig.Digest {
	h := borrowDigestWriter()
	w := wire.NewDirectWriter(h)
	w.Uint64(uint64(len(entries)))
	for _, e := range entries {
		w.String(e.key)
		w.Bytes(e.val)
	}
	if err := w.Flush(); err != nil {
		// digestWriter never fails.
		panic(err)
	}
	return h.sumAndReturn()
}

// digestOfMap returns the digest of one map's per-shard serialization.
func digestOfMap(m *champ.Map) hashsig.Digest {
	h := borrowDigestWriter()
	w := wire.NewDirectWriter(h)
	encodeMapCanonical(w, m)
	if err := w.Flush(); err != nil {
		// digestWriter never fails.
		panic(err)
	}
	return h.sumAndReturn()
}

// Restore replaces the store contents with a stream produced by Serialize.
// The stream must contain exactly one checkpoint: trailing data is rejected,
// so distinct byte streams never restore to the same store.
func Restore(r io.Reader) (*Store, error) {
	rd := wire.NewReader(r)
	m := readMap(rd)
	rd.ExpectEOF()
	if err := rd.Err(); err != nil {
		return nil, fmt.Errorf("kv: restore: %w", err)
	}
	return &Store{cur: m}, nil
}

// readMap reads one canonical map stream (count + pairs) from rd. Errors
// stick in the reader; on error the partial map is returned and ignored by
// callers. Every frame boundary annotates a failure with its position, so
// a truncated or oversized stream reports exactly which frame broke — and
// no partially-read map is ever installed into a store (Restore and
// friends only construct the store after a clean ExpectEOF).
func readMap(rd *wire.Reader) *champ.Map {
	n := rd.Uint64()
	rd.Annotate("entry count header")
	m := champ.Empty()
	for i := uint64(0); i < n && rd.Err() == nil; i++ {
		k := rd.String(wire.MaxKeyLen)
		if rd.Err() != nil {
			rd.Annotate("entry %d of %d: key", i, n)
			break
		}
		v := rd.Bytes(wire.MaxValueLen)
		if rd.Err() != nil {
			rd.Annotate("entry %d of %d: value for key %q", i, n, k)
			break
		}
		m = m.Set(k, v)
	}
	return m
}

// Snapshot returns an immutable view of the current contents, for replay
// comparisons by auditors.
func (s *Store) Snapshot() *champ.Map { return s.cur }

// Clone returns an independent store with the same contents (O(1)).
func (s *Store) Clone() *Store {
	return &Store{cur: s.cur}
}

// digestWriter hashes the serialization stream without materializing it.
type digestWriter struct {
	h hash.Hash
}

func newDigestWriter() *digestWriter {
	return &digestWriter{h: hashsig.NewHasher()}
}

// digestWriterPool recycles digestWriters (and their SHA-256 states): shard
// digest recomputation borrows one per dirty shard at every checkpoint.
var digestWriterPool = sync.Pool{New: func() any { return newDigestWriter() }}

func borrowDigestWriter() *digestWriter {
	d := digestWriterPool.Get().(*digestWriter)
	d.h.Reset()
	return d
}

func (d *digestWriter) Write(p []byte) (int, error) { return d.h.Write(p) }

func (d *digestWriter) sum() hashsig.Digest {
	var out hashsig.Digest
	d.h.Sum(out[:0])
	return out
}

// sumAndReturn finalizes the digest and returns the writer to the pool; the
// caller must not use d afterwards.
func (d *digestWriter) sumAndReturn() hashsig.Digest {
	out := d.sum()
	digestWriterPool.Put(d)
	return out
}
