package kv

import (
	"bytes"
	"fmt"
	"strings"
	"testing"
)

// populatedSharded builds a small multi-shard store with keys spread across
// every shard.
func populatedSharded(t *testing.T, shards int) *ShardedStore {
	t.Helper()
	s := NewSharded(shards)
	tx := s.Begin()
	for i := 0; i < 4*shards; i++ {
		tx.Put(fmt.Sprintf("key-%d", i), []byte(fmt.Sprintf("val-%d", i)))
	}
	tx.Commit()
	return s
}

// TestRestoreTruncatedAtEveryOffset cuts a valid stream at every byte
// boundary: no prefix may restore, panic, or return a store, and every
// failure must carry a descriptive message rather than a bare io error.
func TestRestoreTruncatedAtEveryOffset(t *testing.T) {
	s := NewStore()
	tx := s.Begin()
	tx.Put("alpha", []byte("one"))
	tx.Put("beta", []byte("two"))
	tx.Commit()
	var buf bytes.Buffer
	if err := s.Serialize(&buf); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	for cut := 0; cut < len(full); cut++ {
		_, err := Restore(bytes.NewReader(full[:cut]))
		if err == nil {
			t.Fatalf("stream truncated at %d/%d restored", cut, len(full))
		}
		if msg := err.Error(); !strings.Contains(msg, "kv: restore") {
			t.Fatalf("truncation at %d: undescriptive error %q", cut, msg)
		}
	}
	if _, err := Restore(bytes.NewReader(full)); err != nil {
		t.Fatalf("untruncated stream rejected: %v", err)
	}
}

// TestRestoreShardedTruncatedAtEveryOffset is the sharded variant: each cut
// must fail with an error that names the frame it broke in (header, or the
// shard index mid-stream).
func TestRestoreShardedTruncatedAtEveryOffset(t *testing.T) {
	s := populatedSharded(t, 4)
	var buf bytes.Buffer
	if err := s.Serialize(&buf); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	sawShardFrame := false
	for cut := 0; cut < len(full); cut++ {
		_, err := RestoreSharded(bytes.NewReader(full[:cut]))
		if err == nil {
			t.Fatalf("stream truncated at %d/%d restored", cut, len(full))
		}
		msg := err.Error()
		if !strings.Contains(msg, "kv: restore") {
			t.Fatalf("truncation at %d: undescriptive error %q", cut, msg)
		}
		if strings.Contains(msg, "shard ") && strings.Contains(msg, " of 4") {
			sawShardFrame = true
		}
	}
	if !sawShardFrame {
		t.Fatal("no truncation error ever named the shard frame it broke in")
	}
	if _, err := RestoreSharded(bytes.NewReader(full)); err != nil {
		t.Fatalf("untruncated stream rejected: %v", err)
	}
}

// TestRestoreOversizedDeclarations feeds streams whose length fields
// declare more than the stream (or the codec's limits) can hold.
func TestRestoreOversizedDeclarations(t *testing.T) {
	cases := map[string][]byte{
		// Entry count far beyond the bytes that follow.
		"entry count": {0, 0, 0, 0, 0xff, 0xff, 0xff, 0xff},
		// One entry whose key length is hostile.
		"key length": {0, 0, 0, 0, 0, 0, 0, 1, 0xff, 0xff, 0xff, 0xff},
		// One entry with a plausible key but a hostile value length.
		"value length": append(append([]byte{0, 0, 0, 0, 0, 0, 0, 1, 0, 0, 0, 1}, 'k'), 0xff, 0xff, 0xff, 0xff),
	}
	for name, stream := range cases {
		if _, err := Restore(bytes.NewReader(stream)); err == nil {
			t.Fatalf("%s: oversized declaration restored", name)
		}
	}
	// Sharded header declaring more shards than the codec allows.
	huge := []byte{0xff, 0xff, 0xff, 0xff}
	if _, err := RestoreSharded(bytes.NewReader(huge)); err == nil {
		t.Fatal("hostile shard count restored")
	}
}

// TestRestoreShardedForAuditsShardCount: a stream with a valid but
// different partition than the restoring replica's configuration must be
// rejected before any shard bytes are read.
func TestRestoreShardedForAuditsShardCount(t *testing.T) {
	s := populatedSharded(t, 4)
	var buf bytes.Buffer
	if err := s.Serialize(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := RestoreShardedFor(bytes.NewReader(buf.Bytes()), 2); err == nil {
		t.Fatal("4-shard stream restored into a 2-shard store")
	} else if msg := err.Error(); !strings.Contains(msg, "4") || !strings.Contains(msg, "2") {
		t.Fatalf("shard-count mismatch error %q names neither count", msg)
	}
	got, err := RestoreShardedFor(bytes.NewReader(buf.Bytes()), 4)
	if err != nil {
		t.Fatal(err)
	}
	if got.CheckpointDigest() != s.CheckpointDigest() {
		t.Fatal("matching-count restore changed the digest")
	}
	// wantShards 0 accepts any valid count.
	if _, err := RestoreShardedFor(bytes.NewReader(buf.Bytes()), 0); err != nil {
		t.Fatal(err)
	}
}

// TestNewShardedFromChunksNegative covers the chunk-assembly guardrails the
// state-transfer path relies on.
func TestNewShardedFromChunksNegative(t *testing.T) {
	s := populatedSharded(t, 4)
	chunks := make([][]byte, 4)
	for i := range chunks {
		var buf bytes.Buffer
		if err := s.SerializeShard(i, &buf); err != nil {
			t.Fatal(err)
		}
		chunks[i] = buf.Bytes()
	}
	got, err := NewShardedFromChunks(4, chunks)
	if err != nil {
		t.Fatal(err)
	}
	if got.CheckpointDigest() != s.CheckpointDigest() {
		t.Fatal("reassembled store digest diverges")
	}

	if _, err := NewShardedFromChunks(0, nil); err == nil {
		t.Fatal("zero shards accepted")
	}
	if _, err := NewShardedFromChunks(MaxShards+1, nil); err == nil {
		t.Fatal("hostile shard count accepted")
	}
	if _, err := NewShardedFromChunks(4, chunks[:3]); err == nil {
		t.Fatal("missing chunk accepted")
	}
	// Trailing garbage after a chunk's declared entries.
	bad := append([][]byte(nil), chunks...)
	bad[2] = append(append([]byte(nil), chunks[2]...), 0x00)
	if _, err := NewShardedFromChunks(4, bad); err == nil {
		t.Fatal("chunk with trailing data accepted")
	}
	// A chunk truncated mid-frame.
	bad = append([][]byte(nil), chunks...)
	bad[1] = chunks[1][:len(chunks[1])-1]
	if _, err := NewShardedFromChunks(4, bad); err == nil {
		t.Fatal("truncated chunk accepted")
	}
	// Chunks swapped between shards: every key lands in the wrong slot.
	bad = append([][]byte(nil), chunks...)
	bad[0], bad[1] = bad[1], bad[0]
	if _, err := NewShardedFromChunks(4, bad); err == nil {
		t.Fatal("chunks smuggled into the wrong shards accepted")
	}
}
