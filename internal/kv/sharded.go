// ShardedStore partitions the key space across N champ-backed shards
// (paper §6): each key lives in exactly one shard, chosen by the
// cross-process-deterministic champ.ShardOf. The payoff is the checkpoint
// digest d_C: instead of re-hashing the whole store at every checkpoint
// (O(n)), the store tracks which shards were touched since the last
// checkpoint and recomputes only those shard digests, then combines the N
// cached digests into d_C (O(dirty) hashing, O(N) combining).
//
// Determinism invariants, matching the unsharded Store:
//
//   - identical contents + identical shard count ⇒ identical CheckpointDigest,
//     regardless of the operation history that produced the state;
//   - identical contents ⇒ identical Digest (the flat canonical digest),
//     regardless of shard count — a ShardedStore and a Store holding the
//     same keys agree byte-for-byte on the canonical serialization.
package kv

import (
	"fmt"
	"io"

	"iaccf/internal/champ"
	"iaccf/internal/hashsig"
	"iaccf/internal/par"
	"iaccf/internal/wire"
)

// ckptDomain domain-separates the combined sharded checkpoint digest from
// plain serialization digests.
var ckptDomain = []byte("iaccf-ckpt-shards:")

// MaxShards bounds the shard count accepted from configuration and from
// serialized checkpoints, so a hostile stream cannot drive allocation of
// millions of empty shards. It is the wire-level stream limit by
// definition: a store that cannot be framed on the wire must not be
// constructible, and vice versa.
const MaxShards = wire.MaxStreamShards

// ShardOfKey returns the shard owning key in a shards-way partition. It is
// champ's deterministic assignment, re-exported so layers above kv (the
// ledger's per-shard batch trees, request routing) agree with the store on
// placement without importing champ directly.
func ShardOfKey(key string, shards uint32) uint32 { return champ.ShardOf(key, shards) }

// ShardedStore is a transactional key-value store over a sharded key space.
// Like Store it is single-writer: the replica execution loop owns it.
type ShardedStore struct {
	shards  []*champ.Map
	digests []hashsig.Digest // cached per-shard digests, valid where !dirty
	dirty   []bool           // shard touched since its digest was cached
	marks   []shardedMark
}

// shardedMark captures every shard head plus the digest cache at a batch
// boundary, so rollback restores both the contents and the incremental
// checkpoint state in lockstep.
type shardedMark struct {
	seq     uint64
	shards  []*champ.Map
	digests []hashsig.Digest
	dirty   []bool
}

// NewSharded returns an empty store partitioned into the given number of
// shards. Counts < 1 mean 1 (unsharded); counts above MaxShards panic, as a
// misconfiguration rather than hostile input.
func NewSharded(shards int) *ShardedStore {
	if shards < 1 {
		shards = 1
	}
	if shards > MaxShards {
		panic(fmt.Sprintf("kv: shard count %d exceeds limit %d", shards, MaxShards))
	}
	s := &ShardedStore{
		shards:  make([]*champ.Map, shards),
		digests: make([]hashsig.Digest, shards),
		dirty:   make([]bool, shards),
	}
	for i := range s.shards {
		s.shards[i] = champ.Empty()
		s.dirty[i] = true
	}
	return s
}

// NewShardedFromStore splits an unsharded store into the given number of
// shards, preserving contents, in one pass over the source (each key is
// hashed once and routed to its owning shard). This is the migration path
// for restoring a flat checkpoint into a sharded replica.
func NewShardedFromStore(src *Store, shards int) *ShardedStore {
	s := NewSharded(shards)
	n := uint32(len(s.shards))
	src.Snapshot().Range(func(k string, v []byte) bool {
		i := champ.ShardOf(k, n)
		s.shards[i] = s.shards[i].Set(k, v)
		return true
	})
	return s
}

// ShardCount returns the number of shards in the partition.
func (s *ShardedStore) ShardCount() uint32 { return uint32(len(s.shards)) }

// shardFor returns the shard index owning key.
func (s *ShardedStore) shardFor(key string) int {
	return int(champ.ShardOf(key, uint32(len(s.shards))))
}

// Len returns the number of live keys across all shards.
func (s *ShardedStore) Len() int {
	n := 0
	for _, m := range s.shards {
		n += m.Len()
	}
	return n
}

// Get reads a key outside any transaction. Like Store.Get, the returned
// slice is a defensive copy.
func (s *ShardedStore) Get(key string) ([]byte, bool) {
	v, ok := s.shards[s.shardFor(key)].Get(key)
	if !ok {
		return nil, false
	}
	return append([]byte(nil), v...), true
}

// Begin starts a transaction spanning all shards: reads see a consistent
// snapshot of every shard plus the transaction's own writes, and Commit
// applies the buffered effects to each owning shard atomically (the store
// is single-writer, so "atomic" means no reader observes a partial apply).
//
// The snapshot is the shard-head slice itself, captured by reference:
// apply never mutates that slice (copy-on-write below), so Begin — the
// hottest path, paid per transaction by both the primary and the auditor —
// is O(1) regardless of shard count.
func (s *ShardedStore) Begin() *Tx {
	return newTx(&shardedTxBackend{store: s, base: s.shards})
}

// BeginTracked starts a transaction like Begin, additionally recording
// which shards every Get/Put/Delete touches (Tx.TouchedShards). The
// parallel batch executor runs transactions under tracking so an
// application's declared shard footprint can be checked against the shards
// it actually accessed — the safety net that lets a wrong Footprint
// implementation degrade to sequential re-execution instead of divergence.
func (s *ShardedStore) BeginTracked() *Tx {
	tx := s.Begin()
	tx.trackShards = uint32(len(s.shards))
	tx.touched = make([]uint64, (len(s.shards)+63)/64)
	return tx
}

// shardedTxBackend runs a transaction against a ShardedStore.
type shardedTxBackend struct {
	store *ShardedStore
	base  []*champ.Map // shard heads at Begin (immutable once captured)
}

func (b *shardedTxBackend) snapshotGet(key string) ([]byte, bool) {
	return b.base[champ.ShardOf(key, uint32(len(b.base)))].Get(key)
}

// apply publishes the buffered effects copy-on-write: the current shard,
// digest, and dirty slices are never mutated in place — fresh slices
// replace them — so every snapshot captured by Begin, Mark, or Clone stays
// frozen for free. (The only in-place mutation anywhere is the digest
// cache fill in ShardDigest/CheckpointDigest, which is safe to share: it
// runs strictly between applies, when every live snapshot has the same
// shard heads the filled cache describes.)
func (b *shardedTxBackend) apply(writes map[string][]byte, deletes map[string]bool) {
	if len(writes) == 0 && len(deletes) == 0 {
		return
	}
	s := b.store
	shards := append([]*champ.Map(nil), s.shards...)
	digests := append([]hashsig.Digest(nil), s.digests...)
	dirty := append([]bool(nil), s.dirty...)
	for k := range deletes {
		i := s.shardFor(k)
		shards[i] = shards[i].Delete(k)
		dirty[i] = true
	}
	for k, v := range writes {
		i := s.shardFor(k)
		shards[i] = shards[i].Set(k, v)
		dirty[i] = true
	}
	s.shards, s.digests, s.dirty = shards, digests, dirty
}

// Mark records a rollback point labelled seq, like Store.Mark. Thanks to
// copy-on-write applies it captures the three current slices by reference:
// O(1), like the flat store's single-pointer mark.
func (s *ShardedStore) Mark(seq uint64) {
	s.marks = append(s.marks, shardedMark{
		seq:     seq,
		shards:  s.shards,
		digests: s.digests,
		dirty:   s.dirty,
	})
}

// RollbackTo restores the state captured by Mark(seq) — contents and digest
// cache — and discards that mark and all later ones.
func (s *ShardedStore) RollbackTo(seq uint64) error {
	for i := len(s.marks) - 1; i >= 0; i-- {
		if s.marks[i].seq == seq {
			m := s.marks[i]
			s.shards, s.digests, s.dirty = m.shards, m.digests, m.dirty
			s.marks = s.marks[:i]
			return nil
		}
	}
	return fmt.Errorf("%w: %d", ErrNoMark, seq)
}

// PruneMarks drops marks with seq < before.
func (s *ShardedStore) PruneMarks(before uint64) {
	keep := s.marks[:0]
	for _, m := range s.marks {
		if m.seq >= before {
			keep = append(keep, m)
		}
	}
	s.marks = keep
}

// DirtyShards returns how many shards have been touched since their digest
// was last cached — the work CheckpointDigest will do.
func (s *ShardedStore) DirtyShards() int {
	n := 0
	for _, d := range s.dirty {
		if d {
			n++
		}
	}
	return n
}

// ShardDigest returns the canonical digest of one shard's contents,
// computing and caching it if the shard is dirty. Together with
// Store.ShardDigest it lets an auditor localize a checkpoint divergence to
// the shard that diverged instead of just observing that d_C differs.
func (s *ShardedStore) ShardDigest(i int) hashsig.Digest {
	if s.dirty[i] {
		s.digests[i] = digestOfMap(s.shards[i])
		s.dirty[i] = false
	}
	return s.digests[i]
}

// CheckpointDigest returns the sharded checkpoint digest d_C: the hash of
// the shard count and every per-shard digest, where each shard digest is
// the canonical serialization digest of that shard's contents. Only dirty
// shards are re-hashed; clean shards reuse their cached digest, which is
// what turns the per-checkpoint cost from O(keys) into O(keys in touched
// shards). The digest is deterministic: it depends only on contents and
// shard count, never on which shards happened to be cached.
//
// Dirty shards are re-hashed across a bounded worker pool when there is
// enough work to amortize the goroutines (paper §6 pairs sharded execution
// with parallel digesting). The workers write disjoint slice elements and
// are joined before the combine, so the single-writer discipline of the
// store is preserved.
func (s *ShardedStore) CheckpointDigest() hashsig.Digest {
	var dirtyIdx []int
	keys := 0
	for i, d := range s.dirty {
		if d {
			dirtyIdx = append(dirtyIdx, i)
			keys += s.shards[i].Len()
		}
	}
	par.ForEach(len(dirtyIdx), keys, minParallelDigestKeys, func(j int) {
		i := dirtyIdx[j]
		s.digests[i] = digestOfMap(s.shards[i])
		s.dirty[i] = false
	})
	return combineShardDigests(s.digests)
}

// minParallelDigestKeys gates the parallel digest path: below this many
// keys across all dirty shards, goroutine startup costs more than the
// hashing it would spread.
const minParallelDigestKeys = 4096

// FullRescanDigest recomputes every shard digest from scratch, ignoring the
// cache. It must always equal CheckpointDigest; it exists as the oracle for
// tests and as the full-rescan baseline for benchmarks.
func (s *ShardedStore) FullRescanDigest() hashsig.Digest {
	digests := make([]hashsig.Digest, len(s.shards))
	for i, m := range s.shards {
		digests[i] = digestOfMap(m)
	}
	return combineShardDigests(digests)
}

// combineShardDigests hashes the shard digest vector into d_C. The shard
// count is included so the same contents under a different partition can
// never alias: d_C commits to the execution configuration the header's
// shard-count field declares.
func combineShardDigests(digests []hashsig.Digest) hashsig.Digest {
	h := hashsig.BorrowHasher()
	h.Write(ckptDomain)
	var n [4]byte
	h.Write(wire.AppendUint32(n[:0], uint32(len(digests))))
	for i := range digests {
		h.Write(digests[i][:])
	}
	var out hashsig.Digest
	h.Sum(out[:0])
	hashsig.ReturnHasher(h)
	return out
}

// CombineShardDigests hashes a shard digest vector into d_C exactly as
// CheckpointDigest does. It is the verification half of chunked state
// transfer: a syncing replica that holds a signed header's CkptDigest and a
// claimed per-shard digest vector recomputes the combine to check the
// vector is the one the header certified — before fetching a single chunk.
func CombineShardDigests(digests []hashsig.Digest) hashsig.Digest {
	return combineShardDigests(digests)
}

// ShardDigests returns a copy of the full per-shard digest vector,
// computing any dirty entries. Element i is the digest of the byte stream
// SerializeShard(i) produces, so a state-transfer chunk verifies by
// hashing its bytes and comparing against this vector.
func (s *ShardedStore) ShardDigests() []hashsig.Digest {
	out := make([]hashsig.Digest, len(s.shards))
	for i := range s.shards {
		out[i] = s.ShardDigest(i)
	}
	return out
}

// Digest returns the flat canonical digest of the full contents — the same
// value an unsharded Store with identical contents returns from
// Store.Digest. It rescans everything (O(n)); checkpointing uses
// CheckpointDigest instead. It exists so sharded and unsharded stores can
// be compared for state equality independent of partitioning.
func (s *ShardedStore) Digest() hashsig.Digest {
	h := newDigestWriter()
	w := wire.NewWriter(h)
	s.encodeSortedFlat(w)
	if err := w.Flush(); err != nil {
		// digestWriter never fails.
		panic(err)
	}
	return h.sum()
}

// encodeSortedFlat streams the union of all shards in canonical flat form
// (count, then globally key-sorted pairs) — byte-identical to
// Store.Serialize over the same contents.
func (s *ShardedStore) encodeSortedFlat(w *wire.Writer) {
	entries := make([]sortedEntry, 0, s.Len())
	for _, m := range s.shards {
		entries = collectEntries(entries, m)
	}
	encodeEntriesSorted(w, entries)
}

// Serialize writes the sharded checkpoint: the shard count, then each
// shard's canonical stream in shard order. Shard placement and champ's
// canonical iteration order are both deterministic, so two stores with
// identical contents and shard count serialize identically — in one pass,
// with no per-shard sort.
func (s *ShardedStore) Serialize(w io.Writer) error {
	ww := wire.NewWriter(w)
	ww.Uint32(uint32(len(s.shards)))
	for _, m := range s.shards {
		encodeMapCanonical(ww, m)
	}
	return ww.Flush()
}

// SerializeShard writes one shard's canonical stream — the exact bytes
// whose hash is ShardDigest(i). This is the state-transfer chunk unit: a
// checkpoint travels as one chunk per shard, each independently verifiable
// against the signed d_C's per-shard digest vector.
func (s *ShardedStore) SerializeShard(i int, w io.Writer) error {
	ww := wire.NewWriter(w)
	encodeMapCanonical(ww, s.shards[i])
	return ww.Flush()
}

// RestoreSharded replaces a store with a stream produced by Serialize. Every
// key is checked against its declared shard: a stream that smuggles a key
// into the wrong shard is rejected, so distinct logical states can never
// restore to equal checkpoint digests.
func RestoreSharded(r io.Reader) (*ShardedStore, error) {
	return RestoreShardedFor(r, 0)
}

// RestoreShardedFor is RestoreSharded with the restoring replica's
// configured shard count enforced: a stream whose header declares a
// different partition than the store being restored is rejected up front,
// before any shard bytes are read. wantShards 0 accepts any valid count.
// On any error no store is returned — a partial restore is never
// observable.
func RestoreShardedFor(r io.Reader, wantShards uint32) (*ShardedStore, error) {
	rd := wire.NewReader(r)
	n := rd.Uint32()
	rd.Annotate("shard count header")
	if rd.Err() == nil && (n < 1 || n > MaxShards) {
		return nil, fmt.Errorf("kv: restore: %w: shard count %d", wire.ErrCorrupt, n)
	}
	if rd.Err() == nil && wantShards != 0 && n != wantShards {
		return nil, fmt.Errorf("kv: restore: %w: stream has %d shards, store configured for %d",
			wire.ErrCorrupt, n, wantShards)
	}
	if rd.Err() != nil {
		return nil, fmt.Errorf("kv: restore: %w", rd.Err())
	}
	s := NewSharded(int(n))
	for i := range s.shards {
		m, ok := readShardMap(rd, uint32(i), n)
		if !ok {
			break
		}
		s.shards[i] = m
	}
	rd.ExpectEOF()
	if err := rd.Err(); err != nil {
		return nil, fmt.Errorf("kv: restore: %w", err)
	}
	return s, nil
}

// readShardMap reads one shard's canonical stream and validates every key's
// placement against the declared partition. Failures are annotated with the
// shard index so a truncated multi-shard stream reports exactly where it
// broke.
func readShardMap(rd *wire.Reader, shard, shards uint32) (*champ.Map, bool) {
	m := readMap(rd)
	if rd.Err() != nil {
		rd.Annotate("shard %d of %d", shard, shards)
		return nil, false
	}
	ok := true
	m.Range(func(k string, _ []byte) bool {
		if champ.ShardOf(k, shards) != shard {
			rd.Fail(fmt.Errorf("%w: key %q in shard %d, belongs to %d", wire.ErrCorrupt, k, shard, champ.ShardOf(k, shards)))
			ok = false
			return false
		}
		return true
	})
	return m, ok
}

// NewShardedFromChunks assembles a store from per-shard state-transfer
// chunks, one chunk per shard in shard order — the receiving half of
// SerializeShard. Each chunk must decode exactly (trailing bytes rejected)
// and every key must belong to its chunk's shard. The caller is expected to
// have verified each chunk's bytes against the signed d_C's shard digest
// vector first; the placement check here makes a lying chunk that passes a
// stolen digest impossible to combine into a structurally valid store.
func NewShardedFromChunks(shards uint32, chunks [][]byte) (*ShardedStore, error) {
	if shards < 1 || shards > MaxShards {
		return nil, fmt.Errorf("kv: restore: %w: shard count %d", wire.ErrCorrupt, shards)
	}
	if uint32(len(chunks)) != shards {
		return nil, fmt.Errorf("kv: restore: %w: %d chunks for %d shards", wire.ErrCorrupt, len(chunks), shards)
	}
	s := NewSharded(int(shards))
	for i, chunk := range chunks {
		rd := wire.NewBytesReader(chunk)
		m, ok := readShardMap(rd, uint32(i), shards)
		if ok {
			rd.ExpectEOF()
			rd.Annotate("shard %d of %d", i, shards)
		}
		if err := rd.Err(); err != nil {
			return nil, fmt.Errorf("kv: restore: %w", err)
		}
		s.shards[i] = m
	}
	return s, nil
}

// Clone returns an independent store with the same contents and digest
// cache (O(shards)).
func (s *ShardedStore) Clone() *ShardedStore {
	return &ShardedStore{
		shards:  append([]*champ.Map(nil), s.shards...),
		digests: append([]hashsig.Digest(nil), s.digests...),
		dirty:   append([]bool(nil), s.dirty...),
	}
}

// ShardSnapshot returns the immutable map backing one shard, for replay
// comparisons and shard-level auditing.
func (s *ShardedStore) ShardSnapshot(i int) *champ.Map { return s.shards[i] }
